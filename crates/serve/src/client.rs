//! Blocking client for the query server — the driver library the CLI
//! (`xqp client …`), the loopback fuzzer leg, and the E19 benchmark all
//! share.
//!
//! One [`Client`] is one session: requests are synchronous (send one
//! frame, read one response). Server-side failures surface as
//! [`ServeError::Remote`] carrying the typed [`ErrorClass`], admission
//! refusals as [`ServeError::ServerBusy`] — callers never have to parse
//! message text to branch.

use std::net::{TcpStream, ToSocketAddrs};

use xqp::QueryLimits;

use crate::protocol::{
    limits_to_wire, read_frame, write_frame, Request, Response, ServeError, MAX_FRAME,
};

/// A connected session.
pub struct Client {
    stream: TcpStream,
    max_frame: u32,
}

impl Client {
    /// Connect to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ServeError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client { stream, max_frame: MAX_FRAME })
    }

    /// Send one request and read its response. Converts the typed failure
    /// responses ([`Response::Error`], [`Response::Busy`]) into `Err`.
    pub fn request(&mut self, req: &Request) -> Result<Response, ServeError> {
        write_frame(&mut self.stream, &req.encode())?;
        let payload = read_frame(&mut self.stream, self.max_frame)?;
        match Response::decode(&payload)? {
            Response::Error { class, message } => Err(ServeError::Remote { class, message }),
            Response::Busy { in_flight, max } => Err(ServeError::ServerBusy { in_flight, max }),
            resp => Ok(resp),
        }
    }

    fn unexpected<T>(resp: Response) -> Result<T, ServeError> {
        Err(ServeError::Protocol(format!("unexpected response kind: {resp:?}")))
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Self::unexpected(other),
        }
    }

    /// Run an XQuery; returns the MVCC generation the snapshot carried and
    /// the serialized result.
    pub fn query(&mut self, doc: &str, query: &str) -> Result<(u64, String), ServeError> {
        match self.request(&Request::Query { doc: doc.into(), query: query.into() })? {
            Response::Value { generation, body } => Ok((generation, body)),
            other => Self::unexpected(other),
        }
    }

    /// Evaluate a bare path to node ids (meaningful only against the
    /// returned generation).
    pub fn select(&mut self, doc: &str, path: &str) -> Result<(u64, Vec<u64>), ServeError> {
        match self.request(&Request::Select { doc: doc.into(), path: path.into() })? {
            Response::NodeIds { generation, ids } => Ok((generation, ids)),
            other => Self::unexpected(other),
        }
    }

    /// Splice `fragment` under every node `path` selects; returns the
    /// number of insertion points.
    pub fn insert(&mut self, doc: &str, path: &str, fragment: &str) -> Result<u64, ServeError> {
        let req = Request::Insert { doc: doc.into(), path: path.into(), fragment: fragment.into() };
        match self.request(&req)? {
            Response::Count { n } => Ok(n),
            other => Self::unexpected(other),
        }
    }

    /// Delete every subtree `path` selects; returns the number deleted.
    pub fn delete(&mut self, doc: &str, path: &str) -> Result<u64, ServeError> {
        match self.request(&Request::Delete { doc: doc.into(), path: path.into() })? {
            Response::Count { n } => Ok(n),
            other => Self::unexpected(other),
        }
    }

    /// Replace this session's resource limits.
    pub fn set_limits(&mut self, limits: &QueryLimits) -> Result<(), ServeError> {
        let (timeout_ms, max_memory, max_rows) = limits_to_wire(limits);
        match self.request(&Request::SetLimits { timeout_ms, max_memory, max_rows })? {
            Response::Pong => Ok(()),
            other => Self::unexpected(other),
        }
    }

    /// List the documents the server holds.
    pub fn list_docs(&mut self) -> Result<Vec<String>, ServeError> {
        match self.request(&Request::ListDocs)? {
            Response::Docs { names } => Ok(names),
            other => Self::unexpected(other),
        }
    }

    /// End the session cleanly (`Close` → `Bye`).
    pub fn close(mut self) -> Result<(), ServeError> {
        match self.request(&Request::Close)? {
            Response::Bye => Ok(()),
            other => Self::unexpected(other),
        }
    }
}
