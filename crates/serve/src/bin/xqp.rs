//! `xqp` — command-line query processor.
//!
//! ```text
//! xqp query  <file.xml> <xquery>  [--strategy S] [--no-rules] [--materialize] [--pretty]
//! xqp select <file.xml> <path>    [--strategy S]
//! xqp explain <file.xml> <xquery> [--no-rules] [--materialize]
//! xqp search <file.xml> <needle>            # substring search (suffix array)
//! xqp stats  <file.xml>                     # storage-size report
//! xqp race   <file.xml> <path>              # time all four strategies
//! xqp save   <file.xml> <dir>               # persist to a durable store
//! xqp open   <dir> <xquery>                 # query a durable store
//! xqp fuzz   [--seed N] [--iters K] [--replay CASE_SEED] [--tiny-pool]  # differential fuzzing
//! xqp torture [--seed N] [--iters K] [--buffer-pages N]   # I/O fault-injection torture
//! xqp serve  <file.xml|store-dir> [--addr H:P] [--max-inflight N]   # query server
//! xqp client <addr> <verb> [args…]           # talk to a running server
//! ```
//!
//! `serve` loads the file (or opens the durable store) and serves it to
//! concurrent clients over TCP until stdin reaches EOF — reads run
//! against snapshot-isolated MVCC versions, so clients keep querying at
//! full speed while others stream updates. `client` verbs: `ping`,
//! `query <doc> <xquery>`, `select <doc> <path>`, `insert <doc> <path>
//! <fragment>`, `delete <doc> <path>`, `docs`; resource-limit flags apply
//! to the session. `fuzz --server` runs the differential loopback leg: a
//! real client session must agree with the in-process engine.
//!
//! `fuzz` cross-checks random FLWOR workloads over every strategy ×
//! evaluation-mode combination (persistence round trip included) and
//! reports shrunk minimal repros for any divergence or panic.
//!
//! `torture` replays durable-store update workloads with a fault injected
//! at every reachable I/O point (soft and crash flavors), asserting the
//! recovery invariants after each one.
//!
//! `save` writes a snapshot + write-ahead log under `<dir>`; `open` recovers
//! from them (replaying the log) without re-parsing any XML.
//!
//! Query commands accept resource limits: `--timeout-ms N`, `--max-memory N`
//! (live binding cells), `--max-rows N`. A query over budget fails with a
//! `resource governor` error instead of running away.
//!
//! `--buffer-pages N` (or `XQP_BUFFER_PAGES`) serves documents from paged
//! storage through a pinning buffer pool capped at N 4 KiB pages —
//! documents bigger than RAM stay queryable with bounded resident memory.
//!
//! `S` ∈ auto | nok | twigstack | binaryjoin | naive | parallel[:N]
//! (default: auto; `parallel` alone sizes itself to the hardware).

use std::process::ExitCode;
use std::time::{Duration, Instant};
use xqp::{Database, EvalMode, QueryLimits, RuleSet, Strategy};

/// Parsed command line.
#[derive(Debug, PartialEq)]
struct Cli {
    command: String,
    /// XML file (or store directory); absent for `fuzz`.
    file: Option<String>,
    arg: Option<String>,
    strategy: Strategy,
    rules: RuleSet,
    mode: EvalMode,
    pretty: bool,
    seed: u64,
    iters: u64,
    /// Exact case seed to replay (`fuzz --replay`), bypassing the master
    /// PRNG entirely.
    replay: Option<u64>,
    /// Join mode for `fuzz`: join-shaped cases plus the optimizer-rule
    /// ablation leg.
    joins: bool,
    /// Function mode for `fuzz`: function-surface cases (aggregates,
    /// positional predicates, quantifiers) plus the rule-ablation leg.
    functions: bool,
    /// Resource limits applied to query commands (none by default).
    limits: QueryLimits,
    /// Positional arguments beyond `arg` (only `client` accepts them).
    extra: Vec<String>,
    /// Listen address for `serve`.
    addr: String,
    /// Session admission bound for `serve`.
    max_inflight: u32,
    /// `fuzz --server`: run the differential loopback leg instead.
    server: bool,
    /// Buffer-pool capacity in 4 KiB pages (`--buffer-pages N`, or the
    /// `XQP_BUFFER_PAGES` environment variable). Documents are then served
    /// from paged storage with at most N pages resident at once.
    buffer_pages: Option<usize>,
    /// `fuzz --tiny-pool`: run the paged legs behind a starved 4-page pool.
    tiny_pool: bool,
    /// `torture --net`: run the network-fault leg instead of the disk one.
    net: bool,
    /// `client --retry N`: total attempts per operation (0/1 = no retries).
    retry: u32,
    /// `client --retry-budget-ms N`: cumulative backoff-sleep ceiling.
    retry_budget_ms: u64,
    /// `serve --drain-ms N`: graceful-drain deadline before in-flight
    /// queries are cancelled on SIGTERM/stdin-EOF.
    drain_ms: u64,
    /// `client --ping`: health-check the server and exit (flag form of the
    /// `ping` verb, usable without naming one).
    ping: bool,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut pos: Vec<&String> = Vec::new();
    let mut strategy = Strategy::Auto;
    let mut rules = RuleSet::all();
    let mut mode = EvalMode::default();
    let mut pretty = false;
    let mut seed = 1u64;
    let mut iters = 100u64;
    let mut replay = None;
    let mut joins = false;
    let mut functions = false;
    let mut limits = QueryLimits::none();
    let mut addr = "127.0.0.1:7878".to_string();
    let mut max_inflight = 64u32;
    let mut server = false;
    let mut buffer_pages = None;
    let mut tiny_pool = false;
    let mut net = false;
    let mut retry = 0u32;
    let mut retry_budget_ms = 2000u64;
    let mut drain_ms = 2000u64;
    let mut ping = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--strategy" => {
                let v = it.next().ok_or("--strategy needs a value")?;
                strategy =
                    Strategy::from_name(v).ok_or_else(|| format!("unknown strategy `{v}`"))?;
            }
            "--no-rules" => rules = RuleSet::none(),
            "--materialize" => mode = EvalMode::Materializing,
            "--pretty" => pretty = true,
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                seed = v.parse().map_err(|_| format!("bad seed `{v}`"))?;
            }
            "--iters" => {
                let v = it.next().ok_or("--iters needs a value")?;
                iters = v.parse().map_err(|_| format!("bad iteration count `{v}`"))?;
            }
            "--replay" => {
                let v = it.next().ok_or("--replay needs a case seed")?;
                replay = Some(v.parse().map_err(|_| format!("bad case seed `{v}`"))?);
            }
            "--joins" => joins = true,
            "--functions" => functions = true,
            "--server" => server = true,
            "--tiny-pool" => tiny_pool = true,
            "--net" => net = true,
            "--ping" => ping = true,
            "--retry" => {
                let v = it.next().ok_or("--retry needs an attempt count")?;
                retry = v.parse().map_err(|_| format!("bad attempt count `{v}`"))?;
            }
            "--retry-budget-ms" => {
                let v = it.next().ok_or("--retry-budget-ms needs a value")?;
                retry_budget_ms = v.parse().map_err(|_| format!("bad retry budget `{v}`"))?;
            }
            "--drain-ms" => {
                let v = it.next().ok_or("--drain-ms needs a value")?;
                drain_ms = v.parse().map_err(|_| format!("bad drain deadline `{v}`"))?;
            }
            "--buffer-pages" => {
                let v = it.next().ok_or("--buffer-pages needs a page count")?;
                buffer_pages = Some(v.parse().map_err(|_| format!("bad page count `{v}`"))?);
            }
            "--addr" => {
                addr = it.next().ok_or("--addr needs HOST:PORT")?.clone();
            }
            "--max-inflight" => {
                let v = it.next().ok_or("--max-inflight needs a value")?;
                max_inflight = v.parse().map_err(|_| format!("bad session bound `{v}`"))?;
            }
            "--timeout-ms" => {
                let v = it.next().ok_or("--timeout-ms needs a value")?;
                let ms: u64 = v.parse().map_err(|_| format!("bad timeout `{v}`"))?;
                limits = limits.with_timeout(Duration::from_millis(ms));
            }
            "--max-memory" => {
                let v = it.next().ok_or("--max-memory needs a value")?;
                limits = limits
                    .with_max_memory(v.parse().map_err(|_| format!("bad memory budget `{v}`"))?);
            }
            "--max-rows" => {
                let v = it.next().ok_or("--max-rows needs a value")?;
                limits = limits.with_max_rows(v.parse().map_err(|_| format!("bad row cap `{v}`"))?);
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{flag}`"));
            }
            _ => pos.push(a),
        }
    }
    // The flag wins over the environment; the env var lets wrappers and CI
    // bound every xqp invocation without threading a flag through.
    if buffer_pages.is_none() {
        if let Ok(v) = std::env::var("XQP_BUFFER_PAGES") {
            buffer_pages =
                Some(v.parse().map_err(|_| format!("bad XQP_BUFFER_PAGES page count `{v}`"))?);
        }
    }
    let [command, rest @ ..] = pos.as_slice() else {
        return Err("usage: xqp <command> <file.xml> [arg…] (see --help)".into());
    };
    // `fuzz` and `torture` generate their own inputs; every other command
    // reads a file (or, for `open`, a store directory) first.
    let (file, rest) = if *command == "fuzz" || *command == "torture" {
        if !rest.is_empty() {
            return Err(format!("`{command}` takes no positional arguments"));
        }
        (None, rest)
    } else {
        let [file, rest @ ..] = rest else {
            return Err("usage: xqp <command> <file.xml> [arg…] (see --help)".into());
        };
        (Some((*file).clone()), rest)
    };
    // `client <addr> <verb> [args…]` is the one command with an open
    // positional tail (insert takes three trailing arguments).
    let (arg, extra) = match rest {
        [] => (None, Vec::new()),
        [one] => (Some((*one).clone()), Vec::new()),
        [one, more @ ..] if *command == "client" => {
            (Some((*one).clone()), more.iter().map(|s| (*s).clone()).collect())
        }
        _ => return Err("too many positional arguments".into()),
    };
    Ok(Cli {
        command: (*command).clone(),
        file,
        arg,
        strategy,
        rules,
        mode,
        pretty,
        seed,
        iters,
        replay,
        joins,
        functions,
        limits,
        extra,
        addr,
        max_inflight,
        server,
        buffer_pages,
        tiny_pool,
        net,
        retry,
        retry_budget_ms,
        drain_ms,
        ping,
    })
}

const USAGE: &str = "xqp — XML query processing and optimization

USAGE:
  xqp query   <file.xml> <xquery>  [--strategy S] [--no-rules] [--materialize] [--pretty]
  xqp select  <file.xml> <path>    [--strategy S]
  xqp explain <file.xml> <xquery>  [--no-rules] [--materialize]
  xqp search  <file.xml> <needle>
  xqp stats   <file.xml>
  xqp race    <file.xml> <path>
  xqp save    <file.xml> <dir>
  xqp open    <dir> <xquery>
  xqp fuzz    [--seed N] [--iters K] [--joins] [--functions] [--replay CASE_SEED] [--server] [--tiny-pool]
  xqp torture [--seed N] [--iters K] [--buffer-pages N] [--net]
  xqp serve   <file.xml|store-dir> [--addr HOST:PORT] [--max-inflight N] [--drain-ms N]
  xqp client  <addr> ping                    # or: xqp client <addr> --ping
  xqp client  <addr> stats
  xqp client  <addr> query  <doc> <xquery>   [limit flags] [--retry N]
  xqp client  <addr> select <doc> <path>     [limit flags] [--retry N]
  xqp client  <addr> insert <doc> <path> <fragment>
  xqp client  <addr> delete <doc> <path>
  xqp client  <addr> docs

  `serve` loads the XML file (or opens the durable store directory) and
  serves it to concurrent TCP clients until stdin reaches EOF. Reads run
  against snapshot-isolated MVCC document versions: they never block
  behind writers and never observe a half-applied update. Strategy /
  rules / mode / limit flags set the server-side defaults.

  `client` opens one session against a running server. Limit flags apply
  to the session (the server enforces them); `query` and `select` print
  the MVCC generation they read at on stderr. `--retry N` turns on the
  resilient client: up to N attempts with jittered exponential backoff,
  automatic reconnect + session-state replay, honoring the server's
  Overloaded retry-after hints — non-idempotent verbs are never re-sent
  once a response byte has arrived (`--retry-budget-ms` caps cumulative
  backoff sleep). `--ping`/`ping` health-checks: the reply carries the
  server's MVCC generation high-water mark and uptime; `stats` dumps the
  server's operational counters (requests, queueing, sheds, retries seen,
  injected faults…).

  `serve` drains gracefully on SIGTERM/SIGINT or stdin EOF: it stops
  accepting, lets in-flight queries finish for up to --drain-ms
  (default 2000), cancels stragglers via their cancel tokens, and
  answers late arrivals with a typed Draining refusal. Overload is
  queue-based: excess requests wait in a bounded admission queue and
  deadline-doomed ones are shed immediately with a retry-after hint.

  `fuzz` cross-checks K random FLWOR workloads across every strategy ×
  evaluation mode (and a save/open round trip), shrinking any divergence
  or panic to a minimal repro; exits non-zero when one is found.
  `--server` switches to the differential loopback leg: every case is
  also run through a real client session over a real socket (framing,
  session limits, error mapping and all), which must agree with the
  in-process engine — including resource-limit trips as a class.
  `--joins` switches to join-shaped cases and additionally cross-checks
  every optimizer-rule ablation (all rules, none, each join rewrite
  knocked out) against the all-rules reference.
  `--functions` switches to function-surface cases — aggregates over
  nested FLWORs, position()/last() windows, some/every quantifiers,
  typed-error hazards — with the same rule-ablation leg.
  `--replay` re-runs one case seed from a failure report (join and
  function seeds need `--joins`/`--functions` here too — the three
  generators share a seed space).

  `torture` replays K injected I/O faults (soft + simulated power cut)
  against durable-store update workloads, asserting that every fault
  recovers to a consistent state; exits non-zero on a violation.
  `--net` switches to the wire: K faults (errors, short reads/writes,
  byte-level truncation, delays, mid-frame disconnects) are injected at
  every socket I/O point of a client/server scenario, asserting the
  server never panics or leaks a session slot, answers are never wrong,
  and retried queries converge to the fault-free result.

  Query commands accept resource limits — the query fails cleanly with a
  `resource governor` error once any budget is exceeded:
    --timeout-ms N    wall-clock deadline
    --max-memory N    live FLWOR binding-cell budget
    --max-rows N      result-row cap

  Every command that loads or opens documents accepts `--buffer-pages N`
  (or the XQP_BUFFER_PAGES environment variable; the flag wins): documents
  are then served from paged storage through a pinning buffer pool capped
  at N 4 KiB pages, so a store bigger than RAM stays queryable with
  bounded resident memory. Pool counters are reported on stderr (and in
  `explain` output). `fuzz --tiny-pool` re-runs every case's full engine
  matrix over a deliberately starved 4-page pool; `torture
  --buffer-pages N` injects its faults into the paged store format.

  S = auto | nok | twigstack | binaryjoin | naive | parallel[:N]
      (parallel:N runs the join-based sweep on N worker threads; bare
       parallel uses one worker per hardware thread)";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") || args.is_empty() {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Open a durable store, behind a buffer pool when one is requested.
fn open_database(path: &std::path::Path, pages: Option<usize>) -> Result<Database, String> {
    match pages {
        Some(n) => Database::open_with_buffer(path, n),
        None => Database::open(path),
    }
    .map_err(|e| e.to_string())
}

fn run(args: &[String]) -> Result<(), String> {
    let cli = parse_args(args)?;
    if cli.command == "fuzz" {
        return run_fuzz(&cli);
    }
    if cli.command == "torture" {
        return run_torture(&cli);
    }
    if cli.command == "serve" {
        return run_serve(&cli);
    }
    if cli.command == "client" {
        return run_client(&cli);
    }
    let file = cli.file.as_deref().ok_or("missing file argument")?;
    // `open` takes a store directory, not an XML file; everything else
    // parses the XML up front.
    let mut db = if cli.command == "open" {
        let t = Instant::now();
        let db = open_database(std::path::Path::new(file), cli.buffer_pages)?;
        let stats =
            db.document_names().first().and_then(|n| db.persist_stats(n).ok()).unwrap_or_default();
        eprintln!(
            "-- opened {} in {:.2?} ({} WAL record(s) replayed)",
            file,
            t.elapsed(),
            stats.records_replayed
        );
        db
    } else {
        let xml = std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
        let mut db = Database::new();
        if let Some(pages) = cli.buffer_pages {
            db.set_buffer_pool(pages);
        }
        db.load_str("doc", &xml).map_err(|e| e.to_string())?;
        db
    };
    db.set_strategy(cli.strategy);
    db.set_rules(cli.rules);
    db.set_eval_mode(cli.mode);
    db.set_limits(cli.limits);
    // A freshly opened store keeps its on-disk name; the CLI always stores
    // a single document as "doc", so both paths agree.

    let need = |what: &str| -> Result<&String, String> {
        cli.arg.as_ref().ok_or_else(|| format!("`{}` needs {what}", cli.command))
    };

    let result = match cli.command.as_str() {
        "query" => {
            let q = need("an XQuery expression")?;
            let t = Instant::now();
            let out = db.query("doc", q).map_err(|e| e.to_string())?;
            let dt = t.elapsed();
            if cli.pretty {
                // Re-parse the fragment for indentation when it is one tree.
                match xqp::xml::parse_document(&out) {
                    Ok(d) => print!("{}", xqp::xml::serialize_pretty(&d, 2)),
                    Err(_) => println!("{out}"),
                }
            } else {
                println!("{out}");
            }
            eprintln!("-- {dt:.2?} ({})", cli.strategy.name());
            Ok(())
        }
        "select" => {
            let p = need("a path expression")?;
            let t = Instant::now();
            let hits = db.select("doc", p).map_err(|e| e.to_string())?;
            let dt = t.elapsed();
            let sdoc = db.document("doc").map_err(|e| e.to_string())?;
            for n in &hits {
                println!("{n}\t{}", xqp::exec::engine::serialize_stored(&sdoc, *n));
            }
            eprintln!("-- {} node(s) in {dt:.2?} ({})", hits.len(), cli.strategy.name());
            Ok(())
        }
        "explain" => {
            let q = need("an XQuery expression")?;
            let (plan, report) = db.explain("doc", q).map_err(|e| e.to_string())?;
            print!("{plan}");
            eprintln!("-- rules fired: {:?}", report.applied);
            Ok(())
        }
        "search" => {
            let needle = need("a substring")?;
            db.create_suffix_index("doc").map_err(|e| e.to_string())?;
            let hits = db.contains_search("doc", needle).map_err(|e| e.to_string())?;
            let sdoc = db.document("doc").map_err(|e| e.to_string())?;
            for n in &hits {
                println!("{n}\t{}", sdoc.string_value(*n));
            }
            eprintln!("-- {} node(s)", hits.len());
            Ok(())
        }
        "stats" => {
            let st = db.storage_stats("doc").map_err(|e| e.to_string())?;
            println!("nodes:               {}", st.nodes);
            println!(
                "succinct structure:  {} B ({:.2} bits/node)",
                st.succinct_structure,
                st.structure_bits_per_node()
            );
            println!("succinct schema:     {} B", st.succinct_schema);
            println!("succinct content:    {} B", st.succinct_content);
            println!("succinct total:      {} B", st.succinct_total());
            println!("DOM estimate:        {} B", st.dom_bytes);
            println!("interval tables:     {} B", st.interval_bytes);
            Ok(())
        }
        "save" => {
            let dir = need("a target directory")?;
            let t = Instant::now();
            db.persist_to(std::path::Path::new(dir)).map_err(|e| e.to_string())?;
            let stats = db.persist_stats("doc").map_err(|e| e.to_string())?;
            eprintln!(
                "-- saved to {dir} in {:.2?} ({} byte(s) written)",
                t.elapsed(),
                stats.bytes_written
            );
            Ok(())
        }
        "open" => {
            let q = need("an XQuery expression")?;
            let name = db
                .document_names()
                .first()
                .map(|s| s.to_string())
                .ok_or("store holds no documents")?;
            let t = Instant::now();
            let out = db.query(&name, q).map_err(|e| e.to_string())?;
            let dt = t.elapsed();
            if cli.pretty {
                match xqp::xml::parse_document(&out) {
                    Ok(d) => print!("{}", xqp::xml::serialize_pretty(&d, 2)),
                    Err(_) => println!("{out}"),
                }
            } else {
                println!("{out}");
            }
            eprintln!("-- {dt:.2?} ({})", cli.strategy.name());
            Ok(())
        }
        "race" => {
            let p = need("a path expression")?;
            let contenders = [
                Strategy::NoK,
                Strategy::TwigStack,
                Strategy::BinaryJoin,
                Strategy::Naive,
                Strategy::Parallel { threads: 0 },
            ];
            for s in contenders {
                db.set_strategy(s);
                let t = Instant::now();
                let hits = db.select("doc", p).map_err(|e| e.to_string())?;
                println!("{:<11} {:>10.2?}  {} hit(s)", s.name(), t.elapsed(), hits.len());
            }
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    if result.is_ok() {
        if let Some(stats) = db.buffer_stats() {
            eprintln!(
                "-- buffer pool: {}/{} page(s) resident (peak {}), {} hit(s), {} miss(es), {} \
                 eviction(s)",
                stats.resident,
                stats.capacity,
                stats.resident_peak,
                stats.hits,
                stats.misses,
                stats.evictions
            );
        }
    }
    result
}

/// Set when SIGTERM/SIGINT arrives or stdin reaches EOF; `run_serve`
/// polls it and starts the graceful drain.
static STOP_REQUESTED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

extern "C" fn on_stop_signal(_sig: i32) {
    STOP_REQUESTED.store(true, std::sync::atomic::Ordering::SeqCst);
}

/// Route SIGTERM and SIGINT into [`STOP_REQUESTED`]. Hand-declared libc
/// `signal` — the workspace carries no external crates, and a drain
/// trigger needs nothing more than an async-signal-safe store.
fn install_stop_handler() {
    #[cfg(unix)]
    {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        let handler = on_stop_signal as *const () as usize;
        unsafe {
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
    }
}

/// `xqp serve`: load the file (or open the store) and serve it over TCP
/// until SIGTERM/SIGINT arrives or stdin reaches EOF — so a supervisor
/// sending signals, `some-supervisor | xqp serve …`, and the CI smoke
/// (`sleep N | xqp serve …`) all get the same graceful drain: stop
/// accepting, finish in-flight queries under the `--drain-ms` deadline,
/// cancel stragglers, then shut down.
fn run_serve(cli: &Cli) -> Result<(), String> {
    use std::io::Read as _;

    let file = cli.file.as_deref().ok_or("`serve` needs an XML file or store directory")?;
    let path = std::path::Path::new(file);
    let mut db = if path.is_dir() {
        open_database(path, cli.buffer_pages)?
    } else {
        let xml = std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
        let mut db = Database::new();
        if let Some(pages) = cli.buffer_pages {
            db.set_buffer_pool(pages);
        }
        db.load_str("doc", &xml).map_err(|e| e.to_string())?;
        db
    };
    db.set_strategy(cli.strategy);
    db.set_rules(cli.rules);
    db.set_eval_mode(cli.mode);
    let cfg = xqp_serve::ServerConfig {
        max_inflight: cli.max_inflight,
        default_limits: cli.limits,
        ..Default::default()
    };
    let server = xqp_serve::Server::start(std::sync::Arc::new(db), cli.addr.as_str(), cfg)
        .map_err(|e| e.to_string())?;
    // The bound address on stdout is the contract scripts rely on (port 0
    // resolves to an ephemeral port only knowable here).
    println!("{}", server.addr());
    eprintln!(
        "-- serving {} document(s) on {} (max {} concurrent quer{}; SIGTERM or EOF on stdin \
         drains and stops the server)",
        server.database().document_names().len(),
        server.addr(),
        cli.max_inflight,
        if cli.max_inflight == 1 { "y" } else { "ies" },
    );
    install_stop_handler();
    // Stdin EOF is the second stop trigger; a detached watcher folds it
    // into the same flag the signal handler sets.
    std::thread::Builder::new()
        .name("xqp-serve-stdin".into())
        .spawn(|| {
            let mut sink = [0u8; 4096];
            let mut stdin = std::io::stdin().lock();
            while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}
            STOP_REQUESTED.store(true, std::sync::atomic::Ordering::SeqCst);
        })
        .map_err(|e| e.to_string())?;
    while !STOP_REQUESTED.load(std::sync::atomic::Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("-- draining: up to {} ms for in-flight queries", cli.drain_ms);
    let cancelled = server.drain(Duration::from_millis(cli.drain_ms));
    if cancelled > 0 {
        eprintln!("-- drain deadline expired: cancelled {cancelled} straggler(s)");
    }
    let ld = |f: &std::sync::atomic::AtomicU64| f.load(std::sync::atomic::Ordering::Relaxed);
    let stats = server.stats();
    eprintln!(
        "-- shutting down: {} connection(s), {} request(s), {} overloaded, {} shed, {} protocol \
         error(s), {} cancelled, {} send failure(s), {} retries seen",
        ld(&stats.accepted),
        ld(&stats.requests),
        ld(&stats.overload_rejections),
        ld(&stats.queue_shed),
        ld(&stats.protocol_errors),
        ld(&stats.cancelled),
        ld(&stats.send_failures),
        ld(&stats.retries_seen),
    );
    server.shutdown();
    Ok(())
}

/// `xqp client`: one session against a running server. With `--retry N`
/// the session is a [`xqp_serve::ResilientClient`]; without it the policy
/// degrades to a single attempt, so both paths share one verb dispatch.
fn run_client(cli: &Cli) -> Result<(), String> {
    let addr = cli.file.as_deref().ok_or("`client` needs a server address")?;
    let verb = if cli.ping {
        "ping"
    } else {
        cli.arg.as_deref().ok_or("`client` needs a verb (see --help)")?
    };
    let policy = xqp_serve::RetryPolicy {
        max_attempts: cli.retry.max(1),
        retry_budget: Duration::from_millis(cli.retry_budget_ms),
        seed: cli.seed,
        ..xqp_serve::RetryPolicy::default()
    };
    let mut client = xqp_serve::ResilientClient::connect(addr, policy)
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    if !cli.limits.is_unlimited() {
        client.set_limits(&cli.limits).map_err(|e| e.to_string())?;
    }
    let need = |n: usize, what: &str| -> Result<&str, String> {
        cli.extra.get(n).map(|s| s.as_str()).ok_or_else(|| format!("`{verb}` needs {what}"))
    };
    let t = Instant::now();
    match verb {
        "ping" => {
            let (generation, uptime_ms) = client.ping().map_err(|e| e.to_string())?;
            eprintln!(
                "-- pong in {:.2?} (generation {generation}, up {uptime_ms} ms)",
                t.elapsed()
            );
        }
        "stats" => {
            for (name, value) in client.stats().map_err(|e| e.to_string())? {
                println!("{name}\t{value}");
            }
        }
        "query" => {
            let doc = need(0, "a document name")?;
            let q = need(1, "an XQuery expression")?;
            let (generation, out) = client.query(doc, q).map_err(|e| e.to_string())?;
            if cli.pretty {
                match xqp::xml::parse_document(&out) {
                    Ok(d) => print!("{}", xqp::xml::serialize_pretty(&d, 2)),
                    Err(_) => println!("{out}"),
                }
            } else {
                println!("{out}");
            }
            eprintln!("-- {:.2?} at generation {generation}", t.elapsed());
        }
        "select" => {
            let doc = need(0, "a document name")?;
            let p = need(1, "a path expression")?;
            let (generation, ids) = client.select(doc, p).map_err(|e| e.to_string())?;
            for id in &ids {
                println!("{id}");
            }
            eprintln!("-- {} node(s) in {:.2?} at generation {generation}", ids.len(), t.elapsed());
        }
        "insert" => {
            let doc = need(0, "a document name")?;
            let p = need(1, "a path expression")?;
            let frag = need(2, "an XML fragment")?;
            let n = client.insert(doc, p, frag).map_err(|e| e.to_string())?;
            eprintln!("-- inserted under {n} node(s) in {:.2?}", t.elapsed());
        }
        "delete" => {
            let doc = need(0, "a document name")?;
            let p = need(1, "a path expression")?;
            let n = client.delete(doc, p).map_err(|e| e.to_string())?;
            eprintln!("-- deleted {n} node(s) in {:.2?}", t.elapsed());
        }
        "docs" => {
            for name in client.list_docs().map_err(|e| e.to_string())? {
                println!("{name}");
            }
        }
        other => return Err(format!("unknown client verb `{other}` (see --help)")),
    }
    if client.retries_total() > 0 {
        eprintln!("-- {} retry attempt(s) used", client.retries_total());
    }
    client.close().map_err(|e| e.to_string())
}

/// `xqp fuzz`: run the differential fuzzer and report minimized repros.
fn run_fuzz(cli: &Cli) -> Result<(), String> {
    use xqp::fuzz::{fuzz, run_seed, with_quiet_panics, FuzzConfig};
    if cli.server {
        return run_fuzz_server(cli);
    }
    // `--replay N` re-runs exactly one *case* seed (as printed in a failure
    // report) — distinct from `--seed`, which seeds the master PRNG that
    // case seeds are drawn from.
    // `--tiny-pool` pins the paged legs to a starved 4-page pool; an
    // explicit `--buffer-pages` (or the env var) sizes them directly.
    let buffer_pages = cli.buffer_pages.or(if cli.tiny_pool { Some(4) } else { None });
    if let Some(case_seed) = cli.replay {
        let cfg = FuzzConfig {
            joins: cli.joins,
            functions: cli.functions,
            buffer_pages,
            ..FuzzConfig::default()
        };
        eprintln!("-- fuzz: replaying case seed {case_seed}");
        return match with_quiet_panics(|| run_seed(case_seed, &cfg)) {
            None => {
                eprintln!("-- fuzz: case seed {case_seed} agreed across the engine matrix");
                Ok(())
            }
            Some(failure) => {
                println!("{failure}");
                Err(format!("fuzz: case seed {case_seed} still diverges"))
            }
        };
    }
    let cfg = FuzzConfig {
        seed: cli.seed,
        iters: cli.iters,
        joins: cli.joins,
        functions: cli.functions,
        buffer_pages,
        ..FuzzConfig::default()
    };
    eprintln!(
        "-- fuzz: {} {}iteration(s) from master seed {}{}",
        cfg.iters,
        if cfg.joins {
            "join-shaped "
        } else if cfg.functions {
            "function-surface "
        } else {
            ""
        },
        cfg.seed,
        match cfg.buffer_pages {
            Some(p) => format!(" (paged legs behind a {p}-page pool)"),
            None => String::new(),
        }
    );
    let t = Instant::now();
    let summary = fuzz(&cfg);
    let dt = t.elapsed();
    for failure in &summary.failures {
        println!("{failure}");
    }
    if summary.ok() {
        eprintln!(
            "-- fuzz: all {} iteration(s) agreed across the engine matrix in {dt:.2?}",
            summary.iters_run
        );
        Ok(())
    } else {
        Err(format!(
            "fuzz: {} failure(s) in {} iteration(s); replay one with `xqp fuzz --replay <case \
             seed>` after fixing",
            summary.failures.len(),
            summary.iters_run
        ))
    }
}

/// `xqp fuzz --server`: the differential loopback leg — a real client
/// session over a real socket must agree with the in-process engine.
fn run_fuzz_server(cli: &Cli) -> Result<(), String> {
    use xqp_serve::fuzz::{fuzz_server, ServerFuzzConfig};
    let cfg = ServerFuzzConfig { seed: cli.seed, iters: cli.iters, ..Default::default() };
    eprintln!(
        "-- fuzz --server: {} loopback iteration(s) from master seed {}",
        cfg.iters, cfg.seed
    );
    let t = Instant::now();
    let summary = fuzz_server(&cfg);
    let dt = t.elapsed();
    for failure in &summary.failures {
        println!("{failure}");
    }
    if summary.ok() {
        eprintln!(
            "-- fuzz --server: all {} iteration(s) agreed with the in-process engine in {dt:.2?}",
            summary.iters_run
        );
        Ok(())
    } else {
        Err(format!(
            "fuzz --server: {} divergence(s) in {} iteration(s)",
            summary.failures.len(),
            summary.iters_run
        ))
    }
}

/// `xqp torture --net`: inject wire faults into every socket I/O point of
/// a client/server scenario and verify the resilience invariants.
fn run_torture_net(cli: &Cli) -> Result<(), String> {
    use xqp_serve::torture::{torture, NetTortureConfig};
    let cfg = NetTortureConfig { seed: cli.seed, iters: cli.iters, ..NetTortureConfig::default() };
    eprintln!("-- torture --net: >= {} wire fault(s) from master seed {}", cfg.iters, cfg.seed);
    let t = Instant::now();
    let report = torture(cfg);
    let dt = t.elapsed();
    for v in &report.violations {
        println!("{v}");
    }
    if report.clean() {
        eprintln!(
            "-- torture --net: {} injected fault(s) over {} wire point(s) held every invariant \
             in {dt:.2?} ({} quer{} saved by retry)",
            report.faults_injected,
            report.points_per_scenario,
            report.saved_by_retry,
            if report.saved_by_retry == 1 { "y" } else { "ies" },
        );
        Ok(())
    } else {
        Err(format!(
            "torture --net: {} violation(s); rerun with `xqp torture --net --seed {}`",
            report.violations.len(),
            cli.seed
        ))
    }
}

/// `xqp torture`: inject I/O faults into durable-store workloads and
/// verify recovery.
fn run_torture(cli: &Cli) -> Result<(), String> {
    use xqp::torture::{torture, TortureConfig};
    if cli.net {
        return run_torture_net(cli);
    }
    let cfg = TortureConfig { seed: cli.seed, iters: cli.iters, buffer_pages: cli.buffer_pages };
    eprintln!(
        "-- torture: >= {} fault point(s) from master seed {}{}",
        cfg.iters,
        cfg.seed,
        match cfg.buffer_pages {
            Some(p) => format!(" (paged stores behind a {p}-page pool)"),
            None => String::new(),
        }
    );
    let t = Instant::now();
    let report = torture(&cfg);
    let dt = t.elapsed();
    for v in &report.violations {
        println!("{v}");
    }
    if report.is_clean() {
        eprintln!(
            "-- torture: {} fault point(s) over {} scenario(s) recovered cleanly in {dt:.2?}",
            report.fault_points, report.scenarios
        );
        Ok(())
    } else {
        Err(format!(
            "torture: {} violation(s) in {} fault point(s); rerun with `xqp torture --seed {}`",
            report.violations.len(),
            report.fault_points,
            cli.seed
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_basic_command() {
        let cli = parse_args(&sv(&["query", "f.xml", "/a/b"])).unwrap();
        assert_eq!(cli.command, "query");
        assert_eq!(cli.file.as_deref(), Some("f.xml"));
        assert_eq!(cli.arg.as_deref(), Some("/a/b"));
        assert_eq!(cli.strategy, Strategy::Auto);
        assert_eq!(cli.rules, RuleSet::all());
        assert_eq!(cli.mode, EvalMode::Streaming);
        assert!(!cli.pretty);
    }

    #[test]
    fn parses_flags_anywhere() {
        let cli = parse_args(&sv(&[
            "--strategy",
            "nok",
            "select",
            "f.xml",
            "//x",
            "--pretty",
            "--no-rules",
        ]))
        .unwrap();
        assert_eq!(cli.command, "select");
        assert_eq!(cli.strategy, Strategy::NoK);
        assert_eq!(cli.rules, RuleSet::none());
        assert!(cli.pretty);
    }

    #[test]
    fn parses_materialize_flag() {
        let cli = parse_args(&sv(&["query", "f.xml", "//x", "--materialize"])).unwrap();
        assert_eq!(cli.mode, EvalMode::Materializing);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&sv(&["query"])).is_err());
        assert!(parse_args(&sv(&["query", "f.xml", "a", "b"])).is_err());
        assert!(parse_args(&sv(&["query", "f.xml", "--strategy"])).is_err());
        assert!(parse_args(&sv(&["query", "f.xml", "--strategy", "warp"])).is_err());
        assert!(parse_args(&sv(&["query", "f.xml", "--frobnicate"])).is_err());
    }

    #[test]
    fn parses_parallel_strategy() {
        let cli = parse_args(&sv(&["select", "f.xml", "//x", "--strategy", "parallel"])).unwrap();
        assert_eq!(cli.strategy, Strategy::Parallel { threads: 0 });
        let cli = parse_args(&sv(&["select", "f.xml", "//x", "--strategy", "parallel:8"])).unwrap();
        assert_eq!(cli.strategy, Strategy::Parallel { threads: 8 });
        assert!(
            parse_args(&sv(&["select", "f.xml", "//x", "--strategy", "parallel:many"])).is_err()
        );
    }

    #[test]
    fn stats_command_needs_no_arg() {
        let cli = parse_args(&sv(&["stats", "f.xml"])).unwrap();
        assert_eq!(cli.arg, None);
    }

    #[test]
    fn parses_fuzz_without_file() {
        let cli = parse_args(&sv(&["fuzz"])).unwrap();
        assert_eq!(cli.command, "fuzz");
        assert_eq!(cli.file, None);
        assert_eq!(cli.seed, 1);
        assert_eq!(cli.iters, 100);
    }

    #[test]
    fn parses_fuzz_flags() {
        let cli = parse_args(&sv(&["fuzz", "--seed", "42", "--iters", "5000"])).unwrap();
        assert_eq!(cli.seed, 42);
        assert_eq!(cli.iters, 5000);
        assert!(!cli.joins);
        assert!(!cli.functions);
        assert!(parse_args(&sv(&["fuzz", "--joins"])).unwrap().joins);
        assert!(parse_args(&sv(&["fuzz", "--functions"])).unwrap().functions);
        assert!(parse_args(&sv(&["fuzz", "--seed", "not-a-number"])).is_err());
        assert!(parse_args(&sv(&["fuzz", "--iters"])).is_err());
        // Stray positionals after `fuzz` are rejected.
        assert!(parse_args(&sv(&["fuzz", "f.xml"])).is_err());
    }

    #[test]
    fn parses_resource_limit_flags() {
        let cli = parse_args(&sv(&[
            "query",
            "f.xml",
            "//x",
            "--timeout-ms",
            "250",
            "--max-memory",
            "1024",
            "--max-rows",
            "10",
        ]))
        .unwrap();
        assert_eq!(cli.limits.timeout, Some(Duration::from_millis(250)));
        assert_eq!(cli.limits.max_memory, Some(1024));
        assert_eq!(cli.limits.max_rows, Some(10));
        assert!(parse_args(&sv(&["query", "f.xml", "//x", "--timeout-ms"])).is_err());
        assert!(parse_args(&sv(&["query", "f.xml", "//x", "--max-rows", "lots"])).is_err());
    }

    #[test]
    fn limits_default_to_unlimited() {
        let cli = parse_args(&sv(&["query", "f.xml", "//x"])).unwrap();
        assert!(cli.limits.is_unlimited());
    }

    #[test]
    fn parses_torture_command() {
        let cli = parse_args(&sv(&["torture", "--seed", "9", "--iters", "500"])).unwrap();
        assert_eq!(cli.command, "torture");
        assert_eq!(cli.file, None);
        assert_eq!(cli.seed, 9);
        assert_eq!(cli.iters, 500);
        assert!(parse_args(&sv(&["torture", "f.xml"])).is_err());
    }

    #[test]
    fn parses_serve_command() {
        let cli = parse_args(&sv(&["serve", "f.xml", "--addr", "0.0.0.0:9999"])).unwrap();
        assert_eq!(cli.command, "serve");
        assert_eq!(cli.file.as_deref(), Some("f.xml"));
        assert_eq!(cli.addr, "0.0.0.0:9999");
        assert_eq!(cli.max_inflight, 64);
        let cli = parse_args(&sv(&["serve", "dir", "--max-inflight", "4"])).unwrap();
        assert_eq!(cli.max_inflight, 4);
        assert!(parse_args(&sv(&["serve", "f.xml", "--max-inflight", "many"])).is_err());
        assert!(parse_args(&sv(&["serve", "f.xml", "--addr"])).is_err());
    }

    #[test]
    fn parses_client_positional_tail() {
        let cli =
            parse_args(&sv(&["client", "127.0.0.1:7878", "insert", "doc", "/a", "<x/>"])).unwrap();
        assert_eq!(cli.file.as_deref(), Some("127.0.0.1:7878"));
        assert_eq!(cli.arg.as_deref(), Some("insert"));
        assert_eq!(cli.extra, vec!["doc".to_string(), "/a".to_string(), "<x/>".to_string()]);
        // Other commands still reject long tails.
        assert!(parse_args(&sv(&["query", "f.xml", "a", "b"])).is_err());
    }

    #[test]
    fn parses_fuzz_server_flag() {
        let cli = parse_args(&sv(&["fuzz", "--server", "--iters", "8"])).unwrap();
        assert!(cli.server);
        assert_eq!(cli.iters, 8);
        assert!(!parse_args(&sv(&["fuzz"])).unwrap().server);
    }

    #[test]
    fn parses_buffer_pages() {
        let cli = parse_args(&sv(&["open", "store", "//x", "--buffer-pages", "64"])).unwrap();
        assert_eq!(cli.buffer_pages, Some(64));
        assert!(parse_args(&sv(&["open", "store", "//x", "--buffer-pages"])).is_err());
        assert!(parse_args(&sv(&["open", "store", "//x", "--buffer-pages", "lots"])).is_err());
    }

    #[test]
    fn parses_fuzz_tiny_pool() {
        assert!(parse_args(&sv(&["fuzz", "--tiny-pool"])).unwrap().tiny_pool);
        assert!(!parse_args(&sv(&["fuzz"])).unwrap().tiny_pool);
        // An explicit pool size rides along with --tiny-pool and wins.
        let cli = parse_args(&sv(&["fuzz", "--tiny-pool", "--buffer-pages", "2"])).unwrap();
        assert_eq!(cli.buffer_pages, Some(2));
    }

    #[test]
    fn parses_resilience_flags() {
        let cli =
            parse_args(&sv(&["client", "127.0.0.1:1", "query", "doc", "//x", "--retry", "5"]))
                .unwrap();
        assert_eq!(cli.retry, 5);
        assert_eq!(cli.retry_budget_ms, 2000);
        let cli = parse_args(&sv(&["client", "127.0.0.1:1", "--ping"])).unwrap();
        assert!(cli.ping);
        assert_eq!(cli.arg, None);
        let cli = parse_args(&sv(&["serve", "f.xml", "--drain-ms", "500"])).unwrap();
        assert_eq!(cli.drain_ms, 500);
        assert_eq!(parse_args(&sv(&["serve", "f.xml"])).unwrap().drain_ms, 2000);
        let cli = parse_args(&sv(&["torture", "--net", "--iters", "50"])).unwrap();
        assert!(cli.net);
        assert_eq!(cli.iters, 50);
        assert!(!parse_args(&sv(&["torture"])).unwrap().net);
        let cli = parse_args(&sv(&[
            "client",
            "127.0.0.1:1",
            "query",
            "doc",
            "//x",
            "--retry",
            "3",
            "--retry-budget-ms",
            "750",
        ]))
        .unwrap();
        assert_eq!(cli.retry_budget_ms, 750);
        assert!(parse_args(&sv(&["client", "a", "ping", "--retry"])).is_err());
        assert!(parse_args(&sv(&["serve", "f.xml", "--drain-ms", "soon"])).is_err());
    }

    #[test]
    fn parses_fuzz_replay() {
        let cli = parse_args(&sv(&["fuzz", "--replay", "12345"])).unwrap();
        assert_eq!(cli.replay, Some(12345));
        assert!(parse_args(&sv(&["fuzz", "--replay"])).is_err());
        assert!(parse_args(&sv(&["fuzz", "--replay", "-3"])).is_err());
    }
}
