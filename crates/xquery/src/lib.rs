//! # xqp-xquery — the XQuery-subset frontend
//!
//! Parses the recursion-free XQuery fragment the paper's algebra targets
//! (§3.1: "I identify a subclass of XQuery that does not include recursive
//! functions, and define a complete algebra for this subclass") and
//! translates it directly into `xqp-algebra` terms:
//!
//! * **FLWOR expressions** (`for` / `let` / `where` / `order by` / `return`)
//!   become [`xqp_algebra::LogicalPlan`] pipelines building the `Env` sort;
//! * **path expressions** become [`xqp_algebra::Expr::Path`] nodes whose
//!   steps come from the `xqp-xpath` parser;
//! * **constructor expressions** (`<result>{$t}{$a}</result>`) become
//!   [`xqp_algebra::SchemaTree`]s — Definition 2, extracted exactly as in the
//!   paper's Fig. 1(b);
//! * arithmetic / comparison / logical expressions, `if/then/else`, literals
//!   and built-in function calls become the corresponding [`Expr`] nodes.
//!
//! Out of scope (rejected with a parse error): user-defined functions,
//! recursion, type declarations — per the paper, "type checking and
//! error/exception handling are outside the scope".

pub mod parser;

pub use parser::{parse_query, ParseError};

use xqp_algebra::Expr;

/// A parsed query: always an expression (FLWORs appear as
/// [`Expr::Flwor`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The query body.
    pub body: Expr,
}
