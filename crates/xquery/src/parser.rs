//! Recursive-descent parser and translator for the XQuery subset.
//!
//! Parsing and translation are one pass: the parser emits `xqp-algebra`
//! [`Expr`]s and [`LogicalPlan`]s directly. Grammar (simplified):
//!
//! ```text
//! query      := expr
//! expr       := flwor | ifExpr | quantified | orExpr
//! quantified := ("some" | "every") "$" NAME "in" expr
//!               ("," "$" NAME "in" expr)* "satisfies" expr
//! flwor      := (forClause | letClause)+ ("where" expr)?
//!               ("order" "by" orderKey ("," orderKey)*)? "return" expr
//! forClause  := "for" "$" NAME "in" expr ("," "$" NAME "in" expr)*
//! letClause  := "let" "$" NAME ":=" expr ("," "$" NAME ":=" expr)*
//! ifExpr     := "if" "(" expr ")" "then" expr "else" expr
//! orExpr     := andExpr ("or" andExpr)*
//! andExpr    := cmpExpr ("and" cmpExpr)*
//! cmpExpr    := addExpr (CMP addExpr)?
//! addExpr    := mulExpr (("+" | "-") mulExpr)*
//! mulExpr    := unary (("*" | "div" | "mod") unary)*
//! unary      := "-" unary | postfix
//! postfix    := primary pathContinuation?
//! primary    := literal | "$" NAME | "(" exprList? ")" | constructor
//!             | "doc" "(" STRING ")" | FN "(" exprList? ")" | absolutePath
//! constructor:= "<" NAME (NAME "=" quotedTemplate)* ("/>" | ">" content "</" NAME ">")
//! content    := (text | "{" expr "}" | constructor)*
//! ```
//!
//! XQuery comments `(: … :)` (nesting allowed) are whitespace.

use xqp_algebra::expr::ArithOp;
use xqp_algebra::plan::OrderKey;
use xqp_algebra::{Expr, LogicalPlan, SchemaNode, SchemaTree};
use xqp_xml::Atomic;
use xqp_xpath::parser::{parse_path_continuation, parse_path_prefix};
use xqp_xpath::CmpOp;

use crate::Query;
use std::fmt;

/// XQuery parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XQuery parse error at {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete query.
pub fn parse_query(input: &str) -> Result<Query, ParseError> {
    let mut q = Q { input, pos: 0 };
    let body = q.expr()?;
    q.skip_ws();
    if q.pos < input.len() {
        return Err(q.err("trailing input after query"));
    }
    Ok(Query { body })
}

struct Q<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Q<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError { offset: self.pos, message: msg.into() }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn skip_ws(&mut self) {
        loop {
            let before = self.pos;
            while self.rest().starts_with(|c: char| c.is_whitespace()) {
                self.pos += 1;
            }
            // XQuery comments `(: … :)`, possibly nested.
            if self.rest().starts_with("(:") {
                self.pos += 2;
                let mut depth = 1;
                while depth > 0 {
                    if self.rest().starts_with("(:") {
                        depth += 1;
                        self.pos += 2;
                    } else if self.rest().starts_with(":)") {
                        depth -= 1;
                        self.pos += 2;
                    } else if self.pos >= self.input.len() {
                        return; // unterminated comment: caller errors next
                    } else {
                        self.pos += self.peek().map_or(1, char::len_utf8);
                    }
                }
            }
            if self.pos == before {
                return;
            }
        }
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.rest().starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), ParseError> {
        self.skip_ws();
        if self.eat(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{s}`")))
        }
    }

    /// Match a keyword followed by a non-name character.
    fn keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        let rest = self.rest();
        if let Some(tail) = rest.strip_prefix(kw) {
            let after = tail.chars().next();
            if !matches!(after, Some(c) if c.is_alphanumeric() || c == '_' || c == '-') {
                self.pos += kw.len();
                return true;
            }
        }
        false
    }

    fn peek_keyword(&mut self, kw: &str) -> bool {
        let save = self.pos;
        let hit = self.keyword(kw);
        self.pos = save;
        hit
    }

    fn name(&mut self) -> Option<String> {
        let rest = self.rest();
        let mut end = 0;
        for (i, c) in rest.char_indices() {
            let ok = if i == 0 {
                c.is_alphabetic() || c == '_'
            } else {
                c.is_alphanumeric() || matches!(c, '_' | '-' | '.')
            };
            if !ok {
                break;
            }
            end = i + c.len_utf8();
        }
        if end == 0 {
            return None;
        }
        let n = rest[..end].to_string();
        self.pos += end;
        Some(n)
    }

    fn var_name(&mut self) -> Result<String, ParseError> {
        self.expect("$")?;
        self.name().ok_or_else(|| self.err("expected variable name after `$`"))
    }

    // ---- expressions ------------------------------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.skip_ws();
        if self.peek_keyword("for") || self.peek_keyword("let") {
            return self.flwor();
        }
        if self.peek_keyword("if") {
            return self.if_expr();
        }
        if self.peek_keyword("some") || self.peek_keyword("every") {
            return self.quantified();
        }
        self.or_expr()
    }

    /// `some $x in e1 (, $y in e2)* satisfies cond` / `every …`. Multi-
    /// clause forms desugar into right-nested single-clause quantifiers
    /// (equivalent by the standard rewriting, including the short-circuit
    /// order).
    fn quantified(&mut self) -> Result<Expr, ParseError> {
        let every = if self.keyword("every") {
            true
        } else {
            self.keyword("some");
            false
        };
        let mut clauses = Vec::new();
        loop {
            let var = self.var_name()?;
            if !self.keyword("in") {
                return Err(self.err("expected `in` in quantified expression"));
            }
            let source = self.expr()?;
            clauses.push((var, source));
            self.skip_ws();
            if !self.eat(",") {
                break;
            }
        }
        if !self.keyword("satisfies") {
            return Err(self.err("expected `satisfies` in quantified expression"));
        }
        let mut body = self.expr()?;
        for (var, source) in clauses.into_iter().rev() {
            body = Expr::Quantified { every, var, source: Box::new(source), cond: Box::new(body) };
        }
        Ok(body)
    }

    fn flwor(&mut self) -> Result<Expr, ParseError> {
        let mut plan = LogicalPlan::EnvRoot;
        let mut any = false;
        loop {
            if self.keyword("for") {
                loop {
                    let var = self.var_name()?;
                    if !self.keyword("in") {
                        return Err(self.err("expected `in` in for clause"));
                    }
                    let source = self.expr()?;
                    plan = LogicalPlan::ForBind { input: Box::new(plan), var, source };
                    self.skip_ws();
                    if !self.eat(",") {
                        break;
                    }
                }
                any = true;
            } else if self.keyword("let") {
                loop {
                    let var = self.var_name()?;
                    self.expect(":=")?;
                    let source = self.expr()?;
                    plan = LogicalPlan::LetBind { input: Box::new(plan), var, source };
                    self.skip_ws();
                    if !self.eat(",") {
                        break;
                    }
                }
                any = true;
            } else {
                break;
            }
        }
        if !any {
            return Err(self.err("expected for/let clause"));
        }
        if self.keyword("where") {
            let cond = self.expr()?;
            plan = LogicalPlan::Where { input: Box::new(plan), cond };
        }
        if self.keyword("order") {
            if !self.keyword("by") {
                return Err(self.err("expected `by` after `order`"));
            }
            let mut keys = Vec::new();
            loop {
                let expr = self.expr()?;
                let descending = if self.keyword("descending") {
                    true
                } else {
                    let _ = self.keyword("ascending");
                    false
                };
                keys.push(OrderKey { expr, descending });
                self.skip_ws();
                if !self.eat(",") {
                    break;
                }
            }
            plan = LogicalPlan::OrderBy { input: Box::new(plan), keys };
        }
        if !self.keyword("return") {
            return Err(self.err("expected `return` clause"));
        }
        let expr = self.expr()?;
        plan = LogicalPlan::ReturnClause { input: Box::new(plan), expr };
        Ok(Expr::Flwor(Box::new(plan)))
    }

    fn if_expr(&mut self) -> Result<Expr, ParseError> {
        if !self.keyword("if") {
            return Err(self.err("expected `if`"));
        }
        self.expect("(")?;
        let cond = self.expr()?;
        self.expect(")")?;
        if !self.keyword("then") {
            return Err(self.err("expected `then`"));
        }
        let then_branch = self.expr()?;
        if !self.keyword("else") {
            return Err(self.err("expected `else`"));
        }
        let else_branch = self.expr()?;
        Ok(Expr::If {
            cond: Box::new(cond),
            then_branch: Box::new(then_branch),
            else_branch: Box::new(else_branch),
        })
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.and_expr()?;
        while self.keyword("or") {
            let right = self.and_expr()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.cmp_expr()?;
        while self.keyword("and") {
            let right = self.cmp_expr()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let left = self.add_expr()?;
        self.skip_ws();
        let op = if self.eat("!=") {
            Some(CmpOp::Ne)
        } else if self.eat("<=") {
            Some(CmpOp::Le)
        } else if self.eat(">=") {
            Some(CmpOp::Ge)
        } else if self.eat("=") {
            Some(CmpOp::Eq)
        } else if self.rest().starts_with('<') && !self.rest().starts_with("<<") {
            // `<` here is a comparison: constructors only start at primary
            // position, which add_expr already consumed past.
            self.pos += 1;
            Some(CmpOp::Lt)
        } else if self.eat(">") {
            Some(CmpOp::Gt)
        } else {
            None
        };
        match op {
            Some(op) => {
                let right = self.add_expr()?;
                Ok(Expr::Cmp { op, lhs: Box::new(left), rhs: Box::new(right) })
            }
            None => Ok(left),
        }
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.mul_expr()?;
        loop {
            self.skip_ws();
            let op = if self.eat("+") {
                ArithOp::Add
            } else if self.eat("-") {
                ArithOp::Sub
            } else {
                return Ok(left);
            };
            let right = self.mul_expr()?;
            left = Expr::Arith { op, lhs: Box::new(left), rhs: Box::new(right) };
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.unary()?;
        loop {
            self.skip_ws();
            let op = if self.eat("*") {
                ArithOp::Mul
            } else if self.keyword("div") {
                ArithOp::Div
            } else if self.keyword("mod") {
                ArithOp::Mod
            } else {
                return Ok(left);
            };
            let right = self.unary()?;
            left = Expr::Arith { op, lhs: Box::new(left), rhs: Box::new(right) };
        }
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        self.skip_ws();
        if self.eat("-") {
            let inner = self.unary()?;
            return Ok(Expr::Arith {
                op: ArithOp::Sub,
                lhs: Box::new(Expr::lit(0i64)),
                rhs: Box::new(inner),
            });
        }
        self.postfix()
    }

    /// A primary expression plus an optional path continuation.
    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let primary = self.primary()?;
        self.skip_ws();
        if self.rest().starts_with('/') {
            let (mut path, used) = parse_path_continuation(self.rest())
                .map_err(|e| ParseError { offset: self.pos + e.offset, message: e.message })?;
            self.pos += used;
            // `doc(…)/a/b` is an absolute path: the document node is the
            // context, so the continuation is rooted.
            if matches!(primary, Expr::ContextDoc) {
                path.absolute = true;
            }
            return Ok(Expr::Path { base: Box::new(primary), path });
        }
        Ok(primary)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some('"') | Some('\'') => {
                let s = self.string_literal()?;
                Ok(Expr::Literal(Atomic::Str(s)))
            }
            Some(c) if c.is_ascii_digit() => self.number(),
            Some('$') => {
                let var = self.var_name()?;
                Ok(Expr::Var(var))
            }
            Some('(') => {
                self.pos += 1;
                self.skip_ws();
                if self.eat(")") {
                    return Ok(Expr::SequenceExpr(vec![]));
                }
                let mut items = vec![self.expr()?];
                loop {
                    self.skip_ws();
                    if self.eat(",") {
                        items.push(self.expr()?);
                    } else {
                        break;
                    }
                }
                self.expect(")")?;
                if items.len() == 1 {
                    Ok(items.pop().expect("one item"))
                } else {
                    Ok(Expr::SequenceExpr(items))
                }
            }
            Some('<') => self.constructor().map(|n| Expr::Construct(Box::new(SchemaTree::new(n)))),
            Some('/') => {
                let (path, used) = parse_path_prefix(self.rest())
                    .map_err(|e| ParseError { offset: self.pos + e.offset, message: e.message })?;
                self.pos += used;
                Ok(Expr::doc_path(path))
            }
            _ => self.name_led(),
        }
    }

    /// Primary expressions beginning with a name: `doc("…")`, `true()`,
    /// function calls — or an error for relative paths, which need a `$var`
    /// context in this subset.
    fn name_led(&mut self) -> Result<Expr, ParseError> {
        let start = self.pos;
        let Some(word) = self.name() else {
            return Err(self.err("expected an expression"));
        };
        self.skip_ws();
        if self.rest().starts_with('(') {
            match word.as_str() {
                "doc" | "document" => {
                    self.expect("(")?;
                    self.skip_ws();
                    // The document URI is accepted and ignored: the engine
                    // binds the context document at execution time.
                    if matches!(self.peek(), Some('"') | Some('\'')) {
                        let _uri = self.string_literal()?;
                    }
                    self.expect(")")?;
                    return Ok(Expr::ContextDoc);
                }
                "true" => {
                    self.expect("(")?;
                    self.expect(")")?;
                    return Ok(Expr::Literal(Atomic::Boolean(true)));
                }
                "false" => {
                    self.expect("(")?;
                    self.expect(")")?;
                    return Ok(Expr::Literal(Atomic::Boolean(false)));
                }
                _ => {
                    self.expect("(")?;
                    self.skip_ws();
                    let mut args = Vec::new();
                    if !self.eat(")") {
                        args.push(self.expr()?);
                        loop {
                            self.skip_ws();
                            if self.eat(",") {
                                args.push(self.expr()?);
                            } else {
                                break;
                            }
                        }
                        self.expect(")")?;
                    }
                    if word == "not" && args.len() == 1 {
                        return Ok(Expr::Not(Box::new(args.pop().expect("one arg"))));
                    }
                    return Ok(Expr::Call { name: word, args });
                }
            }
        }
        self.pos = start;
        Err(self.err(format!(
            "relative path `{word}…` needs a variable context in this subset (use $var/{word})"
        )))
    }

    fn string_literal(&mut self) -> Result<String, ParseError> {
        let q = match self.peek() {
            Some(c @ ('"' | '\'')) => c,
            _ => return Err(self.err("expected string literal")),
        };
        self.pos += 1;
        let rest = self.rest();
        let end = rest.find(q).ok_or_else(|| self.err("unterminated string literal"))?;
        let s = rest[..end].to_string();
        self.pos += end + 1;
        Ok(s)
    }

    fn number(&mut self) -> Result<Expr, ParseError> {
        let rest = self.rest();
        let mut end = 0;
        let mut saw_dot = false;
        for (i, c) in rest.char_indices() {
            if c.is_ascii_digit() {
                end = i + 1;
            } else if c == '.' && !saw_dot {
                saw_dot = true;
                end = i + 1;
            } else {
                break;
            }
        }
        let text = &rest[..end];
        self.pos += end;
        if saw_dot {
            let d: f64 = text.parse().map_err(|_| self.err("bad number"))?;
            Ok(Expr::Literal(Atomic::Double(d)))
        } else {
            let i: i64 = text.parse().map_err(|_| self.err("bad number"))?;
            Ok(Expr::Literal(Atomic::Integer(i)))
        }
    }

    // ---- constructors (SchemaTree extraction, Fig. 1(b)) -------------------

    fn constructor(&mut self) -> Result<SchemaNode, ParseError> {
        self.expect("<")?;
        let name = self.name().ok_or_else(|| self.err("expected element name"))?;
        let mut attributes = Vec::new();
        loop {
            self.skip_ws();
            if self.eat("/>") {
                return Ok(SchemaNode::Element { name, attributes, children: vec![] });
            }
            if self.eat(">") {
                break;
            }
            let attr = self.name().ok_or_else(|| self.err("expected attribute name"))?;
            self.skip_ws();
            self.expect("=")?;
            self.skip_ws();
            let value = self.attr_template()?;
            attributes.push((attr, value));
        }
        let children = self.content(&name)?;
        Ok(SchemaNode::Element { name, attributes, children })
    }

    /// Attribute value template: literal text with embedded `{expr}` parts.
    fn attr_template(&mut self) -> Result<Expr, ParseError> {
        let q = match self.peek() {
            Some(c @ ('"' | '\'')) => c,
            _ => return Err(self.err("expected quoted attribute value")),
        };
        self.pos += 1;
        let mut parts: Vec<Expr> = Vec::new();
        let mut lit = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated attribute value")),
                Some(c) if c == q => {
                    self.pos += 1;
                    break;
                }
                Some('{') if self.rest().starts_with("{{") => {
                    lit.push('{');
                    self.pos += 2;
                }
                Some('{') => {
                    if !lit.is_empty() {
                        parts.push(Expr::Literal(Atomic::Str(std::mem::take(&mut lit))));
                    }
                    self.pos += 1;
                    let e = self.expr()?;
                    self.expect("}")?;
                    parts.push(e);
                }
                Some('}') if self.rest().starts_with("}}") => {
                    lit.push('}');
                    self.pos += 2;
                }
                Some(c) => {
                    lit.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
        if !lit.is_empty() || parts.is_empty() {
            parts.push(Expr::Literal(Atomic::Str(lit)));
        }
        if parts.len() == 1 {
            Ok(parts.pop().expect("one part"))
        } else {
            Ok(Expr::Call { name: "concat".into(), args: parts })
        }
    }

    /// Element content until the matching end tag.
    fn content(&mut self, open: &str) -> Result<Vec<SchemaNode>, ParseError> {
        let mut out = Vec::new();
        let mut text = String::new();
        macro_rules! flush_text {
            () => {
                if !text.trim().is_empty() {
                    // Boundary whitespace is stripped (XQuery default); inner
                    // text keeps its spacing.
                    out.push(SchemaNode::Text(std::mem::take(&mut text)));
                } else {
                    text.clear();
                }
            };
        }
        loop {
            match self.peek() {
                None => return Err(self.err(format!("unterminated constructor <{open}>"))),
                Some('<') if self.rest().starts_with("</") => {
                    flush_text!();
                    self.pos += 2;
                    let close = self.name().ok_or_else(|| self.err("expected closing tag name"))?;
                    if close != open {
                        return Err(
                            self.err(format!("mismatched constructor tags: <{open}> … </{close}>"))
                        );
                    }
                    self.skip_ws();
                    self.expect(">")?;
                    return Ok(out);
                }
                Some('<') => {
                    flush_text!();
                    out.push(self.constructor()?);
                }
                Some('{') if self.rest().starts_with("{{") => {
                    text.push('{');
                    self.pos += 2;
                }
                Some('{') => {
                    flush_text!();
                    self.pos += 1;
                    let e = self.expr()?;
                    self.expect("}")?;
                    out.push(placeholder_node(e));
                }
                Some('}') if self.rest().starts_with("}}") => {
                    text.push('}');
                    self.pos += 2;
                }
                Some(c) => {
                    text.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

/// Wrap a placeholder expression; conditional constructors become proper
/// if-nodes (Definition 2).
fn placeholder_node(e: Expr) -> SchemaNode {
    if let Expr::If { cond, then_branch, else_branch } = e {
        let to_children = |e: Expr| -> Option<Vec<SchemaNode>> {
            match e {
                Expr::Construct(tree) => Some(vec![tree.root]),
                Expr::SequenceExpr(items) if items.is_empty() => Some(vec![]),
                _ => None,
            }
        };
        let then_c = to_children((*then_branch).clone());
        let else_c = to_children((*else_branch).clone());
        if let (Some(t), Some(el)) = (then_c, else_c) {
            return SchemaNode::If { cond: *cond, then_children: t, else_children: el };
        }
        return SchemaNode::Placeholder(Expr::If { cond, then_branch, else_branch });
    }
    SchemaNode::Placeholder(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqp_algebra::plan::LogicalPlan as LP;

    fn parse(s: &str) -> Expr {
        parse_query(s).unwrap_or_else(|e| panic!("parse `{s}`: {e}")).body
    }

    /// The paper's Fig. 1(a) query.
    const FIG1: &str = r#"
        <results> {
            for $b in document("bib.xml")/bib/book
            let $t := $b/title
            let $a := $b/author
            return <result> {$t} {$a} </result>
        } </results>
    "#;

    #[test]
    fn fig1_parses_to_constructor_with_flwor() {
        let e = parse(FIG1);
        let Expr::Construct(tree) = e else { panic!("expected constructor") };
        assert_eq!(tree.root_name(), "results");
        // One placeholder child holding the FLWOR.
        let SchemaNode::Element { children, .. } = &tree.root else { unreachable!() };
        assert_eq!(children.len(), 1);
        let SchemaNode::Placeholder(Expr::Flwor(plan)) = &children[0] else {
            panic!("expected FLWOR placeholder, got {children:?}")
        };
        // return(let(let(for(env-root))))
        assert_eq!(plan.len(), 5);
        let ex = plan.explain();
        assert!(ex.contains("for $b in doc()/bib/book"));
        assert!(ex.contains("return"));
    }

    #[test]
    fn fig1_inner_schema_tree() {
        let e = parse(FIG1);
        let Expr::Construct(tree) = e else { panic!() };
        let SchemaNode::Element { children, .. } = &tree.root else { unreachable!() };
        let SchemaNode::Placeholder(Expr::Flwor(plan)) = &children[0] else { panic!() };
        let LP::ReturnClause { expr, .. } = plan.as_ref() else { panic!() };
        let Expr::Construct(inner) = expr else { panic!("return is a constructor") };
        assert_eq!(inner.root_name(), "result");
        assert_eq!(inner.placeholder_count(), 2);
    }

    #[test]
    fn for_with_where_and_order() {
        let e = parse(
            "for $b in doc()/bib/book where $b/price > 50 order by $b/title descending return $b",
        );
        let Expr::Flwor(plan) = e else { panic!() };
        let LP::ReturnClause { input, .. } = plan.as_ref() else { panic!() };
        let LP::OrderBy { input, keys } = input.as_ref() else { panic!("order by") };
        assert_eq!(keys.len(), 1);
        assert!(keys[0].descending);
        let LP::Where { cond, .. } = input.as_ref() else { panic!("where") };
        assert!(matches!(cond, Expr::Cmp { op: CmpOp::Gt, .. }));
    }

    #[test]
    fn multi_variable_for_clause() {
        let e = parse("for $a in doc()/r/x, $b in $a/y return $b");
        let Expr::Flwor(plan) = e else { panic!() };
        // return(for $b(for $a(env-root)))
        assert_eq!(plan.len(), 4);
    }

    #[test]
    fn let_clause_with_comma() {
        let e = parse("for $b in doc()/r let $t := $b/t, $u := $b/u return ($t, $u)");
        let Expr::Flwor(plan) = e else { panic!() };
        assert_eq!(plan.len(), 5);
        assert!(plan.free_vars().is_empty());
    }

    #[test]
    fn arithmetic_precedence() {
        let e = parse("for $x in doc()/r return 1 + 2 * 3");
        let Expr::Flwor(plan) = e else { panic!() };
        let LP::ReturnClause { expr, .. } = plan.as_ref() else { panic!() };
        // + at top, * nested.
        let Expr::Arith { op: ArithOp::Add, rhs, .. } = expr else { panic!("{expr:?}") };
        assert!(matches!(rhs.as_ref(), Expr::Arith { op: ArithOp::Mul, .. }));
    }

    #[test]
    fn comparison_and_boolean_operators() {
        let e = parse("if ($x < 3 and $y >= 2 or not($z)) then 1 else 2");
        let Expr::If { cond, .. } = e else { panic!() };
        assert!(matches!(cond.as_ref(), Expr::Or(_, _)));
    }

    #[test]
    fn doc_function_with_path() {
        let e = parse("doc(\"bib.xml\")/bib/book");
        match e {
            Expr::Path { base, path } => {
                assert_eq!(*base, Expr::ContextDoc);
                assert_eq!(path.steps.len(), 2);
                assert!(path.absolute); // doc() continuations are rooted
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bare_absolute_path() {
        let e = parse("/site//item[@id = \"i1\"]");
        match e {
            Expr::Path { base, path } => {
                assert_eq!(*base, Expr::ContextDoc);
                assert!(path.absolute);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn var_path_with_predicates() {
        let e = parse("for $b in doc()/bib/book return $b/author[1]");
        let Expr::Flwor(plan) = e else { panic!() };
        let LP::ReturnClause { expr, .. } = plan.as_ref() else { panic!() };
        let Expr::Path { base, path } = expr else { panic!() };
        assert_eq!(**base, Expr::Var("b".into()));
        assert_eq!(path.steps[0].predicates.len(), 1);
    }

    #[test]
    fn function_calls() {
        let e = parse("count(doc()/bib/book)");
        let Expr::Call { name, args } = e else { panic!() };
        assert_eq!(name, "count");
        assert_eq!(args.len(), 1);
        let e = parse("concat(\"a\", \"b\", \"c\")");
        let Expr::Call { args, .. } = e else { panic!() };
        assert_eq!(args.len(), 3);
    }

    #[test]
    fn not_becomes_expr_not() {
        let e = parse("not(true())");
        assert_eq!(e, Expr::Not(Box::new(Expr::Literal(Atomic::Boolean(true)))));
    }

    #[test]
    fn true_false_literals() {
        assert_eq!(parse("true()"), Expr::Literal(Atomic::Boolean(true)));
        assert_eq!(parse("false()"), Expr::Literal(Atomic::Boolean(false)));
    }

    #[test]
    fn sequences_and_empty_sequence() {
        assert_eq!(parse("()"), Expr::SequenceExpr(vec![]));
        let e = parse("(1, 2, 3)");
        let Expr::SequenceExpr(items) = e else { panic!() };
        assert_eq!(items.len(), 3);
        assert_eq!(parse("(5)"), Expr::Literal(Atomic::Integer(5)));
    }

    #[test]
    fn unary_minus() {
        let e = parse("-5");
        assert!(matches!(e, Expr::Arith { op: ArithOp::Sub, .. }));
    }

    #[test]
    fn constructor_attributes_with_templates() {
        let e = parse(r#"<item id="{$i}" label="x{$n}y" fixed="plain"/>"#);
        let Expr::Construct(tree) = e else { panic!() };
        let SchemaNode::Element { attributes, .. } = &tree.root else { panic!() };
        assert_eq!(attributes.len(), 3);
        assert_eq!(attributes[0].1, Expr::Var("i".into()));
        assert!(
            matches!(&attributes[1].1, Expr::Call { name, args } if name == "concat" && args.len() == 3)
        );
        assert_eq!(attributes[2].1, Expr::Literal(Atomic::Str("plain".into())));
    }

    #[test]
    fn nested_constructors_and_text() {
        let e = parse("<a><b>hello</b><c/></a>");
        let Expr::Construct(tree) = e else { panic!() };
        let SchemaNode::Element { children, .. } = &tree.root else { panic!() };
        assert_eq!(children.len(), 2);
        let SchemaNode::Element { name, children: bc, .. } = &children[0] else { panic!() };
        assert_eq!(name, "b");
        assert_eq!(bc[0], SchemaNode::Text("hello".into()));
    }

    #[test]
    fn boundary_whitespace_stripped() {
        let e = parse("<a>  <b/>  </a>");
        let Expr::Construct(tree) = e else { panic!() };
        let SchemaNode::Element { children, .. } = &tree.root else { panic!() };
        assert_eq!(children.len(), 1);
    }

    #[test]
    fn escaped_braces_in_content() {
        let e = parse("<a>brace {{x}} here</a>");
        let Expr::Construct(tree) = e else { panic!() };
        let SchemaNode::Element { children, .. } = &tree.root else { panic!() };
        assert_eq!(children[0], SchemaNode::Text("brace {x} here".into()));
    }

    #[test]
    fn conditional_content_becomes_if_node() {
        let e = parse("<a>{ if ($x > 1) then <big/> else () }</a>");
        let Expr::Construct(tree) = e else { panic!() };
        let SchemaNode::Element { children, .. } = &tree.root else { panic!() };
        let SchemaNode::If { then_children, else_children, .. } = &children[0] else {
            panic!("expected if-node, got {children:?}")
        };
        assert_eq!(then_children.len(), 1);
        assert!(else_children.is_empty());
    }

    #[test]
    fn comments_are_whitespace() {
        let e = parse("(: outer (: nested :) :) for $x in doc()/r return (: mid :) $x");
        assert!(matches!(e, Expr::Flwor(_)));
    }

    #[test]
    fn nested_flwor() {
        let e = parse("for $a in doc()/r/x return for $b in $a/y return ($a, $b)");
        let Expr::Flwor(plan) = e else { panic!() };
        let LP::ReturnClause { expr, .. } = plan.as_ref() else { panic!() };
        assert!(matches!(expr, Expr::Flwor(_)));
    }

    #[test]
    fn errors() {
        assert!(parse_query("for $x in").is_err());
        assert!(parse_query("for $x doc()/r return $x").is_err());
        assert!(parse_query("for $x in doc()/r").is_err()); // missing return
        assert!(parse_query("if (1) then 2").is_err()); // missing else
        assert!(parse_query("<a><b></a></b>").is_err());
        assert!(parse_query("title/author").is_err()); // relative without context
        assert!(parse_query("$x junk").is_err());
        assert!(parse_query("").is_err());
    }

    #[test]
    fn string_literals_both_quotes() {
        assert_eq!(parse("\"abc\""), Expr::Literal(Atomic::Str("abc".into())));
        assert_eq!(parse("'abc'"), Expr::Literal(Atomic::Str("abc".into())));
    }

    #[test]
    fn where_with_contains() {
        let e =
            parse("for $p in doc()/people/person where contains($p/name, \"Ali\") return $p/name");
        let Expr::Flwor(plan) = e else { panic!() };
        let ex = plan.explain();
        assert!(ex.contains("contains("));
    }
}
