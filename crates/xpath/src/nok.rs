//! NoK (next-of-kin) partitioning — §4.2 of the paper.
//!
//! A *NoK expression* uses only local structural relationships, so it can be
//! evaluated "using a navigational technique … without the need for
//! structural joins". A general pattern is partitioned "into interconnected
//! NoK expressions, to which we apply the more efficient navigational pattern
//! matching algorithm. Then, we join the results of the NoK pattern matching
//! based on their structural relationships."
//!
//! [`NokPartition::partition`] cuts a [`PatternGraph`] at its
//! ancestor–descendant arcs: each resulting [`NokPattern`] is a maximal
//! subtree connected purely by parent-child arcs, and each cut arc becomes a
//! *join edge* reconnecting a vertex of one partition to the root of another.

use crate::pattern::{PRel, PatternGraph};

/// One maximal parent-child-connected subpattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NokPattern {
    /// Local root: the vertex (global index) every other vertex descends
    /// from via child arcs.
    pub root: usize,
    /// All vertices (global indices) in this partition, pre-order.
    pub vertices: Vec<usize>,
}

/// A cut ancestor–descendant arc between two partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinEdge {
    /// Vertex (global index) on the ancestor side.
    pub from_vertex: usize,
    /// Partition index whose root is the descendant side.
    pub to_partition: usize,
}

/// The partitioning of a pattern graph into NoK subpatterns plus the join
/// edges that reconnect them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NokPartition {
    /// Partitions; index 0 contains the pattern root.
    pub patterns: Vec<NokPattern>,
    /// Cut arcs, each an ancestor-descendant join between partitions.
    pub joins: Vec<JoinEdge>,
}

impl NokPartition {
    /// Partition `graph` at its descendant arcs.
    pub fn partition(graph: &PatternGraph) -> NokPartition {
        let mut result = NokPartition { patterns: Vec::new(), joins: Vec::new() };
        // Partition 0 grows from the graph root; every descendant arc target
        // seeds a new partition (queued with the vertex it joins from).
        let mut queue: Vec<(usize, Option<usize>)> = vec![(graph.root(), None)];
        let mut qi = 0;
        while qi < queue.len() {
            let (part_root, join_from) = queue[qi];
            qi += 1;
            let part_idx = result.patterns.len();
            let mut vertices = Vec::new();
            // DFS along child arcs only.
            let mut stack = vec![part_root];
            while let Some(v) = stack.pop() {
                vertices.push(v);
                // Collect children in reverse so the pre-order comes out in
                // arc order.
                let kids: Vec<(usize, PRel)> = graph.children(v).collect();
                for (c, rel) in kids.iter().rev() {
                    match rel {
                        PRel::Child => stack.push(*c),
                        PRel::Descendant => queue.push((*c, Some(v))),
                    }
                }
            }
            result.patterns.push(NokPattern { root: part_root, vertices });
            if let Some(from_vertex) = join_from {
                result.joins.push(JoinEdge { from_vertex, to_partition: part_idx });
            }
        }
        result
    }

    /// Number of structural joins the partitioned evaluation needs — one per
    /// cut arc (versus one per *arc* in the fully join-based approach).
    pub fn join_count(&self) -> usize {
        self.joins.len()
    }

    /// The partition containing vertex `v`.
    pub fn partition_of(&self, v: usize) -> Option<usize> {
        self.patterns.iter().position(|p| p.vertices.contains(&v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_path;
    use crate::pattern::PatternGraph;

    fn partition(src: &str) -> (PatternGraph, NokPartition) {
        let g = PatternGraph::from_path(&parse_path(src).unwrap()).unwrap();
        let p = NokPartition::partition(&g);
        (g, p)
    }

    #[test]
    fn pure_nok_is_single_partition() {
        let (g, p) = partition("/bib/book[author][title]/price");
        assert_eq!(p.patterns.len(), 1);
        assert_eq!(p.joins.len(), 0);
        // Every vertex is in the single partition.
        assert_eq!(p.patterns[0].vertices.len(), g.vertices.len());
    }

    #[test]
    fn descendant_arc_cuts() {
        let (g, p) = partition("/a//b/c");
        assert_eq!(p.patterns.len(), 2);
        assert_eq!(p.joins.len(), 1);
        // Partition 0: root + a; partition 1: b + c.
        assert_eq!(p.patterns[0].vertices.len(), 2);
        assert_eq!(p.patterns[1].vertices.len(), 2);
        let a = g.vertices.iter().position(|v| v.label == "a").unwrap();
        let b = g.vertices.iter().position(|v| v.label == "b").unwrap();
        assert_eq!(p.joins[0].from_vertex, a);
        assert_eq!(p.patterns[p.joins[0].to_partition].root, b);
    }

    #[test]
    fn multiple_descendants_fan_out() {
        let (_, p) = partition("//a//b//c");
        // root | a | b | c
        assert_eq!(p.patterns.len(), 4);
        assert_eq!(p.join_count(), 3);
    }

    #[test]
    fn branch_with_mixed_relations() {
        // /site/people/person[.//profile/age > 30]/name
        let (g, p) = partition("/site/people/person[profile//age > 30]/name");
        // Cut at profile//age only.
        assert_eq!(p.patterns.len(), 2);
        assert_eq!(p.join_count(), 1);
        let profile = g.vertices.iter().position(|v| v.label == "profile").unwrap();
        assert_eq!(p.joins[0].from_vertex, profile);
        let age_part = &p.patterns[p.joins[0].to_partition];
        assert_eq!(g.vertices[age_part.root].label, "age");
    }

    #[test]
    fn partition_of_lookup() {
        let (g, p) = partition("/a//b");
        let a = g.vertices.iter().position(|v| v.label == "a").unwrap();
        let b = g.vertices.iter().position(|v| v.label == "b").unwrap();
        assert_eq!(p.partition_of(a), Some(0));
        assert_eq!(p.partition_of(b), Some(1));
        assert_eq!(p.partition_of(999), None);
    }

    #[test]
    fn preorder_within_partition() {
        let (g, p) = partition("/a[b][c]/d");
        let labels: Vec<&str> =
            p.patterns[0].vertices.iter().map(|&v| g.vertices[v].label.as_str()).collect();
        assert_eq!(labels, ["/", "a", "b", "c", "d"]);
    }

    #[test]
    fn join_count_beats_arc_count() {
        // The headline claim: NoK needs far fewer joins than the fully
        // join-based plan (which joins per arc).
        let (g, p) = partition("/site/regions/africa/item[location]/description//keyword");
        assert!(p.join_count() < g.arcs.len());
        assert_eq!(p.join_count(), 1);
    }
}
