//! Pattern graphs — Definition 1 of the paper.
//!
//! > A PatternGraph is a labeled, directed graph `P = ⟨Σ, V, A, R, O⟩`, where
//! > Σ is a finite alphabet of element names, V and A are vertices and arcs,
//! > R the binary relations between vertices, and O ⊆ V the output vertices.
//! > Each vertex is labeled with `*` or names from Σ and carries a list of
//! > `⟨⊙, l⟩` comparison constraints; each arc is labeled with a relation.
//!
//! Patterns built from path expressions are tree-shaped (the general graph
//! form arises when several paths over shared variables are merged — the
//! FLWOR translation in `xqp-algebra` does that by grafting onto existing
//! vertices). Relations R are parent-child ([`PRel::Child`]) and
//! ancestor-descendant ([`PRel::Descendant`]); attributes are child arcs to
//! [`VertexKind::Attribute`] vertices.
//!
//! Conversion from the AST ([`PatternGraph::from_path`]) succeeds only for
//! the conjunctive, downward, position-free fragment that tree-pattern
//! matching evaluates; everything else reports [`PatternError`] and the
//! engine falls back to navigational evaluation.

use crate::ast::{Axis, CmpOp, NodeTest, PathExpr, PredOperand, Predicate, Step};
use std::fmt;
use xqp_xml::Atomic;

/// Arc relation (the R of Definition 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PRel {
    /// Parent-child (`/`) — a *local* (next-of-kin) relation.
    Child,
    /// Ancestor-descendant (`//`) — the non-local relation that separates
    /// NoK partitions.
    Descendant,
}

/// What kind of tree node a vertex matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VertexKind {
    /// The virtual document root.
    Root,
    /// An element node.
    Element,
    /// An attribute node.
    Attribute,
    /// A text node.
    Text,
}

/// One `⟨⊙, l⟩` pair: compare the matched node's typed value to a literal.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueConstraint {
    /// Comparison operator.
    pub op: CmpOp,
    /// Literal to compare against.
    pub literal: Atomic,
}

impl ValueConstraint {
    /// Test a node's atomized value against this constraint; incomparable
    /// pairs fail (general-comparison semantics).
    pub fn matches(&self, value: &Atomic) -> bool {
        value.compare(&self.literal).is_some_and(|o| self.op.eval(o))
    }
}

/// A pattern vertex.
#[derive(Debug, Clone, PartialEq)]
pub struct PVertex {
    /// Name label: a tag name or `*`.
    pub label: String,
    /// Node kind this vertex matches.
    pub kind: VertexKind,
    /// Conjunctive value constraints.
    pub constraints: Vec<ValueConstraint>,
    /// Whether matches of this vertex are returned (the O set).
    pub output: bool,
    /// Optional vertices (generalized tree patterns, cf. the paper's [9]):
    /// an embedding survives even when no tree node matches this vertex.
    /// Set by the FLWOR→TPM rewrite for `let`-grafted branches.
    pub optional: bool,
}

impl PVertex {
    fn named(label: impl Into<String>, kind: VertexKind) -> Self {
        PVertex { label: label.into(), kind, constraints: vec![], output: false, optional: false }
    }

    /// True if this vertex's name test accepts `name`.
    pub fn label_matches(&self, name: &str) -> bool {
        self.label == "*" || self.label == name
    }
}

/// A pattern arc `(from, to)` labeled with its relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PArc {
    /// Source vertex index.
    pub from: usize,
    /// Target vertex index.
    pub to: usize,
    /// Structural relation.
    pub rel: PRel,
}

/// Why a path expression cannot become a pattern graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternError {
    /// An upward or sideways axis appears.
    NonDownwardAxis(Axis),
    /// A positional predicate appears.
    Positional,
    /// `or` / `not` appear (pattern graphs are conjunctive).
    NonConjunctive,
    /// Both comparison operands are paths.
    PathToPathComparison,
    /// A predicate references a variable (needs the evaluator's scope).
    Variable,
    /// The path is relative but no context vertex was provided.
    RelativeWithoutContext,
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternError::NonDownwardAxis(a) => {
                write!(f, "axis `{}` is not expressible in a tree pattern", a.keyword())
            }
            PatternError::Positional => {
                write!(f, "positional predicates need navigational evaluation")
            }
            PatternError::NonConjunctive => write!(f, "or/not predicates are not conjunctive"),
            PatternError::PathToPathComparison => {
                write!(f, "path-to-path comparisons need the value-join operator")
            }
            PatternError::Variable => {
                write!(f, "variable predicates need the evaluator's scope")
            }
            PatternError::RelativeWithoutContext => {
                write!(f, "relative path requires a context vertex")
            }
        }
    }
}

impl std::error::Error for PatternError {}

/// A pattern graph (Definition 1). Vertex 0 is always the virtual root.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternGraph {
    /// All vertices; index 0 is the virtual document root.
    pub vertices: Vec<PVertex>,
    /// All arcs; for patterns built from single paths this forms a tree.
    pub arcs: Vec<PArc>,
    /// Set when a constant predicate evaluated to false: the pattern can
    /// never match anything.
    pub unsatisfiable: bool,
}

impl PatternGraph {
    /// A pattern containing only the virtual root.
    pub fn empty() -> Self {
        PatternGraph {
            vertices: vec![PVertex::named("/", VertexKind::Root)],
            arcs: vec![],
            unsatisfiable: false,
        }
    }

    /// The virtual-root vertex index.
    pub fn root(&self) -> usize {
        0
    }

    /// Build from an absolute, downward, conjunctive path expression. The
    /// final step's vertex becomes the single output vertex.
    pub fn from_path(path: &PathExpr) -> Result<Self, PatternError> {
        if !path.absolute {
            return Err(PatternError::RelativeWithoutContext);
        }
        let mut g = PatternGraph::empty();
        let last = g.graft_path(0, path)?;
        if let Some(v) = last {
            g.vertices[v].output = true;
        }
        Ok(g)
    }

    /// Graft a (relative or absolute) path below `context`, returning the
    /// vertex of the final step (`None` for the empty path `/`). Used by the
    /// FLWOR translation, which merges several paths into one graph.
    pub fn graft_path(
        &mut self,
        context: usize,
        path: &PathExpr,
    ) -> Result<Option<usize>, PatternError> {
        let mut cur = if path.absolute { self.root() } else { context };
        let mut pending = PRel::Child;
        let mut last = None;
        for step in &path.steps {
            match self.apply_step(cur, step, &mut pending)? {
                Some(v) => {
                    cur = v;
                    last = Some(v);
                }
                None => {
                    // self-step: stays on `cur`.
                    last = Some(cur);
                }
            }
        }
        Ok(last)
    }

    /// Apply one step; returns the new vertex, or `None` for a merged
    /// self-step.
    fn apply_step(
        &mut self,
        cur: usize,
        step: &Step,
        pending: &mut PRel,
    ) -> Result<Option<usize>, PatternError> {
        match step.axis {
            Axis::DescendantOrSelf
                if step.test == NodeTest::AnyNode && step.predicates.is_empty() =>
            {
                *pending = PRel::Descendant;
                return Ok(None);
            }
            Axis::SelfAxis => {
                // Merge the test + predicates into the current vertex.
                if let NodeTest::Name(n) = &step.test {
                    if n != "*" {
                        if self.vertices[cur].label == "*" {
                            self.vertices[cur].label = n.clone();
                        } else if &self.vertices[cur].label != n {
                            self.unsatisfiable = true;
                        }
                    }
                }
                self.apply_predicates(cur, &step.predicates)?;
                return Ok(None);
            }
            Axis::Child | Axis::Descendant | Axis::DescendantOrSelf | Axis::Attribute => {}
            other => return Err(PatternError::NonDownwardAxis(other)),
        }

        let rel = match (step.axis, *pending) {
            (_, PRel::Descendant) => PRel::Descendant,
            (Axis::Descendant | Axis::DescendantOrSelf, _) => PRel::Descendant,
            _ => PRel::Child,
        };
        *pending = PRel::Child;

        let kind = match (step.axis, &step.test) {
            (Axis::Attribute, _) => VertexKind::Attribute,
            (_, NodeTest::Text) => VertexKind::Text,
            _ => VertexKind::Element,
        };
        let label = step.test.label().to_string();
        let v = self.vertices.len();
        self.vertices.push(PVertex::named(label, kind));
        self.arcs.push(PArc { from: cur, to: v, rel });
        self.apply_predicates(v, &step.predicates)?;
        Ok(Some(v))
    }

    fn apply_predicates(&mut self, v: usize, preds: &[Predicate]) -> Result<(), PatternError> {
        for p in preds {
            self.apply_predicate(v, p)?;
        }
        Ok(())
    }

    fn apply_predicate(&mut self, v: usize, pred: &Predicate) -> Result<(), PatternError> {
        match pred {
            Predicate::Exists(path) => {
                self.graft_path(v, path)?;
                Ok(())
            }
            Predicate::Compare { lhs, op, rhs } => {
                let (path, op, lit) = match (lhs, rhs) {
                    (PredOperand::Path(p), PredOperand::Literal(l)) => (p, *op, l.clone()),
                    (PredOperand::Literal(l), PredOperand::Path(p)) => (p, op.flipped(), l.clone()),
                    (PredOperand::Literal(a), PredOperand::Literal(b)) => {
                        let holds = a.compare(b).is_some_and(|o| op.eval(o));
                        if !holds {
                            self.unsatisfiable = true;
                        }
                        return Ok(());
                    }
                    (PredOperand::Path(_), PredOperand::Path(_)) => {
                        return Err(PatternError::PathToPathComparison)
                    }
                    (PredOperand::Var { .. }, _) | (_, PredOperand::Var { .. }) => {
                        return Err(PatternError::Variable)
                    }
                };
                let target = self.graft_path(v, path)?.unwrap_or(v);
                self.vertices[target].constraints.push(ValueConstraint { op, literal: lit });
                Ok(())
            }
            Predicate::Position(_) => Err(PatternError::Positional),
            Predicate::And(a, b) => {
                self.apply_predicate(v, a)?;
                self.apply_predicate(v, b)
            }
            Predicate::Or(_, _) | Predicate::Not(_) => Err(PatternError::NonConjunctive),
        }
    }

    // ---- structure queries --------------------------------------------------

    /// Children of vertex `v` with their arc relations.
    pub fn children(&self, v: usize) -> impl Iterator<Item = (usize, PRel)> + '_ {
        self.arcs.iter().filter(move |a| a.from == v).map(|a| (a.to, a.rel))
    }

    /// The incoming arc of `v`, if any (vertex 0 has none).
    pub fn incoming(&self, v: usize) -> Option<PArc> {
        self.arcs.iter().copied().find(|a| a.to == v)
    }

    /// Output vertex indices, ascending.
    pub fn outputs(&self) -> Vec<usize> {
        (0..self.vertices.len()).filter(|&v| self.vertices[v].output).collect()
    }

    /// Number of vertices excluding the virtual root.
    pub fn pattern_size(&self) -> usize {
        self.vertices.len() - 1
    }

    /// True if all arcs are local (parent-child): the pattern is a pure NoK
    /// expression evaluable in a single navigational scan.
    pub fn is_nok_only(&self) -> bool {
        self.arcs.iter().all(|a| a.rel == PRel::Child)
    }

    /// Mark vertex `v` as an output vertex.
    pub fn mark_output(&mut self, v: usize) {
        self.vertices[v].output = true;
    }
}

impl fmt::Display for PatternGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn rec(
            g: &PatternGraph,
            v: usize,
            depth: usize,
            f: &mut fmt::Formatter<'_>,
        ) -> fmt::Result {
            let vert = &g.vertices[v];
            let marker = if vert.output { " *" } else { "" };
            let kind = match vert.kind {
                VertexKind::Root => "root",
                VertexKind::Element => "elem",
                VertexKind::Attribute => "attr",
                VertexKind::Text => "text",
            };
            writeln!(f, "{}{} [{}]{}", "  ".repeat(depth), vert.label, kind, marker)?;
            for (c, rel) in g.children(v) {
                let sym = match rel {
                    PRel::Child => "/",
                    PRel::Descendant => "//",
                };
                write!(f, "{}{} ", "  ".repeat(depth + 1), sym)?;
                rec(g, c, depth + 1, f)?;
            }
            Ok(())
        }
        rec(self, 0, 0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_path;

    fn graph(src: &str) -> PatternGraph {
        PatternGraph::from_path(&parse_path(src).unwrap()).unwrap()
    }

    #[test]
    fn fig1_example_pattern() {
        // The paper's /a[b][c] example: four vertices root,a,b,c; three child
        // arcs; `a` is the output vertex.
        let g = graph("/a[b][c]");
        assert_eq!(g.vertices.len(), 4);
        assert_eq!(g.arcs.len(), 3);
        assert!(g.arcs.iter().all(|a| a.rel == PRel::Child));
        let a = g.arcs[0].to;
        assert!(g.vertices[a].output);
        assert_eq!(g.outputs(), vec![a]);
        assert_eq!(g.vertices[a].label, "a");
        let kids: Vec<usize> = g.children(a).map(|(c, _)| c).collect();
        assert_eq!(kids.len(), 2);
        assert_eq!(g.vertices[kids[0]].label, "b");
        assert_eq!(g.vertices[kids[1]].label, "c");
    }

    #[test]
    fn double_slash_becomes_descendant_arc() {
        let g = graph("//book/title");
        // root --desc--> book --child--> title
        assert_eq!(g.arcs[0].rel, PRel::Descendant);
        assert_eq!(g.arcs[1].rel, PRel::Child);
        assert_eq!(g.vertices[g.arcs[1].to].label, "title");
        assert!(!g.is_nok_only());
    }

    #[test]
    fn child_only_pattern_is_nok() {
        let g = graph("/bib/book[author]/title");
        assert!(g.is_nok_only());
        assert_eq!(g.pattern_size(), 4);
    }

    #[test]
    fn value_constraint_on_attribute() {
        let g = graph("/book[@year > 1994]");
        let attr = g
            .vertices
            .iter()
            .position(|v| v.kind == VertexKind::Attribute)
            .expect("attribute vertex");
        assert_eq!(g.vertices[attr].label, "year");
        assert_eq!(g.vertices[attr].constraints.len(), 1);
        let c = &g.vertices[attr].constraints[0];
        assert_eq!(c.op, CmpOp::Gt);
        assert_eq!(c.literal, Atomic::Integer(1994));
    }

    #[test]
    fn dot_comparison_constrains_step_vertex() {
        let g = graph("/a/b[. = \"x\"]");
        let b = g.vertices.iter().position(|v| v.label == "b").unwrap();
        assert_eq!(g.vertices[b].constraints.len(), 1);
    }

    #[test]
    fn flipped_literal_comparison() {
        let g = graph("/t[5 < v]");
        let v = g.vertices.iter().position(|x| x.label == "v").unwrap();
        assert_eq!(g.vertices[v].constraints[0].op, CmpOp::Gt);
    }

    #[test]
    fn constant_predicates_fold() {
        let g = graph("/a[1 = 1]");
        assert!(!g.unsatisfiable);
        assert_eq!(g.pattern_size(), 1);
        let g = graph("/a[1 = 2]");
        assert!(g.unsatisfiable);
    }

    #[test]
    fn self_step_merges() {
        let g = graph("/a/.[b]");
        // `.` adds no vertex; predicate b hangs off a.
        assert_eq!(g.pattern_size(), 2);
        let a = g.vertices.iter().position(|v| v.label == "a").unwrap();
        let kids: Vec<_> = g.children(a).collect();
        assert_eq!(kids.len(), 1);
    }

    #[test]
    fn text_vertex_kind() {
        let g = graph("/a/text()");
        let t = g.vertices.iter().position(|v| v.kind == VertexKind::Text).unwrap();
        assert!(g.vertices[t].output);
    }

    #[test]
    fn rejects_non_downward() {
        let p = parse_path("/a/../b").unwrap();
        assert_eq!(PatternGraph::from_path(&p), Err(PatternError::NonDownwardAxis(Axis::Parent)));
    }

    #[test]
    fn rejects_positional() {
        let p = parse_path("/a/b[2]").unwrap();
        assert_eq!(PatternGraph::from_path(&p), Err(PatternError::Positional));
    }

    #[test]
    fn rejects_disjunction() {
        let p = parse_path("/a[b or c]").unwrap();
        assert_eq!(PatternGraph::from_path(&p), Err(PatternError::NonConjunctive));
    }

    #[test]
    fn rejects_relative_without_context() {
        let p = parse_path("a/b").unwrap();
        assert_eq!(PatternGraph::from_path(&p), Err(PatternError::RelativeWithoutContext));
    }

    #[test]
    fn value_constraint_matching() {
        let c = ValueConstraint { op: CmpOp::Ge, literal: Atomic::Integer(10) };
        assert!(c.matches(&Atomic::Integer(10)));
        assert!(c.matches(&Atomic::Str("11".into())));
        assert!(!c.matches(&Atomic::Integer(9)));
        assert!(!c.matches(&Atomic::Str("abc".into()))); // incomparable fails
    }

    #[test]
    fn graft_merges_multiple_paths() {
        // Simulate a FLWOR binding: $b := /bib/book, then $b/title and
        // $b/author grafted on the same vertex.
        let mut g = graph("/bib/book");
        let book = g.outputs()[0];
        let title = g
            .graft_path(book, &parse_path("title").unwrap_or_else(|_| unreachable!()))
            .ok()
            .flatten();
        // relative parse: "title" is relative, parse_path rejects nothing — it
        // returns a relative PathExpr
        let title = title.expect("grafted title vertex");
        g.mark_output(title);
        assert_eq!(g.outputs().len(), 2);
        assert_eq!(g.vertices[title].label, "title");
        assert_eq!(g.incoming(title).unwrap().from, book);
    }

    #[test]
    fn interior_descendant_pattern() {
        let g = graph("/site//item[@id = \"i1\"]/name");
        assert!(!g.is_nok_only());
        let rels: Vec<PRel> = g.arcs.iter().map(|a| a.rel).collect();
        assert!(rels.contains(&PRel::Descendant));
        assert!(rels.contains(&PRel::Child));
    }

    #[test]
    fn display_renders_tree() {
        let g = graph("/a//b[@x = 1]");
        let s = g.to_string();
        assert!(s.contains("a [elem]"));
        assert!(s.contains("// "));
        assert!(s.contains("x [attr]"));
    }
}
