//! # xqp-xpath — path expressions, pattern graphs and NoK partitioning
//!
//! Path expressions are "arguably the most natural way to query
//! tree-structured data" and "one of the most heavily used expressions in
//! XQuery" (§4.1). This crate provides:
//!
//! * a hand-written lexer/parser for a practical XPath subset — the axes
//!   `child`, `descendant`, `descendant-or-self`, `self`, `attribute`,
//!   `parent`, `ancestor`, `ancestor-or-self`, `following-sibling`,
//!   `preceding-sibling`, abbreviations (`//`, `@`, `.`, `..`), name tests
//!   with wildcards, and predicates combining existence paths, value
//!   comparisons, positions, `and`/`or`/`not` ([`parse_path`], [`ast`]);
//! * **pattern graphs** (Definition 1 of the paper): the labeled directed
//!   graphs that τ, the tree-pattern-matching operator, consumes
//!   ([`pattern::PatternGraph`]);
//! * **NoK partitioning** (§4.2): splitting a pattern graph into maximal
//!   *next-of-kin* subpatterns — connected by local relations only
//!   (parent-child, attribute) — that a navigational matcher evaluates in a
//!   single scan, plus the ancestor–descendant join edges that reconnect
//!   them ([`nok`]).

pub mod ast;
pub mod nok;
pub mod parser;
pub mod pattern;

pub use ast::{Axis, CmpOp, NodeTest, PathExpr, PredOperand, Predicate, Step};
pub use nok::{NokPartition, NokPattern};
pub use parser::{parse_path, ParseError};
pub use pattern::{PArc, PRel, PVertex, PatternGraph, ValueConstraint, VertexKind};
