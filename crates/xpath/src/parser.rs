//! Recursive-descent parser for the path-expression subset.
//!
//! Grammar (abbreviated and full syntax):
//!
//! ```text
//! path      := ("/" | "//")? step (("/" | "//") step)*
//! step      := axis-spec? node-test predicate*   |  "."  |  ".."
//! axis-spec := AXIS "::"  |  "@"
//! node-test := NAME | "*" | PREFIX ":" NAME | "text()" | "node()"
//! predicate := "[" or-expr "]"
//! or-expr   := and-expr ("or" and-expr)*
//! and-expr  := boolean ("and" boolean)*
//! boolean   := "not" "(" or-expr ")" | "(" or-expr ")" | comparison
//! comparison:= operand (CMP operand)? | INTEGER | "last()"
//! operand   := rel-path | literal
//! literal   := STRING | NUMBER
//! ```
//!
//! A bare integer predicate is positional (`[3]`); `last()` is the special
//! position −1.

use crate::ast::{Axis, CmpOp, NodeTest, PathExpr, PredOperand, Predicate, Step};
use std::fmt;
use xqp_xml::Atomic;

/// Parse failure with position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "path parse error at {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a path expression.
pub fn parse_path(input: &str) -> Result<PathExpr, ParseError> {
    let mut p = P::new(input);
    let path = p.path()?;
    p.skip_ws();
    if p.pos < p.input.len() {
        return Err(p.err("trailing input after path expression"));
    }
    Ok(path)
}

/// Parse a path at the start of `input`, returning it together with the
/// number of bytes consumed. Used by the XQuery parser to embed paths inside
/// larger expressions.
pub fn parse_path_prefix(input: &str) -> Result<(PathExpr, usize), ParseError> {
    let mut p = P::new(input);
    let path = p.path()?;
    Ok((path, p.pos))
}

/// Parse a path *continuation* — `("/" | "//") step (…)*` — as a relative
/// path, returning it and the bytes consumed. This is how `$var/title` style
/// expressions hand their tail to the path parser.
pub fn parse_path_continuation(input: &str) -> Result<(PathExpr, usize), ParseError> {
    let mut p = P::new(input);
    p.skip_ws();
    let mut steps = Vec::new();
    let dos = || Step { axis: Axis::DescendantOrSelf, test: NodeTest::AnyNode, predicates: vec![] };
    if p.eat("//") {
        steps.push(dos());
    } else if !p.eat("/") {
        return Err(p.err("expected `/` or `//`"));
    }
    steps.push(p.step()?);
    loop {
        let save = p.pos;
        p.skip_ws();
        if p.eat("//") {
            steps.push(dos());
            steps.push(p.step()?);
        } else if p.eat("/") {
            steps.push(p.step()?);
        } else {
            p.pos = save;
            break;
        }
    }
    Ok((PathExpr { absolute: false, steps }, p.pos))
}

/// Internal cursor; also used by `xqp-xquery`, which embeds relative paths.
pub(crate) struct P<'a> {
    pub(crate) input: &'a str,
    pub(crate) pos: usize,
}

impl<'a> P<'a> {
    pub(crate) fn new(input: &'a str) -> Self {
        P { input, pos: 0 }
    }

    pub(crate) fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError { offset: self.pos, message: msg.into() }
    }

    pub(crate) fn skip_ws(&mut self) {
        while self.input[self.pos..].starts_with(|c: char| c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<char> {
        self.input[self.pos..].chars().next()
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.input[self.pos..].starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), ParseError> {
        if self.eat(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{s}`")))
        }
    }

    fn name(&mut self) -> Option<String> {
        let rest = &self.input[self.pos..];
        let mut end = 0;
        for (i, c) in rest.char_indices() {
            let ok = if i == 0 {
                c.is_alphabetic() || c == '_'
            } else {
                c.is_alphanumeric() || matches!(c, '_' | '-' | '.')
            };
            if !ok {
                break;
            }
            end = i + c.len_utf8();
        }
        if end == 0 {
            return None;
        }
        let n = rest[..end].to_string();
        self.pos += end;
        Some(n)
    }

    /// Parse a full path (absolute or relative).
    pub(crate) fn path(&mut self) -> Result<PathExpr, ParseError> {
        self.skip_ws();
        let mut steps = Vec::new();
        let absolute = if self.eat("//") {
            steps.push(Step {
                axis: Axis::DescendantOrSelf,
                test: NodeTest::AnyNode,
                predicates: vec![],
            });
            true
        } else {
            self.eat("/")
        };
        // Absolute-root-only path `/`.
        self.skip_ws();
        if absolute && steps.is_empty() && (self.peek().is_none() || !self.step_starts_here()) {
            return Ok(PathExpr { absolute, steps });
        }
        steps.push(self.step()?);
        loop {
            self.skip_ws();
            if self.eat("//") {
                steps.push(Step {
                    axis: Axis::DescendantOrSelf,
                    test: NodeTest::AnyNode,
                    predicates: vec![],
                });
                steps.push(self.step()?);
            } else if self.eat("/") {
                steps.push(self.step()?);
            } else {
                break;
            }
        }
        Ok(PathExpr { absolute, steps })
    }

    fn step_starts_here(&self) -> bool {
        matches!(self.peek(), Some(c) if c.is_alphabetic() || matches!(c, '_' | '*' | '@' | '.'))
    }

    fn step(&mut self) -> Result<Step, ParseError> {
        self.skip_ws();
        // Abbreviations.
        if self.eat("..") {
            return self.with_predicates(Axis::Parent, NodeTest::AnyNode);
        }
        if self.peek() == Some('.') {
            // `.` but not a number like `.5` (we have no leading-dot numbers).
            self.pos += 1;
            return self.with_predicates(Axis::SelfAxis, NodeTest::AnyNode);
        }
        if self.eat("@") {
            let test = self.node_test()?;
            return self.with_predicates(Axis::Attribute, test);
        }
        // Full `axis::` form?
        let save = self.pos;
        if let Some(word) = self.name() {
            if self.eat("::") {
                let axis = match word.as_str() {
                    "child" => Axis::Child,
                    "descendant" => Axis::Descendant,
                    "descendant-or-self" => Axis::DescendantOrSelf,
                    "self" => Axis::SelfAxis,
                    "attribute" => Axis::Attribute,
                    "parent" => Axis::Parent,
                    "ancestor" => Axis::Ancestor,
                    "ancestor-or-self" => Axis::AncestorOrSelf,
                    "following-sibling" => Axis::FollowingSibling,
                    "preceding-sibling" => Axis::PrecedingSibling,
                    other => return Err(self.err(format!("unknown axis `{other}`"))),
                };
                let test = self.node_test()?;
                return self.with_predicates(axis, test);
            }
            self.pos = save;
        }
        let test = self.node_test()?;
        self.with_predicates(Axis::Child, test)
    }

    fn node_test(&mut self) -> Result<NodeTest, ParseError> {
        self.skip_ws();
        if self.eat("*") {
            return Ok(NodeTest::Name("*".into()));
        }
        let Some(mut name) = self.name() else {
            return Err(self.err("expected a node test"));
        };
        // Prefixed name?
        if self.peek() == Some(':') && !self.input[self.pos..].starts_with("::") {
            self.pos += 1;
            let Some(local) = self.name() else {
                return Err(self.err("expected local name after prefix"));
            };
            name = format!("{name}:{local}");
            return Ok(NodeTest::Name(name));
        }
        // Kind tests.
        if self.input[self.pos..].starts_with("()") {
            match name.as_str() {
                "text" => {
                    self.pos += 2;
                    return Ok(NodeTest::Text);
                }
                "node" => {
                    self.pos += 2;
                    return Ok(NodeTest::AnyNode);
                }
                _ => {}
            }
        }
        Ok(NodeTest::Name(name))
    }

    fn with_predicates(&mut self, axis: Axis, test: NodeTest) -> Result<Step, ParseError> {
        let mut predicates = Vec::new();
        loop {
            self.skip_ws();
            if !self.eat("[") {
                break;
            }
            let p = self.or_expr()?;
            self.skip_ws();
            self.expect("]")?;
            predicates.push(p);
        }
        Ok(Step { axis, test, predicates })
    }

    fn or_expr(&mut self) -> Result<Predicate, ParseError> {
        let mut left = self.and_expr()?;
        loop {
            self.skip_ws();
            if self.keyword("or") {
                let right = self.and_expr()?;
                left = Predicate::Or(Box::new(left), Box::new(right));
            } else {
                return Ok(left);
            }
        }
    }

    fn and_expr(&mut self) -> Result<Predicate, ParseError> {
        let mut left = self.boolean()?;
        loop {
            self.skip_ws();
            if self.keyword("and") {
                let right = self.boolean()?;
                left = Predicate::And(Box::new(left), Box::new(right));
            } else {
                return Ok(left);
            }
        }
    }

    /// Match a keyword followed by a non-name character.
    fn keyword(&mut self, kw: &str) -> bool {
        let rest = &self.input[self.pos..];
        if let Some(tail) = rest.strip_prefix(kw) {
            let after = tail.chars().next();
            if !matches!(after, Some(c) if c.is_alphanumeric() || c == '_' || c == '-') {
                self.pos += kw.len();
                return true;
            }
        }
        false
    }

    fn boolean(&mut self) -> Result<Predicate, ParseError> {
        self.skip_ws();
        if self.keyword("not") {
            self.skip_ws();
            self.expect("(")?;
            let inner = self.or_expr()?;
            self.skip_ws();
            self.expect(")")?;
            return Ok(Predicate::Not(Box::new(inner)));
        }
        if self.peek() == Some('(') {
            self.pos += 1;
            let inner = self.or_expr()?;
            self.skip_ws();
            self.expect(")")?;
            return Ok(inner);
        }
        if self.keyword("last") {
            self.skip_ws();
            self.expect("(")?;
            self.skip_ws();
            self.expect(")")?;
            return Ok(Predicate::Position(-1));
        }
        // A number is positional when bare (`[3]`), or the lhs of a
        // comparison (`[5 < v]`).
        if matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            let (atom, all_int) = self.number()?;
            self.skip_ws();
            if matches!(self.peek(), Some(']')) {
                return match (all_int, atom) {
                    (true, Atomic::Integer(i)) => Ok(Predicate::Position(i)),
                    _ => Err(self.err("non-integer positional predicate")),
                };
            }
            return self.comparison_tail(PredOperand::Literal(atom));
        }
        // Comparison or existence.
        let lhs = self.operand()?;
        self.comparison_tail(lhs)
    }

    /// Finish a predicate after its left operand: parse an optional operator
    /// and right operand, or fall back to an existence test.
    fn comparison_tail(&mut self, lhs: PredOperand) -> Result<Predicate, ParseError> {
        self.skip_ws();
        let op = if self.eat("!=") {
            Some(CmpOp::Ne)
        } else if self.eat("<=") {
            Some(CmpOp::Le)
        } else if self.eat(">=") {
            Some(CmpOp::Ge)
        } else if self.eat("=") {
            Some(CmpOp::Eq)
        } else if self.eat("<") {
            Some(CmpOp::Lt)
        } else if self.eat(">") {
            Some(CmpOp::Gt)
        } else {
            None
        };
        match op {
            Some(op) => {
                let rhs = self.operand()?;
                Ok(Predicate::Compare { lhs, op, rhs })
            }
            None => match lhs {
                PredOperand::Path(p) => Ok(Predicate::Exists(p)),
                PredOperand::Literal(_) => {
                    Err(self.err("literal predicate must be part of a comparison"))
                }
                PredOperand::Var { .. } => {
                    Err(self.err("variable predicate must be part of a comparison"))
                }
            },
        }
    }

    fn operand(&mut self) -> Result<PredOperand, ParseError> {
        self.skip_ws();
        if self.eat("$") {
            let Some(name) = self.name() else {
                return Err(self.err("expected variable name after `$`"));
            };
            let path = if self.input[self.pos..].starts_with('/') {
                let (p, used) = parse_path_continuation(&self.input[self.pos..])
                    .map_err(|e| ParseError { offset: self.pos + e.offset, message: e.message })?;
                self.pos += used;
                p
            } else {
                PathExpr { absolute: false, steps: Vec::new() }
            };
            return Ok(PredOperand::Var { name, path });
        }
        match self.peek() {
            Some('"') | Some('\'') => {
                let q = self.peek().expect("peeked");
                self.pos += 1;
                let rest = &self.input[self.pos..];
                let end = rest.find(q).ok_or_else(|| self.err("unterminated string literal"))?;
                let s = rest[..end].to_string();
                self.pos += end + 1;
                Ok(PredOperand::Literal(Atomic::Str(s)))
            }
            Some(c) if c.is_ascii_digit() => {
                let (atom, _) = self.number()?;
                Ok(PredOperand::Literal(atom))
            }
            Some('-') => {
                self.pos += 1;
                let (atom, _) = self.number()?;
                let neg = match atom {
                    Atomic::Integer(i) => Atomic::Integer(-i),
                    Atomic::Double(d) => Atomic::Double(-d),
                    other => other,
                };
                Ok(PredOperand::Literal(neg))
            }
            _ => {
                let path = self.path()?;
                if path.steps.is_empty() && !path.absolute {
                    return Err(self.err("expected a comparison operand"));
                }
                Ok(PredOperand::Path(path))
            }
        }
    }

    /// Parse a number; the bool says whether it was an integer literal.
    fn number(&mut self) -> Result<(Atomic, bool), ParseError> {
        let rest = &self.input[self.pos..];
        let mut end = 0;
        let mut saw_dot = false;
        for (i, c) in rest.char_indices() {
            if c.is_ascii_digit() {
                end = i + 1;
            } else if c == '.' && !saw_dot {
                saw_dot = true;
                end = i + 1;
            } else {
                break;
            }
        }
        if end == 0 {
            return Err(self.err("expected a number"));
        }
        let text = &rest[..end];
        self.pos += end;
        if saw_dot {
            let d: f64 = text.parse().map_err(|_| self.err("bad number"))?;
            Ok((Atomic::Double(d), false))
        } else {
            let i: i64 = text.parse().map_err(|_| self.err("bad number"))?;
            Ok((Atomic::Integer(i), true))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> PathExpr {
        parse_path(s).unwrap_or_else(|e| panic!("parse `{s}`: {e}"))
    }

    #[test]
    fn simple_absolute_path() {
        let p = parse("/bib/book/title");
        assert!(p.absolute);
        assert_eq!(p.steps.len(), 3);
        assert_eq!(p.steps[0], Step::child("bib"));
        assert_eq!(p.to_string(), "/bib/book/title");
    }

    #[test]
    fn relative_path() {
        let p = parse("book/title");
        assert!(!p.absolute);
        assert_eq!(p.steps.len(), 2);
    }

    #[test]
    fn double_slash_expands() {
        let p = parse("//book");
        assert!(p.absolute);
        assert_eq!(p.steps.len(), 2);
        assert_eq!(p.steps[0].axis, Axis::DescendantOrSelf);
        assert_eq!(p.steps[0].test, NodeTest::AnyNode);
        assert_eq!(p.steps[1], Step::child("book"));
    }

    #[test]
    fn interior_double_slash() {
        let p = parse("/a//b");
        assert_eq!(p.steps.len(), 3);
        assert_eq!(p.steps[1].axis, Axis::DescendantOrSelf);
    }

    #[test]
    fn attribute_abbreviation() {
        let p = parse("/book/@year");
        assert_eq!(p.steps[1].axis, Axis::Attribute);
        assert_eq!(p.steps[1].test, NodeTest::Name("year".into()));
    }

    #[test]
    fn dot_and_dotdot() {
        let p = parse("./a/../b");
        assert_eq!(p.steps[0].axis, Axis::SelfAxis);
        assert_eq!(p.steps[2].axis, Axis::Parent);
    }

    #[test]
    fn full_axis_syntax() {
        let p = parse("/child::a/descendant::b/following-sibling::c/ancestor-or-self::*");
        assert_eq!(p.steps[0].axis, Axis::Child);
        assert_eq!(p.steps[1].axis, Axis::Descendant);
        assert_eq!(p.steps[2].axis, Axis::FollowingSibling);
        assert_eq!(p.steps[3].axis, Axis::AncestorOrSelf);
        assert_eq!(p.steps[3].test, NodeTest::Name("*".into()));
    }

    #[test]
    fn kind_tests() {
        let p = parse("/a/text()");
        assert_eq!(p.steps[1].test, NodeTest::Text);
        let p = parse("/a/node()");
        assert_eq!(p.steps[1].test, NodeTest::AnyNode);
    }

    #[test]
    fn wildcard_and_prefixed_names() {
        let p = parse("/*/p:item");
        assert_eq!(p.steps[0].test, NodeTest::Name("*".into()));
        assert_eq!(p.steps[1].test, NodeTest::Name("p:item".into()));
    }

    #[test]
    fn existence_predicate() {
        let p = parse("/bib/book[author]");
        assert_eq!(p.steps[1].predicates.len(), 1);
        match &p.steps[1].predicates[0] {
            Predicate::Exists(path) => assert_eq!(path.steps[0], Step::child("author")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nested_path_predicate() {
        let p = parse("/a[b//c/@d]");
        match &p.steps[0].predicates[0] {
            Predicate::Exists(path) => {
                assert_eq!(path.steps.len(), 4);
                assert_eq!(path.steps[3].axis, Axis::Attribute);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn comparison_predicates() {
        let p = parse("/book[price > 49.99]");
        match &p.steps[0].predicates[0] {
            Predicate::Compare { op, rhs, .. } => {
                assert_eq!(*op, CmpOp::Gt);
                assert_eq!(*rhs, PredOperand::Literal(Atomic::Double(49.99)));
            }
            other => panic!("unexpected {other:?}"),
        }
        let p = parse("/book[@year != \"1994\"]");
        match &p.steps[0].predicates[0] {
            Predicate::Compare { op, rhs, .. } => {
                assert_eq!(*op, CmpOp::Ne);
                assert_eq!(*rhs, PredOperand::Literal(Atomic::Str("1994".into())));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dot_comparison() {
        let p = parse("/a/b[. = 'x']");
        match &p.steps[1].predicates[0] {
            Predicate::Compare { lhs: PredOperand::Path(lp), .. } => {
                assert_eq!(lp.steps[0].axis, Axis::SelfAxis);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn positional_predicates() {
        let p = parse("/a/b[2]");
        assert_eq!(p.steps[1].predicates[0], Predicate::Position(2));
        let p = parse("/a/b[last()]");
        assert_eq!(p.steps[1].predicates[0], Predicate::Position(-1));
    }

    #[test]
    fn boolean_connectives() {
        let p = parse("/b[x and y or not(z)]");
        match &p.steps[0].predicates[0] {
            Predicate::Or(l, r) => {
                assert!(matches!(**l, Predicate::And(_, _)));
                assert!(matches!(**r, Predicate::Not(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
        let p = parse("/b[x and (y or z)]");
        match &p.steps[0].predicates[0] {
            Predicate::And(_, r) => assert!(matches!(**r, Predicate::Or(_, _))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn multiple_predicates_on_one_step() {
        let p = parse("/a[b][c][2]");
        assert_eq!(p.steps[0].predicates.len(), 3);
    }

    #[test]
    fn negative_literal() {
        let p = parse("/t[v > -5]");
        match &p.steps[0].predicates[0] {
            Predicate::Compare { rhs, .. } => {
                assert_eq!(*rhs, PredOperand::Literal(Atomic::Integer(-5)))
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn whitespace_tolerated() {
        let p = parse("  / bib / book [ @year = 1994 ] ");
        assert_eq!(p.steps.len(), 2);
    }

    #[test]
    fn root_only_path() {
        let p = parse("/");
        assert!(p.absolute);
        assert!(p.steps.is_empty());
    }

    #[test]
    fn path_to_path_comparison() {
        let p = parse("/a[b = c/d]");
        match &p.steps[0].predicates[0] {
            Predicate::Compare { lhs: PredOperand::Path(l), rhs: PredOperand::Path(r), .. } => {
                assert_eq!(l.steps.len(), 1);
                assert_eq!(r.steps.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn variable_operands_in_predicates() {
        let p = parse("/inv/item[@sku = $o/@sku]");
        match &p.steps[1].predicates[0] {
            Predicate::Compare { rhs: PredOperand::Var { name, path }, .. } => {
                assert_eq!(name, "o");
                assert_eq!(path.steps.len(), 1);
                assert_eq!(path.steps[0].axis, Axis::Attribute);
            }
            other => panic!("unexpected {other:?}"),
        }
        let p = parse("/a/b[. < $limit]");
        match &p.steps[1].predicates[0] {
            Predicate::Compare { rhs: PredOperand::Var { name, path }, .. } => {
                assert_eq!(name, "limit");
                assert!(path.steps.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
        // Bare `$v` predicates need a comparison.
        assert!(parse_path("/a[$v]").is_err());
        // Variable predicates are not downward (no TPM fusion).
        assert!(!parse("/a/b[. < $limit]").is_downward());
    }

    #[test]
    fn errors_reported() {
        assert!(parse_path("/a[").is_err());
        assert!(parse_path("/a]").is_err());
        assert!(parse_path("/a[1.5]").is_err());
        assert!(parse_path("/a[@]").is_err());
        assert!(parse_path("/a[b <]").is_err());
        assert!(parse_path("/unknown::a").is_err());
        assert!(parse_path("/a['unterminated]").is_err());
        assert!(parse_path("").is_err());
    }

    #[test]
    fn display_of_predicates_roundtrips_through_parser() {
        for src in [
            "/bib/book[@year > 1994]/title",
            "/a//b[c][2]",
            "/site/people/person[name = \"alice\"]",
        ] {
            let once = parse(src);
            let again = parse(&once.to_string());
            assert_eq!(once, again, "src `{src}` → `{once}`");
        }
    }
}
