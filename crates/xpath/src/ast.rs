//! Abstract syntax for path expressions.

use std::fmt;
use xqp_xml::Atomic;

/// An XPath axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// `child::` (the default axis).
    Child,
    /// `descendant::`.
    Descendant,
    /// `descendant-or-self::` (what `//` expands through).
    DescendantOrSelf,
    /// `self::` (`.`).
    SelfAxis,
    /// `attribute::` (`@`).
    Attribute,
    /// `parent::` (`..`).
    Parent,
    /// `ancestor::`.
    Ancestor,
    /// `ancestor-or-self::`.
    AncestorOrSelf,
    /// `following-sibling::`.
    FollowingSibling,
    /// `preceding-sibling::`.
    PrecedingSibling,
}

impl Axis {
    /// True for the downward axes a tree-pattern graph can express
    /// (child/descendant/attribute families); upward and sideways axes force
    /// the navigational fallback.
    pub fn is_downward(self) -> bool {
        matches!(
            self,
            Axis::Child
                | Axis::Descendant
                | Axis::DescendantOrSelf
                | Axis::SelfAxis
                | Axis::Attribute
        )
    }

    /// The axis keyword as written in full syntax.
    pub fn keyword(self) -> &'static str {
        match self {
            Axis::Child => "child",
            Axis::Descendant => "descendant",
            Axis::DescendantOrSelf => "descendant-or-self",
            Axis::SelfAxis => "self",
            Axis::Attribute => "attribute",
            Axis::Parent => "parent",
            Axis::Ancestor => "ancestor",
            Axis::AncestorOrSelf => "ancestor-or-self",
            Axis::FollowingSibling => "following-sibling",
            Axis::PrecedingSibling => "preceding-sibling",
        }
    }
}

/// A node test within a step.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NodeTest {
    /// A (possibly wildcard `*`, possibly prefixed) name test.
    Name(String),
    /// `text()`.
    Text,
    /// `node()`.
    AnyNode,
}

impl NodeTest {
    /// The label a pattern-graph vertex gets for this test (`*` for both the
    /// wildcard and `node()`).
    pub fn label(&self) -> &str {
        match self {
            NodeTest::Name(n) => n,
            NodeTest::Text | NodeTest::AnyNode => "*",
        }
    }
}

/// Comparison operators of general comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Apply to an ordering result per XQuery general-comparison semantics.
    pub fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }

    /// The mirrored operator (for `literal op path` normalization).
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// Source form.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// One operand of a comparison predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum PredOperand {
    /// A relative path evaluated from the step's context node (`.`,
    /// `price`, `@id`, `a/b`, …).
    Path(PathExpr),
    /// A literal.
    Literal(Atomic),
    /// A variable reference with an optional relative continuation:
    /// `$o/@sku`, `$limit`. Resolved against the enclosing query's scope;
    /// evaluation outside a scope (bare XPath) reports an unbound variable.
    Var {
        /// Variable name (without `$`).
        name: String,
        /// Continuation steps applied to the variable's nodes (may be empty).
        path: PathExpr,
    },
}

/// A predicate inside `[...]`.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Existence of at least one result of a relative path: `[b//c]`, `[@id]`.
    Exists(PathExpr),
    /// General comparison: `[price > 50]`, `[. = "x"]`.
    Compare {
        /// Left operand.
        lhs: PredOperand,
        /// Operator.
        op: CmpOp,
        /// Right operand.
        rhs: PredOperand,
    },
    /// Positional predicate `[3]` (1-based) or `[last()]` (encoded as -1).
    Position(i64),
    /// `p1 and p2`.
    And(Box<Predicate>, Box<Predicate>),
    /// `p1 or p2`.
    Or(Box<Predicate>, Box<Predicate>),
    /// `not(p)`.
    Not(Box<Predicate>),
}

/// One location step.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// The axis.
    pub axis: Axis,
    /// The node test.
    pub test: NodeTest,
    /// Conjoined predicates in source order.
    pub predicates: Vec<Predicate>,
}

impl Step {
    /// A bare `child::name` step.
    pub fn child(name: impl Into<String>) -> Step {
        Step { axis: Axis::Child, test: NodeTest::Name(name.into()), predicates: vec![] }
    }

    /// A bare `descendant::name` step.
    pub fn descendant(name: impl Into<String>) -> Step {
        Step { axis: Axis::Descendant, test: NodeTest::Name(name.into()), predicates: vec![] }
    }
}

/// A parsed path expression.
#[derive(Debug, Clone, PartialEq)]
pub struct PathExpr {
    /// True for `/...` and `//...` paths rooted at the document.
    pub absolute: bool,
    /// The steps in order.
    pub steps: Vec<Step>,
}

impl PathExpr {
    /// Collect every `$var` referenced by predicates anywhere in the path
    /// (including nested predicate paths) — needed by free-variable
    /// analysis in the algebra layer.
    pub fn referenced_vars(&self, out: &mut Vec<String>) {
        fn preds(ps: &[Predicate], out: &mut Vec<String>) {
            for p in ps {
                match p {
                    Predicate::Exists(path) => path.referenced_vars(out),
                    Predicate::Compare { lhs, rhs, .. } => {
                        for o in [lhs, rhs] {
                            match o {
                                PredOperand::Var { name, path } => {
                                    out.push(name.clone());
                                    path.referenced_vars(out);
                                }
                                PredOperand::Path(path) => path.referenced_vars(out),
                                PredOperand::Literal(_) => {}
                            }
                        }
                    }
                    Predicate::Position(_) => {}
                    Predicate::And(a, b) | Predicate::Or(a, b) => {
                        preds(std::slice::from_ref(a.as_ref()), out);
                        preds(std::slice::from_ref(b.as_ref()), out);
                    }
                    Predicate::Not(a) => preds(std::slice::from_ref(a.as_ref()), out),
                }
            }
        }
        for s in &self.steps {
            preds(&s.predicates, out);
        }
    }

    /// True if every step uses a downward axis — the precondition for
    /// pattern-graph (and hence TPM/NoK) evaluation.
    pub fn is_downward(&self) -> bool {
        self.steps.iter().all(|s| s.axis.is_downward() && Self::preds_downward(&s.predicates))
    }

    fn preds_downward(preds: &[Predicate]) -> bool {
        preds.iter().all(|p| match p {
            Predicate::Exists(path) => path.is_downward(),
            Predicate::Compare { lhs, rhs, .. } => {
                let ok = |o: &PredOperand| match o {
                    PredOperand::Path(p) => p.is_downward(),
                    PredOperand::Literal(_) => true,
                    // Variable operands need the evaluator's scope.
                    PredOperand::Var { .. } => false,
                };
                ok(lhs) && ok(rhs)
            }
            Predicate::Position(_) => true,
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                Self::preds_downward(std::slice::from_ref(a.as_ref()))
                    && Self::preds_downward(std::slice::from_ref(b.as_ref()))
            }
            Predicate::Not(a) => Self::preds_downward(std::slice::from_ref(a.as_ref())),
        })
    }
}

impl fmt::Display for PathExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.absolute && self.steps.is_empty() {
            return write!(f, "/");
        }
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 || self.absolute {
                write!(f, "/")?;
            }
            write!(f, "{}", StepDisplay(s))?;
        }
        Ok(())
    }
}

struct StepDisplay<'a>(&'a Step);

impl fmt::Display for StepDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0;
        match (s.axis, &s.test) {
            (Axis::Attribute, NodeTest::Name(n)) => write!(f, "@{n}")?,
            (Axis::Child, t) => write!(f, "{}", test_str(t))?,
            (Axis::SelfAxis, NodeTest::AnyNode) => write!(f, ".")?,
            (Axis::Parent, NodeTest::AnyNode) => write!(f, "..")?,
            (axis, t) => write!(f, "{}::{}", axis.keyword(), test_str(t))?,
        }
        for p in &s.predicates {
            write!(f, "[{}]", PredDisplay(p))?;
        }
        Ok(())
    }
}

fn test_str(t: &NodeTest) -> String {
    match t {
        NodeTest::Name(n) => n.clone(),
        NodeTest::Text => "text()".to_string(),
        NodeTest::AnyNode => "node()".to_string(),
    }
}

struct PredDisplay<'a>(&'a Predicate);

impl fmt::Display for PredDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            Predicate::Exists(p) => write!(f, "{p}"),
            Predicate::Compare { lhs, op, rhs } => {
                let side = |o: &PredOperand| match o {
                    PredOperand::Path(p) => format!("{p}"),
                    PredOperand::Literal(Atomic::Str(s)) => format!("\"{s}\""),
                    PredOperand::Literal(a) => a.to_string(),
                    PredOperand::Var { name, path } if path.steps.is_empty() => {
                        format!("${name}")
                    }
                    PredOperand::Var { name, path } => format!("${name}/{path}"),
                };
                write!(f, "{} {} {}", side(lhs), op.symbol(), side(rhs))
            }
            Predicate::Position(-1) => write!(f, "last()"),
            Predicate::Position(i) => write!(f, "{i}"),
            Predicate::And(a, b) => write!(f, "{} and {}", PredDisplay(a), PredDisplay(b)),
            Predicate::Or(a, b) => write!(f, "({} or {})", PredDisplay(a), PredDisplay(b)),
            Predicate::Not(a) => write!(f, "not({})", PredDisplay(a)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_downward_classification() {
        assert!(Axis::Child.is_downward());
        assert!(Axis::Descendant.is_downward());
        assert!(Axis::Attribute.is_downward());
        assert!(!Axis::Parent.is_downward());
        assert!(!Axis::FollowingSibling.is_downward());
    }

    #[test]
    fn cmp_op_eval() {
        use std::cmp::Ordering::*;
        assert!(CmpOp::Eq.eval(Equal));
        assert!(!CmpOp::Eq.eval(Less));
        assert!(CmpOp::Le.eval(Equal));
        assert!(CmpOp::Le.eval(Less));
        assert!(!CmpOp::Le.eval(Greater));
        assert!(CmpOp::Ne.eval(Greater));
    }

    #[test]
    fn cmp_op_flip() {
        assert_eq!(CmpOp::Lt.flipped(), CmpOp::Gt);
        assert_eq!(CmpOp::Ge.flipped(), CmpOp::Le);
        assert_eq!(CmpOp::Eq.flipped(), CmpOp::Eq);
    }

    #[test]
    fn path_downward_check() {
        let down =
            PathExpr { absolute: true, steps: vec![Step::child("a"), Step::descendant("b")] };
        assert!(down.is_downward());
        let up = PathExpr {
            absolute: true,
            steps: vec![Step { axis: Axis::Parent, test: NodeTest::AnyNode, predicates: vec![] }],
        };
        assert!(!up.is_downward());
    }

    #[test]
    fn display_roundtrips_simple_forms() {
        let p = PathExpr {
            absolute: true,
            steps: vec![
                Step::child("bib"),
                Step {
                    axis: Axis::Child,
                    test: NodeTest::Name("book".into()),
                    predicates: vec![Predicate::Compare {
                        lhs: PredOperand::Path(PathExpr {
                            absolute: false,
                            steps: vec![Step {
                                axis: Axis::Attribute,
                                test: NodeTest::Name("year".into()),
                                predicates: vec![],
                            }],
                        }),
                        op: CmpOp::Gt,
                        rhs: PredOperand::Literal(Atomic::Integer(1994)),
                    }],
                },
            ],
        };
        assert_eq!(p.to_string(), "/bib/book[@year > 1994]");
    }
}
