//! Expression and FLWOR evaluation over the environment sort.
//!
//! [`Evaluator::eval`] interprets `xqp-algebra` expressions; FLWOR plans
//! build an [`Env`] (Definition 3) layer by layer and evaluate the `return`
//! clause once per total binding — Example 1's semantics executed directly.
//! A [`LogicalPlan::TpmBind`] operator instead runs **one tree-pattern
//! match** ([`crate::nok`]) and derives all its variable layers from the
//! confirmed match sets, realizing the paper's argument that the Fig. 1
//! list comprehension "could be implemented … with a single scan of the
//! input data without the need for structural joins".

use crate::construct;
use crate::context::{ExecContext, NodeRef, Val, XqError};
use crate::functions;
use crate::naive;
use crate::nok;
use crate::physical::{EvalMode, PhysicalPlan};
use crate::planner::{self, Strategy};
use std::cmp::Ordering;
use std::sync::Arc;
use xqp_algebra::env::Bindings;
use xqp_algebra::expr::ArithOp;
use xqp_algebra::plan::OrderKey;
use xqp_algebra::{Expr, Item, PathOp};
use xqp_xml::Atomic;
use xqp_xpath::PathExpr;

/// Lexical scope chain for variable lookup across nested FLWORs.
pub struct Scope<'p> {
    vars: Vec<(String, Val)>,
    parent: Option<&'p Scope<'p>>,
}

impl<'p> Scope<'p> {
    /// The empty outermost scope.
    pub fn root() -> Scope<'static> {
        Scope { vars: Vec::new(), parent: None }
    }

    /// A child scope with additional bindings (innermost wins).
    pub fn child(&'p self, vars: Vec<(String, Val)>) -> Scope<'p> {
        Scope { vars, parent: Some(self) }
    }

    /// Look up a variable.
    pub fn lookup(&self, name: &str) -> Option<&Val> {
        for (v, val) in self.vars.iter().rev() {
            if v == name {
                return Some(val);
            }
        }
        self.parent.and_then(|p| p.lookup(name))
    }
}

pub(crate) fn scope_from_bindings<'p>(
    outer: &'p Scope<'p>,
    b: &Bindings<'_, NodeRef>,
) -> Scope<'p> {
    let vars = b.entries().into_iter().map(|(name, val)| (name.to_string(), val.clone())).collect();
    outer.child(vars)
}

/// The expression/plan evaluator.
pub struct Evaluator<'c, 'a> {
    /// Execution context.
    pub ctx: &'c ExecContext<'a>,
    /// Physical strategy for compiled tree patterns.
    pub strategy: Strategy,
    /// How FLWOR plans run: streamed through the physical pipeline
    /// (default) or materialized through the `Env` interpreter.
    pub mode: EvalMode,
    /// A pre-lowered physical plan for the query's top-level FLWOR; its
    /// shared operator stats accumulate actuals for `explain`.
    pub(crate) physical: Option<Arc<PhysicalPlan>>,
}

impl<'c, 'a> Evaluator<'c, 'a> {
    /// Create an evaluator.
    pub fn new(ctx: &'c ExecContext<'a>, strategy: Strategy) -> Self {
        Evaluator { ctx, strategy, mode: EvalMode::default(), physical: None }
    }

    /// Select the FLWOR evaluation mode.
    pub fn with_mode(mut self, mode: EvalMode) -> Self {
        self.mode = mode;
        self
    }

    /// Attach a pre-lowered physical plan (from the plan cache).
    pub fn with_physical(mut self, physical: Option<Arc<PhysicalPlan>>) -> Self {
        self.physical = physical;
        self
    }

    /// Evaluate an expression in a scope.
    pub fn eval(&self, e: &Expr, scope: &Scope<'_>) -> Result<Val, XqError> {
        // Cooperative governor check: eval() is the one funnel every
        // evaluation path re-enters per binding (sources, filters, return
        // clauses, nested FLWORs), so checking here bounds the work any
        // query can do between limit observations.
        self.ctx.governor_check()?;
        match e {
            Expr::Literal(a) => Ok(vec![Item::Atom(a.clone())]),
            Expr::Var(v) => scope
                .lookup(v)
                .cloned()
                .ok_or_else(|| XqError::new(format!("unbound variable ${v}"))),
            Expr::ContextDoc => Ok(self
                .ctx
                .sdoc
                .root()
                .map(|r| vec![Item::Node(NodeRef::Stored(r))])
                .unwrap_or_default()),
            Expr::Path { base, path } => {
                let input = self.path_context(base, scope)?;
                let lookup = |name: &str| scope.lookup(name).cloned();
                let out = naive::eval_path_with_vars(self.ctx, &input, path, &lookup)?;
                Ok(naive::to_items(out))
            }
            Expr::CompiledPath { base, path, plan } => {
                self.eval_compiled_path(base, path, plan, scope)
            }
            Expr::Arith { op, lhs, rhs } => {
                let l = self.eval(lhs, scope)?;
                let r = self.eval(rhs, scope)?;
                self.arith(*op, &l, &r)
            }
            Expr::Cmp { op, lhs, rhs } => {
                let l = self.ctx.atomize(&self.eval(lhs, scope)?);
                let r = self.ctx.atomize(&self.eval(rhs, scope)?);
                Ok(vec![Item::Atom(Atomic::Boolean(naive::general_compare(&l, *op, &r)))])
            }
            Expr::And(a, b) => {
                let l = naive::ebv(&self.eval(a, scope)?);
                let v = l && naive::ebv(&self.eval(b, scope)?);
                Ok(vec![Item::Atom(Atomic::Boolean(v))])
            }
            Expr::Or(a, b) => {
                let l = naive::ebv(&self.eval(a, scope)?);
                let v = l || naive::ebv(&self.eval(b, scope)?);
                Ok(vec![Item::Atom(Atomic::Boolean(v))])
            }
            Expr::Not(a) => {
                let v = !naive::ebv(&self.eval(a, scope)?);
                Ok(vec![Item::Atom(Atomic::Boolean(v))])
            }
            Expr::If { cond, then_branch, else_branch } => {
                if naive::ebv(&self.eval(cond, scope)?) {
                    self.eval(then_branch, scope)
                } else {
                    self.eval(else_branch, scope)
                }
            }
            Expr::Call { name, args } => {
                let entry = functions::lookup(name)
                    .ok_or_else(|| XqError::new(format!("unknown function `{name}()`")))?;
                functions::check_arity(entry, args.len())?;
                // A streaming-capable aggregate over a sole FLWOR argument
                // lowers to a fold over the physical pipeline: the FLWOR's
                // rows are consumed as they stream instead of materializing
                // the whole argument sequence first.
                if matches!(self.mode, EvalMode::Streaming) && args.len() == 1 {
                    if let (Some(mk), Expr::Flwor(plan)) = (entry.fold, &args[0]) {
                        return self.fold_plan_streaming(plan, mk(), scope);
                    }
                }
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, scope)?);
                }
                (entry.eval)(self, scope, &vals)
            }
            Expr::Quantified { every, var, source, cond } => {
                // One shared implementation for both evaluation modes: the
                // source is produced in full, the condition short-circuits
                // the moment the verdict is decided. Determinism across the
                // whole engine matrix is what lets the short-circuit skip
                // later (possibly erroring) condition evaluations.
                let seq = self.eval(source, scope)?;
                let mut verdict = *every;
                for item in seq {
                    let s = scope.child(vec![(var.clone(), vec![item])]);
                    if naive::ebv(&self.eval(cond, &s)?) != *every {
                        verdict = !*every;
                        break;
                    }
                }
                Ok(vec![Item::Atom(Atomic::Boolean(verdict))])
            }
            Expr::SequenceExpr(items) => {
                let mut out = Vec::new();
                for i in items {
                    out.extend(self.eval(i, scope)?);
                }
                Ok(out)
            }
            Expr::Construct(tree) => {
                let node = construct::build(self.ctx, tree, &mut |e| self.eval(e, scope))?;
                Ok(vec![Item::Node(node)])
            }
            Expr::Flwor(plan) => match self.mode {
                EvalMode::Streaming => self.eval_plan_streaming(plan, scope),
                EvalMode::Materializing => self.eval_plan(plan, scope),
            },
        }
    }

    /// Compute the `order by` sort key for the current scope.
    pub(crate) fn order_key(
        &self,
        keys: &[OrderKey],
        scope: &Scope<'_>,
    ) -> Result<SortKey, XqError> {
        let mut parts = Vec::with_capacity(keys.len());
        for k in keys {
            let atom = self.ctx.atomize(&self.eval(&k.expr, scope)?).into_iter().next();
            parts.push((atom, k.descending));
        }
        Ok(SortKey(parts))
    }

    // ---- paths ---------------------------------------------------------------

    /// Context nodes for a path's base expression.
    fn path_context(&self, base: &Expr, scope: &Scope<'_>) -> Result<Vec<NodeRef>, XqError> {
        let v = self.eval(base, scope)?;
        Ok(v.iter().filter_map(|i| i.as_node().copied()).collect())
    }

    fn eval_compiled_path(
        &self,
        base: &Expr,
        path: &PathExpr,
        plan: &PathOp,
        scope: &Scope<'_>,
    ) -> Result<Val, XqError> {
        // Fused pattern: strategy-dispatched TPM.
        if let PathOp::TpmFrom { pattern, .. } = plan {
            if self.strategy != Strategy::Naive {
                let mut out: Vec<NodeRef> = Vec::new();
                if matches!(base, Expr::ContextDoc) {
                    // Absolute: the virtual document node is the context.
                    out.extend(
                        planner::eval_pattern(self.ctx, pattern, None, self.strategy)
                            .into_iter()
                            .map(NodeRef::Stored),
                    );
                } else {
                    // Per-binding evaluation: prepare the matcher once and
                    // reuse it across the (possibly many) context nodes.
                    let prepared = nok::PreparedPattern::new(pattern);
                    for n in self.path_context(base, scope)? {
                        match n {
                            NodeRef::Stored(s) => out.extend(
                                prepared
                                    .eval_single_output(self.ctx, Some(s))
                                    .into_iter()
                                    .map(NodeRef::Stored),
                            ),
                            // Constructed contexts fall back to navigation.
                            built @ NodeRef::Built(_) => {
                                let lookup = |name: &str| scope.lookup(name).cloned();
                                out.extend(naive::eval_path_with_vars(
                                    self.ctx,
                                    &[built],
                                    path,
                                    &lookup,
                                )?)
                            }
                        }
                    }
                }
                naive::dedup_doc_order(&mut out);
                return Ok(naive::to_items(out));
            }
        }
        // Naive chain (or Naive strategy): interpret the surface path.
        let input = if matches!(base, Expr::ContextDoc) {
            Vec::new() // absolute paths ignore context
        } else {
            self.path_context(base, scope)?
        };
        let lookup = |name: &str| scope.lookup(name).cloned();
        let out = naive::eval_path_with_vars(self.ctx, &input, path, &lookup)?;
        Ok(naive::to_items(out))
    }

    // ---- arithmetic and functions ---------------------------------------------

    fn arith(&self, op: ArithOp, l: &Val, r: &Val) -> Result<Val, XqError> {
        let la = self.ctx.atomize(l);
        let ra = self.ctx.atomize(r);
        // Empty operand ⇒ empty result (XQuery arithmetic on ()).
        let (Some(lv), Some(rv)) = (la.first(), ra.first()) else {
            return Ok(Vec::new());
        };
        if la.len() > 1 || ra.len() > 1 {
            return Err(XqError::new("arithmetic on a sequence of more than one item"));
        }
        match op.apply(lv, rv) {
            Some(v) => Ok(vec![Item::Atom(v)]),
            None => Err(XqError::new(format!("cannot compute {lv} {} {rv}", op.symbol()))),
        }
    }
}

/// Sort key for `order by`: empty keys sort least; descending flips.
pub(crate) struct SortKey(pub(crate) Vec<(Option<Atomic>, bool)>);

impl PartialEq for SortKey {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for SortKey {}

impl PartialOrd for SortKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SortKey {
    fn cmp(&self, other: &Self) -> Ordering {
        for ((a, desc), (b, _)) in self.0.iter().zip(&other.0) {
            let ord = match (a, b) {
                (None, None) => Ordering::Equal,
                (None, Some(_)) => Ordering::Less,
                (Some(_), None) => Ordering::Greater,
                (Some(x), Some(y)) => x.order_key_cmp(y),
            };
            let ord = if *desc { ord.reverse() } else { ord };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqp_algebra::{optimize_expr, RuleSet};
    use xqp_storage::SuccinctDoc;

    const BIB: &str = "<bib>\
        <book year=\"1994\"><title>TCP</title><author>Stevens</author><price>65</price></book>\
        <book year=\"2000\"><title>Data</title><author>Abiteboul</author><author>Buneman</author><price>39</price></book>\
        </bib>";

    fn run(xml: &str, query: &str) -> Vec<String> {
        run_with(xml, query, &RuleSet::all(), Strategy::Auto)
    }

    fn run_with(xml: &str, query: &str, rules: &RuleSet, strategy: Strategy) -> Vec<String> {
        let sdoc = SuccinctDoc::parse(xml).unwrap();
        let ctx = ExecContext::new(&sdoc);
        let body = xqp_xquery::parse_query(query).unwrap().body;
        let (body, _) = optimize_expr(body, rules);
        let ev = Evaluator::new(&ctx, strategy);
        let v = ev.eval(&body, &Scope::root()).unwrap();
        v.iter()
            .map(|i| match i {
                Item::Atom(a) => a.as_string(),
                Item::Node(n) => ctx.string_value(*n),
            })
            .collect()
    }

    #[test]
    fn simple_flwor() {
        let out = run(BIB, "for $b in doc()/bib/book return $b/title");
        assert_eq!(out, ["TCP", "Data"]);
    }

    #[test]
    fn flwor_with_where() {
        let out = run(BIB, "for $b in doc()/bib/book where $b/price > 50 return $b/title");
        assert_eq!(out, ["TCP"]);
    }

    #[test]
    fn flwor_with_let_and_count() {
        let out = run(BIB, "for $b in doc()/bib/book let $a := $b/author return count($a)");
        assert_eq!(out, ["1", "2"]);
    }

    #[test]
    fn order_by_ascending_and_descending() {
        let out = run(BIB, "for $b in doc()/bib/book order by $b/price return $b/title");
        assert_eq!(out, ["Data", "TCP"]);
        let out = run(BIB, "for $b in doc()/bib/book order by $b/price descending return $b/title");
        assert_eq!(out, ["TCP", "Data"]);
    }

    #[test]
    fn arithmetic_and_literals() {
        assert_eq!(run(BIB, "1 + 2 * 3"), ["7"]);
        assert_eq!(run(BIB, "(10 - 4) div 2"), ["3"]);
        assert_eq!(run(BIB, "7 mod 4"), ["3"]);
        assert_eq!(run(BIB, "-5 + 2"), ["-3"]);
    }

    #[test]
    fn comparisons_are_existential() {
        assert_eq!(run(BIB, "doc()/bib/book/price > 50"), ["true"]);
        assert_eq!(run(BIB, "doc()/bib/book/price > 100"), ["false"]);
    }

    #[test]
    fn aggregates() {
        assert_eq!(run(BIB, "sum(doc()/bib/book/price)"), ["104"]);
        assert_eq!(run(BIB, "avg(doc()/bib/book/price)"), ["52"]);
        assert_eq!(run(BIB, "min(doc()/bib/book/price)"), ["39"]);
        assert_eq!(run(BIB, "max(doc()/bib/book/price)"), ["65"]);
        assert_eq!(run(BIB, "count(doc()//author)"), ["3"]);
    }

    #[test]
    fn string_functions() {
        assert_eq!(run(BIB, "concat(\"a\", \"b\", 1)"), ["ab1"]);
        assert_eq!(run(BIB, "contains(\"hello\", \"ell\")"), ["true"]);
        assert_eq!(run(BIB, "starts-with(\"hello\", \"he\")"), ["true"]);
        assert_eq!(run(BIB, "string-length(\"héllo\")"), ["5"]);
        assert_eq!(run(BIB, "substring(\"hello\", 2, 3)"), ["ell"]);
        assert_eq!(run(BIB, "normalize-space(\"  a   b \")"), ["a b"]);
        assert_eq!(run(BIB, "string-join((\"a\",\"b\",\"c\"), \"-\")"), ["a-b-c"]);
    }

    #[test]
    fn numeric_functions() {
        assert_eq!(run(BIB, "round(2.5)"), ["3"]);
        assert_eq!(run(BIB, "floor(2.9)"), ["2"]);
        assert_eq!(run(BIB, "ceiling(2.1)"), ["3"]);
        assert_eq!(run(BIB, "abs(1 - 5)"), ["4"]);
    }

    #[test]
    fn distinct_values() {
        let out = run("<r><x>b</x><x>a</x><x>b</x></r>", "distinct-values(doc()/r/x)");
        assert_eq!(out, ["a", "b"]);
    }

    #[test]
    fn if_then_else() {
        let out = run(
            BIB,
            "for $b in doc()/bib/book return if ($b/price > 50) then \"pricey\" else \"cheap\"",
        );
        assert_eq!(out, ["pricey", "cheap"]);
    }

    #[test]
    fn nested_flwor_with_outer_variable() {
        let out = run(
            BIB,
            "for $b in doc()/bib/book return for $a in $b/author return concat($a, \"!\")",
        );
        assert_eq!(out, ["Stevens!", "Abiteboul!", "Buneman!"]);
    }

    #[test]
    fn name_functions() {
        assert_eq!(run(BIB, "name(doc()/bib/book[1])"), ["book"]);
    }

    #[test]
    fn unbound_variable_errors() {
        let sdoc = SuccinctDoc::parse(BIB).unwrap();
        let ctx = ExecContext::new(&sdoc);
        let ev = Evaluator::new(&ctx, Strategy::Auto);
        let err = ev.eval(&Expr::var("ghost"), &Scope::root()).unwrap_err();
        assert!(err.0.contains("ghost"));
    }

    #[test]
    fn unknown_function_errors() {
        let sdoc = SuccinctDoc::parse(BIB).unwrap();
        let ctx = ExecContext::new(&sdoc);
        let ev = Evaluator::new(&ctx, Strategy::Auto);
        let e = Expr::Call { name: "frobnicate".into(), args: vec![] };
        assert!(ev.eval(&e, &Scope::root()).is_err());
    }

    #[test]
    fn all_strategies_and_rule_sets_agree() {
        let queries = [
            "for $b in doc()/bib/book return $b/title",
            "for $b in doc()/bib/book where $b/price > 50 return $b/title",
            "for $b in doc()/bib/book let $a := $b/author return count($a)",
            "count(doc()//author)",
        ];
        for q in &queries {
            let reference = run_with(BIB, q, &RuleSet::none(), Strategy::Naive);
            for rules in [RuleSet::all(), RuleSet::none(), RuleSet::all_except(5)] {
                for strat in [
                    Strategy::Auto,
                    Strategy::NoK,
                    Strategy::TwigStack,
                    Strategy::BinaryJoin,
                    Strategy::Naive,
                ] {
                    assert_eq!(
                        run_with(BIB, q, &rules, strat),
                        reference,
                        "query `{q}` rules {rules:?} strategy {strat:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn tpm_bind_executes_fig1_style_query() {
        // Force R5 and check the fused plan produces the right bindings.
        let q = "for $b in doc()/bib/book let $t := $b/title let $a := $b/author \
                 return count($a)";
        let fused = run_with(BIB, q, &RuleSet::all(), Strategy::NoK);
        let plain = run_with(BIB, q, &RuleSet::none(), Strategy::Naive);
        assert_eq!(fused, plain);
        assert_eq!(fused, ["1", "2"]);
    }

    #[test]
    fn r9_where_pushdown_preserves_semantics() {
        let q = "for $b in doc()/bib/book let $t := $b/title \
                 where $b/price > 50 and $b/@year = 1994 return $t";
        let reference = run_with(BIB, q, &RuleSet::none(), Strategy::Naive);
        assert_eq!(reference, ["TCP"]);
        for rules in [RuleSet::all(), RuleSet::all_except(9), RuleSet::all_except(5)] {
            for strat in [Strategy::NoK, Strategy::TwigStack, Strategy::Auto] {
                assert_eq!(
                    run_with(BIB, q, &rules, strat),
                    reference,
                    "rules {rules:?} strategy {strat:?}"
                );
            }
        }
    }

    #[test]
    fn let_over_empty_match_survives_in_tpm_bind() {
        let xml = "<r><p><q>1</q></p><p/></r>";
        let q = "for $p in doc()/r/p let $q := $p/q return count($q)";
        let fused = run_with(xml, q, &RuleSet::all(), Strategy::NoK);
        assert_eq!(fused, ["1", "0"]);
        assert_eq!(fused, run_with(xml, q, &RuleSet::none(), Strategy::Naive));
    }

    /// Evaluate under both modes, expecting the same error from each.
    fn run_err(xml: &str, query: &str) -> XqError {
        let sdoc = SuccinctDoc::parse(xml).unwrap();
        let ctx = ExecContext::new(&sdoc);
        let body = xqp_xquery::parse_query(query).unwrap().body;
        let (body, _) = optimize_expr(body, &RuleSet::all());
        let streaming =
            Evaluator::new(&ctx, Strategy::Auto).eval(&body, &Scope::root()).unwrap_err();
        let materializing = Evaluator::new(&ctx, Strategy::Auto)
            .with_mode(crate::physical::EvalMode::Materializing)
            .eval(&body, &Scope::root())
            .unwrap_err();
        assert_eq!(streaming, materializing, "modes must report the same error for `{query}`");
        streaming
    }

    /// Regression: `sum()` used to accumulate in an f64 from the first
    /// item, silently rounding integers past the 2^53 mantissa. It now
    /// accumulates in checked i64 and stays exact.
    #[test]
    fn sum_is_exact_past_the_double_mantissa() {
        assert_eq!(run(BIB, "sum((9007199254740993, 1))"), ["9007199254740994"]);
        assert_eq!(run(BIB, "sum((9007199254740993, 0 - 9007199254740993))"), ["0"]);
    }

    /// On genuine i64 overflow the accumulator promotes to Double instead
    /// of erroring (and instead of wrapping).
    #[test]
    fn sum_overflow_promotes_to_double() {
        assert_eq!(run(BIB, "sum((9223372036854775807, 1))"), ["9223372036854776000"]);
        assert_eq!(
            run(BIB, "sum((0 - 9223372036854775807, 0 - 9223372036854775807))"),
            ["-18446744073709552000"]
        );
        // A double anywhere in the input switches to float accumulation.
        assert_eq!(run(BIB, "sum((1.5, 2))"), ["3.5"]);
    }

    /// Regression: `string()`/`number()` over a multi-item sequence used to
    /// silently pick the first item; the registry's cardinality check makes
    /// it a typed error in both modes.
    #[test]
    fn string_and_number_reject_multi_item_sequences() {
        let err = run_err(BIB, "string(doc()//author)");
        assert!(err.0.contains("type error"), "{err}");
        assert!(err.0.contains("sequence of 3 items"), "{err}");
        let err = run_err(BIB, "number(doc()/bib/book/price)");
        assert!(err.0.contains("type error"), "{err}");
        // Empty and singleton stay fine.
        assert_eq!(run(BIB, "string(doc()//zzz)"), [""]);
        assert_eq!(run(BIB, "string(doc()/bib/book[1]/title)"), ["TCP"]);
    }

    /// Regression: mixed numeric/string input to `min()`/`max()` used to
    /// compare through NaN-poisoned promotion (picking an arbitrary
    /// winner); it is now a typed error in both modes.
    #[test]
    fn min_max_reject_mixed_type_sequences() {
        // Node text atomizes as (untyped) strings, so a numeric literal in
        // the same sequence crosses the type-rank boundary too.
        for q in ["min((1, \"a\"))", "max((\"a\", 1))", "max((doc()//price, 1))"] {
            let err = run_err(BIB, q);
            assert!(err.0.contains("mixed types"), "`{q}`: {err}");
        }
        // Homogeneous inputs of either kind still aggregate.
        assert_eq!(run(BIB, "min((3, 1, 2))"), ["1"]);
        assert_eq!(run(BIB, "max((\"a\", \"c\", \"b\"))"), ["c"]);
        assert_eq!(run(BIB, "min(doc()//zzz)"), Vec::<String>::new());
    }

    #[test]
    fn position_and_last_see_the_innermost_for() {
        assert_eq!(run(BIB, "for $b in doc()/bib/book return position()"), ["1", "2"]);
        assert_eq!(run(BIB, "for $b in doc()/bib/book return last()"), ["2", "2"]);
        // The inner `for` shadows the outer focus; `last()` follows suit.
        assert_eq!(
            run(
                BIB,
                "for $b in doc()/bib/book for $a in $b/author \
                 return concat(position(), \"/\", last())"
            ),
            ["1/1", "1/2", "2/2"]
        );
        // Positional windows in `where` agree with path predicates.
        assert_eq!(
            run(BIB, "for $b in doc()/bib/book where position() = last() return $b/title"),
            ["Data"]
        );
    }

    #[test]
    fn focus_outside_a_for_clause_errors() {
        let err = run_err(BIB, "position()");
        assert!(err.0.contains("outside a for clause"), "{err}");
        let err = run_err(BIB, "let $x := 1 return last()");
        assert!(err.0.contains("outside a for clause"), "{err}");
    }

    #[test]
    fn quantifiers_short_circuit_and_agree() {
        assert_eq!(run(BIB, "some $x in doc()//price satisfies $x > 50"), ["true"]);
        assert_eq!(run(BIB, "every $x in doc()//price satisfies $x > 50"), ["false"]);
        assert_eq!(run(BIB, "some $x in doc()//zzz satisfies $x = 1"), ["false"]);
        assert_eq!(run(BIB, "every $x in doc()//zzz satisfies $x = 1"), ["true"]);
        // Multi-clause quantifiers desugar to nested single-variable ones.
        assert_eq!(
            run(BIB, "some $b in doc()/bib/book, $a in $b/author satisfies $a = \"Buneman\""),
            ["true"]
        );
        assert_eq!(
            run(BIB, "every $b in doc()/bib/book, $a in $b/author satisfies $a = \"Stevens\""),
            ["false"]
        );
    }
}
