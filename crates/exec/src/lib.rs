//! # xqp-exec — physical operators and the query executor
//!
//! The physical layer beneath the logical algebra (§4 of the paper). One
//! logical operator maps to several physical access methods with different
//! costs; this crate implements them all so the planner — and the
//! experiments — can compare them:
//!
//! * [`nok`] — the **NoK navigational pattern matcher**: pure next-of-kin
//!   patterns are evaluated in a *single pre-order scan* of the succinct
//!   structure, with no structural joins (§4.2); general patterns are
//!   partitioned into NoK subpatterns reconnected by structural joins (the
//!   hybrid approach, rewrite R3).
//! * [`structural`] — binary **stack-tree structural joins** over interval
//!   (region-encoded) tag streams (Al-Khalifa et al.), the join-based
//!   baseline, with join-order selection by the cost model (R4).
//! * [`twig`] — **PathStack / TwigStack** holistic twig joins (Bruno et
//!   al.), the strongest join-based baseline.
//! * [`naive`] — classic node-at-a-time navigation over all XPath axes: the
//!   "mature navigational engine" comparator and the semantic reference the
//!   property tests check every other method against. Its worst case is the
//!   exponential blow-up of experiment E4 ([4] in the paper).
//! * [`streaming`] — the NoK matcher running over a live SAX event stream,
//!   exploiting that pre-order storage coincides with arrival order.
//! * [`construct`] — the γ operator: SchemaTree + bindings → output tree.
//! * [`eval`] — the scalar expression evaluator (paths, arithmetic,
//!   functions, constructors), invoked per binding by either FLWOR backend.
//! * [`functions`] — the extensible built-in registry: name + arity +
//!   streaming-capable flag per entry, with fold operators giving the
//!   aggregates a streaming physical form (§14).
//! * [`physical`] — the **streaming physical pipeline** for FLWOR plans:
//!   `LogicalPlan` clauses lower to pull-based operators that stream total
//!   bindings batch-at-a-time, annotated by the whole-plan cost model.
//! * [`materialize`] — the materializing `Env` interpreter: the reference
//!   semantics the pipeline is checked against, and the E16 baseline.
//!
//! [`engine::Executor`] is the crate's front door.

pub mod cache;
pub mod construct;
pub mod context;
pub mod differential;
pub mod engine;
pub mod eval;
pub mod functions;
pub mod governor;
pub mod materialize;
pub mod mvcc;
pub mod naive;
pub mod nok;
pub mod parallel;
pub mod physical;
pub mod planner;
pub mod streaming;
pub mod structural;
pub mod twig;

pub use cache::{CompiledPlan, PlanCache, DEFAULT_PLAN_CACHE_CAPACITY};
pub use context::{ExecContext, ExecCounters, NodeRef, Val, XqError};
pub use engine::Executor;
pub use functions::{FnEntry, Fold};
pub use governor::{CancelToken, GovernorStats, QueryLimits, ResourceGovernor};
pub use mvcc::{DocVersion, VersionedDoc};
pub use physical::{EvalError, EvalMode, PhysicalPlan, BATCH_SIZE};
pub use planner::Strategy;
