//! Holistic twig joins — the PathStack / TwigStack baseline family.
//!
//! Bruno et al. (SIGMOD'02) evaluate a whole twig against the per-tag
//! interval streams with one synchronized pass and chained stacks, never
//! materializing binary-join intermediates. This module implements that
//! holistic scheme:
//!
//! * one **global merge by start position** over all vertex streams;
//! * per-vertex **stacks with parent pointers** encoding all open partial
//!   paths in linear space;
//! * **path solutions expanded at leaf pushes** (PathStack), then
//! * **merge-joined across leaf paths** on their shared prefix vertices to
//!   form twig matches (TwigStack's phase 2), projecting the output vertex.
//!
//! The getNext skip heuristic of full TwigStack is omitted — it prunes
//! provably-useless pushes but does not change results; the complexity
//! story the experiments compare (holistic streams vs. per-arc binary
//! joins vs. NoK single scan) is unaffected.

use crate::context::ExecContext;
use crate::structural::candidates;
use std::collections::HashMap;
use xqp_storage::{Interval, SNodeId};
use xqp_xpath::{PRel, PatternGraph};

/// One expanded root-to-leaf path solution: `(vertex, node)` pairs, root
/// side first (the synthetic root is omitted).
type PathSolution = Vec<(usize, SNodeId)>;

/// How many inner-loop iterations may pass between governor polls.
const GOVERNOR_POLL_EVERY: u32 = 256;

/// Evaluate a single-output pattern holistically. `context` restricts the
/// match to a subtree.
pub fn eval_pattern_holistic(
    ctx: &ExecContext<'_>,
    g: &PatternGraph,
    context: Option<SNodeId>,
) -> Vec<SNodeId> {
    let outputs = g.outputs();
    assert_eq!(outputs.len(), 1, "holistic evaluation needs one output vertex");
    if g.unsatisfiable || ctx.sdoc.is_empty() {
        return Vec::new();
    }
    let streams = holistic_streams(ctx, g, context);
    holistic_sweep(ctx, g, streams)
}

/// Per-vertex interval streams prepared for the holistic join (σs/σv
/// applied, context restriction, synthetic root stream in slot `g.root()`)
/// — the front half of [`eval_pattern_holistic`], shared with
/// [`crate::parallel`].
pub fn holistic_streams(
    ctx: &ExecContext<'_>,
    g: &PatternGraph,
    context: Option<SNodeId>,
) -> Vec<Vec<Interval>> {
    let n = g.vertices.len();
    // Vertex streams (σs/σv applied), restricted to the context subtree.
    let mut streams: Vec<Vec<Interval>> = (0..n).map(|v| candidates(ctx, g, v)).collect();
    if let Some(c) = context {
        let (cs, ce, _) = ctx.sdoc.interval(c);
        for s in streams.iter_mut().skip(1) {
            s.retain(|iv| cs < iv.start && iv.end < ce);
        }
    }
    // Synthetic stream for the virtual root: one interval spanning it all.
    let root_iv = match context {
        Some(c) => {
            let (s, e, l) = ctx.sdoc.interval(c);
            Interval { start: s, end: e, level: l, node: c }
        }
        None => Interval {
            start: 0,
            end: u32::MAX,
            level: 0,
            node: SNodeId(u32::MAX), // never projected
        },
    };
    streams[g.root()] = vec![root_iv];
    streams
}

/// The stack-chained twig join over prepared streams — the back half of
/// [`eval_pattern_holistic`]. Exact with respect to its inputs: returns
/// every node in the output vertex's stream participating in a full twig
/// match drawn from the given streams, sorted and deduplicated.
pub fn holistic_sweep(
    ctx: &ExecContext<'_>,
    g: &PatternGraph,
    streams: Vec<Vec<Interval>>,
) -> Vec<SNodeId> {
    let output = g.outputs()[0];
    let n = g.vertices.len();

    // Pattern shape tables.
    let parent: Vec<Option<(usize, PRel)>> =
        (0..n).map(|v| g.incoming(v).map(|a| (a.from, a.rel))).collect();
    let is_leaf: Vec<bool> = (0..n).map(|v| g.children(v).next().is_none()).collect();
    // Leaves on fully-mandatory chains constrain the match; optional-chain
    // leaves don't (generalized patterns — not produced for this baseline,
    // but stay sound if they appear).
    let mandatory_leaf: Vec<usize> =
        (0..n).filter(|&v| is_leaf[v] && chain_is_mandatory(g, v)).collect();

    // Global merge by start position.
    let mut events: Vec<(u32, usize, Interval)> = Vec::new();
    for (v, s) in streams.iter().enumerate() {
        for iv in s {
            events.push((iv.start, v, *iv));
        }
    }
    events.sort_by_key(|(s, _, _)| *s);
    ctx.consume_stream(events.len() as u64);

    // Stacks: (interval, index of parent-stack top at push time or usize::MAX).
    let mut stacks: Vec<Vec<(Interval, usize)>> = vec![Vec::new(); n];
    let mut solutions: HashMap<usize, Vec<PathSolution>> =
        mandatory_leaf.iter().map(|&l| (l, Vec::new())).collect();

    // The sweep's signature is shared with the parallel workers
    // (plain fn pointer, no Result), so governor trips are observed by
    // polling: bail out early and let the caller's next fallible check
    // point raise the typed error.
    let mut since_poll: u32 = 0;
    for (start, v, iv) in events {
        since_poll += 1;
        if since_poll >= GOVERNOR_POLL_EVERY {
            since_poll = 0;
            if ctx.governor_should_stop() {
                return Vec::new();
            }
        }
        // Pop closed entries everywhere (start positions only grow).
        for s in stacks.iter_mut() {
            while let Some((top, _)) = s.last() {
                if top.end < start {
                    s.pop();
                } else {
                    break;
                }
            }
        }
        let ptr = match parent[v] {
            Some((p, _)) => {
                if stacks[p].is_empty() {
                    continue; // no open parent: cannot participate
                }
                stacks[p].len() - 1
            }
            None => usize::MAX,
        };
        stacks[v].push((iv, ptr));
        if solutions.contains_key(&v) {
            // Expand all root-to-leaf paths ending at this push.
            let mut acc = Vec::new();
            expand_paths(g, &parent, &stacks, v, stacks[v].len() - 1, &mut Vec::new(), &mut acc);
            solutions.get_mut(&v).expect("leaf key").extend(acc);
        }
    }

    // Phase 2: merge path solutions across mandatory leaves.
    let mut merged: Vec<HashMap<usize, SNodeId>> = vec![HashMap::new()];
    for leaf in &mandatory_leaf {
        let paths = &solutions[leaf];
        let mut next: Vec<HashMap<usize, SNodeId>> = Vec::new();
        for partial in &merged {
            // Phase 2 can explode combinatorially; poll per partial match.
            since_poll += 1;
            if since_poll >= GOVERNOR_POLL_EVERY {
                since_poll = 0;
                if ctx.governor_should_stop() {
                    return Vec::new();
                }
            }
            for path in paths {
                if path.iter().all(|(v, node)| partial.get(v).is_none_or(|have| have == node)) {
                    let mut m = partial.clone();
                    for (v, node) in path {
                        m.insert(*v, *node);
                    }
                    next.push(m);
                }
            }
        }
        merged = next;
        if merged.is_empty() {
            return Vec::new();
        }
    }

    let mut out: Vec<SNodeId> = merged.iter().filter_map(|m| m.get(&output).copied()).collect();
    out.sort_unstable();
    out.dedup();
    out
}

fn chain_is_mandatory(g: &PatternGraph, mut v: usize) -> bool {
    loop {
        if g.vertices[v].optional {
            return false;
        }
        match g.incoming(v) {
            Some(arc) => v = arc.from,
            None => return true,
        }
    }
}

/// Recursively expand all ancestor combinations for the stack entry
/// `(vertex, slot)`, respecting arc relations (levels for parent-child).
fn expand_paths(
    g: &PatternGraph,
    parent: &[Option<(usize, PRel)>],
    stacks: &[Vec<(Interval, usize)>],
    vertex: usize,
    slot: usize,
    suffix: &mut Vec<(usize, SNodeId)>,
    out: &mut Vec<PathSolution>,
) {
    let (iv, ptr) = stacks[vertex][slot];
    suffix.push((vertex, iv.node));
    match parent[vertex] {
        None => {
            // Synthetic root reached: record (root omitted from the path).
            let mut sol: PathSolution =
                suffix.iter().rev().filter(|(v, _)| *v != g.root()).copied().collect();
            sol.shrink_to_fit();
            out.push(sol);
        }
        Some((p, rel)) => {
            for pslot in 0..=ptr {
                let (piv, _) = stacks[p][pslot];
                let ok = match rel {
                    // Strict: a node is not its own ancestor.
                    PRel::Descendant => piv.start < iv.start && iv.end < piv.end,
                    PRel::Child => {
                        piv.level + 1 == iv.level && piv.start < iv.start && iv.end < piv.end
                    }
                };
                // The synthetic root interval contains everything.
                let ok = ok || (p == g.root() && rel == PRel::Descendant);
                let ok = if p == g.root() && rel == PRel::Child {
                    // Child of the virtual root: top-level element (level 1)
                    // or, with a context node, a direct child of it.
                    iv.level == piv.level + 1 || (piv.node == SNodeId(u32::MAX) && iv.level == 1)
                } else {
                    ok
                };
                if ok {
                    expand_paths(g, parent, stacks, p, pslot, suffix, out);
                }
            }
        }
    }
    suffix.pop();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::NodeRef;
    use crate::naive;
    use xqp_storage::SuccinctDoc;
    use xqp_xpath::parse_path;

    const BIB: &str = "<bib>\
        <book year=\"1994\"><title>TCP</title><author>Stevens</author><price>65</price></book>\
        <book year=\"2000\"><title>Data</title><author>Abiteboul</author><author>Buneman</author><price>39</price></book>\
        <article><title>X</title><keyword>xml</keyword></article>\
        </bib>";

    fn twig_eval(doc: &SuccinctDoc, path: &str) -> Vec<SNodeId> {
        let ctx = ExecContext::new(doc);
        let g = PatternGraph::from_path(&parse_path(path).unwrap()).unwrap();
        eval_pattern_holistic(&ctx, &g, None)
    }

    fn naive_eval(doc: &SuccinctDoc, path: &str) -> Vec<SNodeId> {
        let ctx = ExecContext::new(doc);
        naive::eval_path(&ctx, &[], &parse_path(path).unwrap())
            .unwrap()
            .into_iter()
            .map(|n| match n {
                NodeRef::Stored(s) => s,
                NodeRef::Built(_) => unreachable!(),
            })
            .collect()
    }

    fn assert_same(doc: &SuccinctDoc, path: &str) {
        assert_eq!(twig_eval(doc, path), naive_eval(doc, path), "path `{path}`");
    }

    #[test]
    fn linear_paths_match_naive() {
        let d = SuccinctDoc::parse(BIB).unwrap();
        for p in ["//title", "//book/title", "/bib/book/title", "/bib//author", "//missing"] {
            assert_same(&d, p);
        }
    }

    #[test]
    fn twigs_match_naive() {
        let d = SuccinctDoc::parse(BIB).unwrap();
        for p in [
            "/bib/book[author]/title",
            "//book[@year = 1994]/title",
            "//book[price > 50]/title",
            "//*[keyword]/title",
            "/bib/book[author][price]/title",
        ] {
            assert_same(&d, p);
        }
    }

    #[test]
    fn recursive_nesting() {
        let d = SuccinctDoc::parse("<a><a><a><b/></a></a><b/></a>").unwrap();
        for p in ["//a//a", "//a//b", "//a[b]", "//a/a/b"] {
            assert_same(&d, p);
        }
    }

    #[test]
    fn deep_mixed_relations() {
        let d = SuccinctDoc::parse(
            "<r><a><b><c><d>1</d></c></b></a><a><x><c><d>2</d></c></x></a><c><d>3</d></c></r>",
        )
        .unwrap();
        for p in ["//a//c/d", "//a//c//d", "/r//c/d", "//a/b//d"] {
            assert_same(&d, p);
        }
    }

    #[test]
    fn context_restriction() {
        let d = SuccinctDoc::parse(BIB).unwrap();
        let ctx = ExecContext::new(&d);
        let bib = d.root().unwrap();
        let book2 = d.child_elements(bib).nth(1).unwrap();
        let mut g = PatternGraph::empty();
        let last = g.graft_path(g.root(), &parse_path("author").unwrap()).unwrap().unwrap();
        g.mark_output(last);
        let m = eval_pattern_holistic(&ctx, &g, Some(book2));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn stream_counter_ticks() {
        let d = SuccinctDoc::parse(BIB).unwrap();
        let ctx = ExecContext::new(&d);
        let g = PatternGraph::from_path(&parse_path("//book[author]/title").unwrap()).unwrap();
        ctx.reset_counters();
        let _ = eval_pattern_holistic(&ctx, &g, None);
        assert!(ctx.counters().stream_items > 0);
        // Holistic: zero binary structural joins.
        assert_eq!(ctx.counters().structural_joins, 0);
    }
}
