//! Extensible built-in function registry and streaming fold aggregates.
//!
//! Every built-in the evaluator dispatches lives in one static [`registry`]
//! of [`FnEntry`] rows: name, arity bounds, an eager implementation, and —
//! for the aggregates — a [`Fold`] constructor that gives the function a
//! *streaming* physical form. The streaming pipeline feeds a fold one row's
//! items at a time ([`crate::physical::fold_execute`]) instead of
//! materializing the aggregate's whole input sequence; the eager path
//! constructs the same fold, pushes the full argument once and finishes it,
//! so both evaluation modes share one semantics by construction.
//!
//! **Error discipline.** [`Fold::push`] is infallible: a fold that observes
//! a type error (sum over a non-number, min/max over mixed types) stores it
//! and reports itself saturated, and the driver keeps draining rows so
//! per-row evaluation effects and governor accounting stay identical to the
//! eager path. [`Fold::finish`] surfaces the stored error — byte-identical
//! in both modes, which the 12-config differential oracle depends on.

use crate::context::{ExecContext, Val, XqError};
use crate::eval::{Evaluator, Scope};
use crate::naive;
use crate::physical::EvalError;
use std::cmp::Ordering;
use xqp_algebra::Item;
use xqp_xml::Atomic;

/// Hidden binding carrying the 1-based position of the innermost `for`
/// binding in scope. The `#` prefix is unreachable from query syntax.
pub const FOCUS_POS: &str = "#pos";
/// Hidden binding carrying the size of the innermost `for` sequence.
pub const FOCUS_LAST: &str = "#last";

/// Eager implementation of one built-in: fully evaluated arguments in, one
/// result sequence out. The scope is threaded for the focus functions
/// (`position()`/`last()`), which read hidden bindings rather than
/// arguments.
pub type FnEval = fn(&Evaluator<'_, '_>, &Scope<'_>, &[Val]) -> Result<Val, XqError>;

/// One registered built-in.
pub struct FnEntry {
    /// Surface name, as written in queries.
    pub name: &'static str,
    /// Minimum argument count.
    pub min_args: usize,
    /// Maximum argument count; `None` means variadic.
    pub max_args: Option<usize>,
    /// Streaming-capable: a constructor for the function's fold operator.
    /// `Some` marks the aggregates whose sole-FLWOR-argument calls lower to
    /// [`crate::physical::fold_execute`] instead of materializing.
    pub fold: Option<fn() -> Box<dyn Fold>>,
    /// The eager implementation.
    pub eval: FnEval,
}

/// A streaming aggregate: consumes one row's items at a time.
pub trait Fold {
    /// Feed one row's items. Returns `false` once the fold is saturated
    /// (short-circuited or errored) and further input cannot change its
    /// outcome; the driver then stops feeding it but keeps draining rows.
    /// Must not fail — observed errors are stored and surfaced by
    /// [`Fold::finish`], keeping streaming errors identical to eager ones.
    fn push(&mut self, ctx: &ExecContext<'_>, items: &Val) -> bool;
    /// Produce the aggregate value, or the first stored error.
    fn finish(self: Box<Self>, ctx: &ExecContext<'_>) -> Result<Val, XqError>;
}

/// The full registry, in stable order (conformance tests iterate it).
pub fn registry() -> &'static [FnEntry] {
    REGISTRY
}

/// Look up a built-in by surface name.
pub fn lookup(name: &str) -> Option<&'static FnEntry> {
    REGISTRY.iter().find(|e| e.name == name)
}

/// Enforce an entry's arity bounds against an actual argument count.
pub fn check_arity(entry: &FnEntry, given: usize) -> Result<(), XqError> {
    let ok = given >= entry.min_args && entry.max_args.is_none_or(|m| given <= m);
    if ok {
        return Ok(());
    }
    let expected = match entry.max_args {
        Some(m) if m == entry.min_args => format!("exactly {m}"),
        Some(m) => format!("between {} and {m}", entry.min_args),
        None => format!("at least {}", entry.min_args),
    };
    Err(XqError::new(format!(
        "wrong number of arguments to {}(): expected {expected}, got {given}",
        entry.name
    )))
}

static REGISTRY: &[FnEntry] = &[
    FnEntry { name: "count", min_args: 1, max_args: Some(1), fold: Some(mk_count), eval: fn_count },
    FnEntry { name: "sum", min_args: 1, max_args: Some(1), fold: Some(mk_sum), eval: fn_sum },
    FnEntry { name: "avg", min_args: 1, max_args: Some(1), fold: Some(mk_avg), eval: fn_avg },
    FnEntry { name: "min", min_args: 1, max_args: Some(1), fold: Some(mk_min), eval: fn_min },
    FnEntry { name: "max", min_args: 1, max_args: Some(1), fold: Some(mk_max), eval: fn_max },
    FnEntry {
        name: "exists",
        min_args: 1,
        max_args: Some(1),
        fold: Some(mk_exists),
        eval: fn_exists,
    },
    FnEntry { name: "empty", min_args: 1, max_args: Some(1), fold: Some(mk_empty), eval: fn_empty },
    FnEntry { name: "boolean", min_args: 1, max_args: Some(1), fold: None, eval: fn_boolean },
    FnEntry { name: "not", min_args: 1, max_args: Some(1), fold: None, eval: fn_not },
    FnEntry { name: "string", min_args: 1, max_args: Some(1), fold: None, eval: fn_string },
    FnEntry { name: "number", min_args: 1, max_args: Some(1), fold: None, eval: fn_number },
    FnEntry { name: "data", min_args: 1, max_args: Some(1), fold: None, eval: fn_data },
    FnEntry { name: "concat", min_args: 2, max_args: None, fold: None, eval: fn_concat },
    FnEntry {
        name: "string-join",
        min_args: 2,
        max_args: Some(2),
        fold: None,
        eval: fn_string_join,
    },
    FnEntry { name: "contains", min_args: 2, max_args: Some(2), fold: None, eval: fn_contains },
    FnEntry {
        name: "starts-with",
        min_args: 2,
        max_args: Some(2),
        fold: None,
        eval: fn_starts_with,
    },
    FnEntry { name: "ends-with", min_args: 2, max_args: Some(2), fold: None, eval: fn_ends_with },
    FnEntry {
        name: "string-length",
        min_args: 1,
        max_args: Some(1),
        fold: None,
        eval: fn_string_length,
    },
    FnEntry {
        name: "normalize-space",
        min_args: 1,
        max_args: Some(1),
        fold: None,
        eval: fn_normalize_space,
    },
    FnEntry { name: "substring", min_args: 2, max_args: Some(3), fold: None, eval: fn_substring },
    FnEntry { name: "name", min_args: 1, max_args: Some(1), fold: None, eval: fn_name },
    FnEntry { name: "local-name", min_args: 1, max_args: Some(1), fold: None, eval: fn_local_name },
    FnEntry {
        name: "distinct-values",
        min_args: 1,
        max_args: Some(1),
        fold: None,
        eval: fn_distinct_values,
    },
    FnEntry { name: "round", min_args: 1, max_args: Some(1), fold: None, eval: fn_round },
    FnEntry { name: "floor", min_args: 1, max_args: Some(1), fold: None, eval: fn_floor },
    FnEntry { name: "ceiling", min_args: 1, max_args: Some(1), fold: None, eval: fn_ceiling },
    FnEntry { name: "abs", min_args: 1, max_args: Some(1), fold: None, eval: fn_abs },
    FnEntry { name: "position", min_args: 0, max_args: Some(0), fold: None, eval: fn_position },
    FnEntry { name: "last", min_args: 0, max_args: Some(0), fold: None, eval: fn_last },
];

// ---- folds -----------------------------------------------------------------

fn mk_count() -> Box<dyn Fold> {
    Box::new(CountFold { n: 0 })
}
fn mk_sum() -> Box<dyn Fold> {
    Box::new(SumFold { acc: NumAcc::Int(0), err: None })
}
fn mk_avg() -> Box<dyn Fold> {
    Box::new(AvgFold { total: 0.0, n: 0, err: None })
}
fn mk_min() -> Box<dyn Fold> {
    Box::new(MinMaxFold { min: true, best: None, err: None })
}
fn mk_max() -> Box<dyn Fold> {
    Box::new(MinMaxFold { min: false, best: None, err: None })
}
fn mk_exists() -> Box<dyn Fold> {
    Box::new(AnyFold { negate: false, seen: false })
}
fn mk_empty() -> Box<dyn Fold> {
    Box::new(AnyFold { negate: true, seen: false })
}

fn atom_val(a: Atomic) -> Val {
    vec![Item::Atom(a)]
}

struct CountFold {
    n: i64,
}

impl Fold for CountFold {
    fn push(&mut self, _ctx: &ExecContext<'_>, items: &Val) -> bool {
        self.n += items.len() as i64;
        true
    }
    fn finish(self: Box<Self>, _ctx: &ExecContext<'_>) -> Result<Val, XqError> {
        Ok(atom_val(Atomic::Integer(self.n)))
    }
}

/// The `sum()` accumulator: exact `i64` while every atom is an integer and
/// no addition overflows, explicitly promoted to `f64` otherwise. This is
/// the `sum()` precision bugfix — the old accumulator was always `f64`, so
/// integer sums beyond 2^53 silently lost precision and the final
/// `total as i64` truncated.
enum NumAcc {
    /// All-integer so far, exact.
    Int(i64),
    /// Promoted: a non-integer atom appeared or an addition overflowed.
    Dbl(f64),
}

impl NumAcc {
    fn add(&mut self, a: &Atomic, n: f64) {
        match (&mut *self, a) {
            (NumAcc::Int(t), Atomic::Integer(i)) => match t.checked_add(*i) {
                Some(s) => *t = s,
                None => *self = NumAcc::Dbl(*t as f64 + *i as f64),
            },
            (NumAcc::Int(t), _) => *self = NumAcc::Dbl(*t as f64 + n),
            (NumAcc::Dbl(d), _) => *d += n,
        }
    }
}

struct SumFold {
    acc: NumAcc,
    err: Option<XqError>,
}

impl Fold for SumFold {
    fn push(&mut self, ctx: &ExecContext<'_>, items: &Val) -> bool {
        for a in ctx.atomize(items) {
            let Some(n) = a.as_number() else {
                self.err = Some(XqError::new(format!("sum over non-number `{a}`")));
                return false;
            };
            self.acc.add(&a, n);
        }
        true
    }
    fn finish(self: Box<Self>, _ctx: &ExecContext<'_>) -> Result<Val, XqError> {
        if let Some(e) = self.err {
            return Err(e);
        }
        Ok(atom_val(match self.acc {
            NumAcc::Int(t) => Atomic::Integer(t),
            NumAcc::Dbl(d) => Atomic::Double(d),
        }))
    }
}

struct AvgFold {
    total: f64,
    n: u64,
    err: Option<XqError>,
}

impl Fold for AvgFold {
    fn push(&mut self, ctx: &ExecContext<'_>, items: &Val) -> bool {
        for a in ctx.atomize(items) {
            let Some(n) = a.as_number() else {
                self.err = Some(XqError::new(format!("avg over non-number `{a}`")));
                return false;
            };
            self.total += n;
            self.n += 1;
        }
        true
    }
    fn finish(self: Box<Self>, _ctx: &ExecContext<'_>) -> Result<Val, XqError> {
        if let Some(e) = self.err {
            return Err(e);
        }
        if self.n == 0 {
            return Ok(Vec::new());
        }
        Ok(atom_val(Atomic::Double(self.total / self.n as f64)))
    }
}

/// The type-rank classes of [`Atomic::order_key_cmp`]: values in different
/// classes have no spec-defined order, so `min()`/`max()` across them is a
/// type error (the mixed-type bugfix) instead of a silent rank comparison.
fn type_rank(a: &Atomic) -> u8 {
    match a {
        Atomic::Boolean(_) => 0,
        Atomic::Integer(_) | Atomic::Double(_) => 1,
        Atomic::Str(_) => 2,
    }
}

struct MinMaxFold {
    min: bool,
    best: Option<Atomic>,
    err: Option<XqError>,
}

impl Fold for MinMaxFold {
    fn push(&mut self, ctx: &ExecContext<'_>, items: &Val) -> bool {
        for a in ctx.atomize(items) {
            match &self.best {
                None => self.best = Some(a),
                Some(b) => {
                    if type_rank(&a) != type_rank(b) {
                        self.err = Some(EvalError::MixedTypeAggregate.into());
                        return false;
                    }
                    // Ties keep the first atom for min and take the latest
                    // for max, matching a stable ascending sort read from
                    // its first/last element.
                    let take = match a.order_key_cmp(b) {
                        Ordering::Less => self.min,
                        Ordering::Greater => !self.min,
                        Ordering::Equal => !self.min,
                    };
                    if take {
                        self.best = Some(a);
                    }
                }
            }
        }
        true
    }
    fn finish(self: Box<Self>, _ctx: &ExecContext<'_>) -> Result<Val, XqError> {
        if let Some(e) = self.err {
            return Err(e);
        }
        Ok(self.best.map(atom_val).unwrap_or_default())
    }
}

/// `exists()` (and, negated, `empty()`): saturates on the first item.
struct AnyFold {
    negate: bool,
    seen: bool,
}

impl Fold for AnyFold {
    fn push(&mut self, _ctx: &ExecContext<'_>, items: &Val) -> bool {
        if !items.is_empty() {
            self.seen = true;
            return false;
        }
        true
    }
    fn finish(self: Box<Self>, _ctx: &ExecContext<'_>) -> Result<Val, XqError> {
        Ok(atom_val(Atomic::Boolean(self.seen != self.negate)))
    }
}

/// Run a fold eagerly over one fully-evaluated argument — the shared
/// implementation behind every aggregate's [`FnEntry::eval`].
fn fold_eager(
    mk: fn() -> Box<dyn Fold>,
    ev: &Evaluator<'_, '_>,
    arg: &Val,
) -> Result<Val, XqError> {
    let mut f = mk();
    f.push(ev.ctx, arg);
    f.finish(ev.ctx)
}

// ---- eager implementations -------------------------------------------------

/// First atomized item as a string; empty string for an empty sequence.
/// Deliberately permissive (first item) — only `string()`/`number()` have
/// the strict single-item contract, via [`single_atom`].
fn str_arg(ev: &Evaluator<'_, '_>, arg: &Val) -> String {
    ev.ctx.atomize(arg).first().map(|a| a.as_string()).unwrap_or_default()
}

/// Atomize an argument that must hold at most one item — the
/// `string()`/`number()` sequence bugfix: more than one item is a type
/// error, not a silent first-item pick.
fn single_atom(ev: &Evaluator<'_, '_>, name: &str, arg: &Val) -> Result<Option<Atomic>, XqError> {
    let atoms = ev.ctx.atomize(arg);
    if atoms.len() > 1 {
        return Err(XqError::new(format!(
            "type error: {name}() applied to a sequence of {} items",
            atoms.len()
        )));
    }
    Ok(atoms.into_iter().next())
}

fn fn_count(ev: &Evaluator<'_, '_>, _s: &Scope<'_>, args: &[Val]) -> Result<Val, XqError> {
    fold_eager(mk_count, ev, &args[0])
}

fn fn_sum(ev: &Evaluator<'_, '_>, _s: &Scope<'_>, args: &[Val]) -> Result<Val, XqError> {
    fold_eager(mk_sum, ev, &args[0])
}

fn fn_avg(ev: &Evaluator<'_, '_>, _s: &Scope<'_>, args: &[Val]) -> Result<Val, XqError> {
    fold_eager(mk_avg, ev, &args[0])
}

fn fn_min(ev: &Evaluator<'_, '_>, _s: &Scope<'_>, args: &[Val]) -> Result<Val, XqError> {
    fold_eager(mk_min, ev, &args[0])
}

fn fn_max(ev: &Evaluator<'_, '_>, _s: &Scope<'_>, args: &[Val]) -> Result<Val, XqError> {
    fold_eager(mk_max, ev, &args[0])
}

fn fn_exists(ev: &Evaluator<'_, '_>, _s: &Scope<'_>, args: &[Val]) -> Result<Val, XqError> {
    fold_eager(mk_exists, ev, &args[0])
}

fn fn_empty(ev: &Evaluator<'_, '_>, _s: &Scope<'_>, args: &[Val]) -> Result<Val, XqError> {
    fold_eager(mk_empty, ev, &args[0])
}

fn fn_boolean(_ev: &Evaluator<'_, '_>, _s: &Scope<'_>, args: &[Val]) -> Result<Val, XqError> {
    Ok(atom_val(Atomic::Boolean(naive::ebv(&args[0]))))
}

fn fn_not(_ev: &Evaluator<'_, '_>, _s: &Scope<'_>, args: &[Val]) -> Result<Val, XqError> {
    Ok(atom_val(Atomic::Boolean(!naive::ebv(&args[0]))))
}

fn fn_string(ev: &Evaluator<'_, '_>, _s: &Scope<'_>, args: &[Val]) -> Result<Val, XqError> {
    let s = single_atom(ev, "string", &args[0])?.map(|a| a.as_string()).unwrap_or_default();
    Ok(atom_val(Atomic::Str(s)))
}

fn fn_number(ev: &Evaluator<'_, '_>, _s: &Scope<'_>, args: &[Val]) -> Result<Val, XqError> {
    let n = single_atom(ev, "number", &args[0])?.and_then(|a| a.as_number()).unwrap_or(f64::NAN);
    Ok(atom_val(Atomic::Double(n)))
}

fn fn_data(ev: &Evaluator<'_, '_>, _s: &Scope<'_>, args: &[Val]) -> Result<Val, XqError> {
    Ok(ev.ctx.atomize(&args[0]).into_iter().map(Item::Atom).collect())
}

fn fn_concat(ev: &Evaluator<'_, '_>, _s: &Scope<'_>, args: &[Val]) -> Result<Val, XqError> {
    let mut s = String::new();
    for v in args {
        for a in ev.ctx.atomize(v) {
            s.push_str(&a.as_string());
        }
    }
    Ok(atom_val(Atomic::Str(s)))
}

fn fn_string_join(ev: &Evaluator<'_, '_>, _s: &Scope<'_>, args: &[Val]) -> Result<Val, XqError> {
    let sep = str_arg(ev, &args[1]);
    let parts: Vec<String> = ev.ctx.atomize(&args[0]).iter().map(|a| a.as_string()).collect();
    Ok(atom_val(Atomic::Str(parts.join(&sep))))
}

fn fn_contains(ev: &Evaluator<'_, '_>, _s: &Scope<'_>, args: &[Val]) -> Result<Val, XqError> {
    Ok(atom_val(Atomic::Boolean(str_arg(ev, &args[0]).contains(&str_arg(ev, &args[1])))))
}

fn fn_starts_with(ev: &Evaluator<'_, '_>, _s: &Scope<'_>, args: &[Val]) -> Result<Val, XqError> {
    Ok(atom_val(Atomic::Boolean(str_arg(ev, &args[0]).starts_with(&str_arg(ev, &args[1])))))
}

fn fn_ends_with(ev: &Evaluator<'_, '_>, _s: &Scope<'_>, args: &[Val]) -> Result<Val, XqError> {
    Ok(atom_val(Atomic::Boolean(str_arg(ev, &args[0]).ends_with(&str_arg(ev, &args[1])))))
}

fn fn_string_length(ev: &Evaluator<'_, '_>, _s: &Scope<'_>, args: &[Val]) -> Result<Val, XqError> {
    Ok(atom_val(Atomic::Integer(str_arg(ev, &args[0]).chars().count() as i64)))
}

fn fn_normalize_space(
    ev: &Evaluator<'_, '_>,
    _s: &Scope<'_>,
    args: &[Val],
) -> Result<Val, XqError> {
    let s = str_arg(ev, &args[0]);
    Ok(atom_val(Atomic::Str(s.split_whitespace().collect::<Vec<_>>().join(" "))))
}

fn fn_substring(ev: &Evaluator<'_, '_>, _s: &Scope<'_>, args: &[Val]) -> Result<Val, XqError> {
    let s = str_arg(ev, &args[0]);
    let chars: Vec<char> = s.chars().collect();
    let num = |v: &Val, default: f64| -> i64 {
        ev.ctx.atomize(v).first().and_then(Atomic::as_number).unwrap_or(default).round() as i64
    };
    let start = num(&args[1], 1.0);
    let len = match args.get(2) {
        Some(v) => num(v, 0.0),
        None => chars.len() as i64,
    };
    let from = (start - 1).max(0) as usize;
    let to = ((start - 1 + len).max(0) as usize).min(chars.len());
    let out: String = chars.get(from..to.max(from)).unwrap_or(&[]).iter().collect();
    Ok(atom_val(Atomic::Str(out)))
}

fn node_name(ev: &Evaluator<'_, '_>, args: &[Val]) -> String {
    args[0].first().and_then(|i| i.as_node()).and_then(|&n| ev.ctx.name_of(n)).unwrap_or_default()
}

fn fn_name(ev: &Evaluator<'_, '_>, _s: &Scope<'_>, args: &[Val]) -> Result<Val, XqError> {
    Ok(atom_val(Atomic::Str(node_name(ev, args))))
}

fn fn_local_name(ev: &Evaluator<'_, '_>, _s: &Scope<'_>, args: &[Val]) -> Result<Val, XqError> {
    let n = node_name(ev, args);
    Ok(atom_val(Atomic::Str(n.rsplit(':').next().unwrap_or("").to_string())))
}

fn fn_distinct_values(
    ev: &Evaluator<'_, '_>,
    _s: &Scope<'_>,
    args: &[Val],
) -> Result<Val, XqError> {
    let mut atoms = ev.ctx.atomize(&args[0]);
    atoms.sort_by(|a, b| a.order_key_cmp(b));
    atoms.dedup_by(|a, b| a.order_key_cmp(b) == Ordering::Equal);
    Ok(atoms.into_iter().map(Item::Atom).collect())
}

fn rounding(
    ev: &Evaluator<'_, '_>,
    name: &str,
    args: &[Val],
    f: fn(f64) -> f64,
) -> Result<Val, XqError> {
    let Some(a) = ev.ctx.atomize(&args[0]).into_iter().next() else {
        return Ok(Vec::new());
    };
    let n = a.as_number().ok_or_else(|| XqError::new(format!("{name} of non-number `{a}`")))?;
    let r = f(n);
    Ok(atom_val(if matches!(a, Atomic::Integer(_)) {
        Atomic::Integer(r as i64)
    } else {
        Atomic::Double(r)
    }))
}

fn fn_round(ev: &Evaluator<'_, '_>, _s: &Scope<'_>, args: &[Val]) -> Result<Val, XqError> {
    rounding(ev, "round", args, f64::round)
}

fn fn_floor(ev: &Evaluator<'_, '_>, _s: &Scope<'_>, args: &[Val]) -> Result<Val, XqError> {
    rounding(ev, "floor", args, f64::floor)
}

fn fn_ceiling(ev: &Evaluator<'_, '_>, _s: &Scope<'_>, args: &[Val]) -> Result<Val, XqError> {
    rounding(ev, "ceiling", args, f64::ceil)
}

fn fn_abs(ev: &Evaluator<'_, '_>, _s: &Scope<'_>, args: &[Val]) -> Result<Val, XqError> {
    rounding(ev, "abs", args, f64::abs)
}

fn focus_lookup(scope: &Scope<'_>, binding: &str, name: &str) -> Result<Val, XqError> {
    scope
        .lookup(binding)
        .cloned()
        .ok_or_else(|| XqError::new(format!("{name}() used outside a for clause")))
}

fn fn_position(_ev: &Evaluator<'_, '_>, s: &Scope<'_>, _args: &[Val]) -> Result<Val, XqError> {
    focus_lookup(s, FOCUS_POS, "position")
}

fn fn_last(_ev: &Evaluator<'_, '_>, s: &Scope<'_>, _args: &[Val]) -> Result<Val, XqError> {
    focus_lookup(s, FOCUS_LAST, "last")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_looked_up() {
        let mut names: Vec<&str> = registry().iter().map(|e| e.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate registry entries");
        assert!(lookup("count").is_some());
        assert!(lookup("frobnicate").is_none());
    }

    #[test]
    fn arity_errors_render_each_shape() {
        let exact = lookup("count").unwrap();
        let err = check_arity(exact, 0).unwrap_err();
        assert!(err.0.contains("expected exactly 1, got 0"), "{err:?}");
        let variadic = lookup("concat").unwrap();
        let err = check_arity(variadic, 1).unwrap_err();
        assert!(err.0.contains("expected at least 2, got 1"), "{err:?}");
        let range = lookup("substring").unwrap();
        let err = check_arity(range, 4).unwrap_err();
        assert!(err.0.contains("expected between 2 and 3, got 4"), "{err:?}");
        assert!(check_arity(range, 2).is_ok());
        assert!(check_arity(range, 3).is_ok());
    }

    #[test]
    fn sum_accumulator_promotes_on_overflow() {
        let mut acc = NumAcc::Int(i64::MAX);
        acc.add(&Atomic::Integer(1), 1.0);
        assert!(matches!(acc, NumAcc::Dbl(_)));
        let mut acc = NumAcc::Int(5);
        acc.add(&Atomic::Integer(7), 7.0);
        assert!(matches!(acc, NumAcc::Int(12)));
        // A non-Integer atom promotes even when its value is integral.
        let mut acc = NumAcc::Int(5);
        acc.add(&Atomic::Double(2.0), 2.0);
        assert!(matches!(acc, NumAcc::Dbl(d) if d == 7.0));
    }

    #[test]
    fn aggregates_are_streaming_capable() {
        for name in ["count", "sum", "avg", "min", "max", "exists", "empty"] {
            assert!(lookup(name).unwrap().fold.is_some(), "{name} should carry a fold");
        }
        for name in ["string", "concat", "position"] {
            assert!(lookup(name).unwrap().fold.is_none(), "{name} should not carry a fold");
        }
    }
}
