//! Streaming NoK evaluation — §4.2's observation made executable.
//!
//! "Pre-order of the tree nodes coincides with the streaming XML element
//! arrival order. So the path query evaluation algorithm can also be used in
//! the streaming context." This module runs the same stack discipline as
//! [`crate::nok`] directly over parse [`Event`]s — no document is ever
//! materialized; node identities are the pre-order ranks the succinct store
//! would assign, so results are bit-compatible with stored evaluation.
//!
//! Chain validity (a floating match needs proper ancestors) cannot use
//! random access here; instead each confirmed chain-vertex match records the
//! ranks of its candidate chain parents from the live stack, and a final
//! resolution pass intersects them with the parents' own confirmations.

use std::collections::{HashMap, HashSet};
use xqp_storage::SNodeId;
use xqp_xml::{Atomic, Event};
use xqp_xpath::{NokPartition, PRel, PatternGraph, VertexKind};

/// Match a single-output pattern over an event stream; returns the
/// pre-order ranks (succinct-store node ids) of the output matches.
pub fn match_stream<'e>(
    events: impl IntoIterator<Item = &'e Event>,
    g: &PatternGraph,
) -> Vec<SNodeId> {
    let outputs = g.outputs();
    assert_eq!(outputs.len(), 1, "streaming evaluation needs one output vertex");
    if g.unsatisfiable {
        return Vec::new();
    }
    let mut m = Matcher::new(g);
    for ev in events {
        m.push_event(ev);
    }
    m.finish()
}

/// The root-to-output vertex chain, root first.
fn chain_of(g: &PatternGraph, output: usize) -> Vec<usize> {
    let mut chain = vec![output];
    let mut cur = output;
    while let Some(arc) = g.incoming(cur) {
        chain.push(arc.from);
        cur = arc.from;
    }
    chain.reverse();
    chain
}

struct Tables {
    kids: Vec<Vec<usize>>,
    mandatory: Vec<Vec<usize>>,
    desc_targets: Vec<Vec<usize>>,
    floating: Vec<usize>,
    /// position in the output chain per vertex (None if off-chain).
    chain_pos: Vec<Option<usize>>,
    chain: Vec<usize>,
}

struct Frame {
    rank: u32,
    /// Vertices this node locally matches.
    locally: Vec<usize>,
    /// Snapshots of desc-target confirmation counts per locally matched
    /// vertex (aligned with `locally`).
    snapshots: Vec<Vec<usize>>,
    /// Pattern children satisfied by this node's children.
    child_sat: HashSet<usize>,
    /// Accumulated descendant text, kept only when some locally matched
    /// element vertex has value constraints.
    text: Option<String>,
    /// Candidate vertices for this node's children (cached).
    child_candidates: Vec<usize>,
}

struct Matcher<'g> {
    g: &'g PatternGraph,
    t: Tables,
    stack: Vec<Frame>,
    /// confirmed[v]: ranks (ascending by pop close ordering… resolved later).
    confirmed: Vec<Vec<u32>>,
    /// For chain vertices: rank → candidate chain-parent ranks.
    chain_parents: HashMap<(usize, u32), Vec<u32>>,
    next_rank: u32,
    root_child_sat: HashSet<usize>,
    root_snapshots: Vec<usize>,
    output: usize,
}

impl<'g> Matcher<'g> {
    fn new(g: &'g PatternGraph) -> Self {
        let n = g.vertices.len();
        let mut kids = vec![Vec::new(); n];
        let mut mandatory = vec![Vec::new(); n];
        let mut desc_targets = vec![Vec::new(); n];
        for arc in &g.arcs {
            match arc.rel {
                PRel::Child => {
                    kids[arc.from].push(arc.to);
                    if !g.vertices[arc.to].optional {
                        mandatory[arc.from].push(arc.to);
                    }
                }
                PRel::Descendant => {
                    if !g.vertices[arc.to].optional {
                        desc_targets[arc.from].push(arc.to);
                    }
                }
            }
        }
        let parts = NokPartition::partition(g);
        let floating: Vec<usize> = parts.patterns.iter().skip(1).map(|p| p.root).collect();
        let output = g.outputs()[0];
        let chain = chain_of(g, output);
        let mut chain_pos = vec![None; n];
        for (i, &v) in chain.iter().enumerate() {
            chain_pos[v] = Some(i);
        }
        let root_snapshots = vec![0; desc_targets[g.root()].len()];
        Matcher {
            g,
            t: Tables { kids, mandatory, desc_targets, floating, chain_pos, chain },
            stack: Vec::new(),
            confirmed: vec![Vec::new(); n],
            chain_parents: HashMap::new(),
            next_rank: 0,
            root_child_sat: HashSet::new(),
            root_snapshots,
            output,
        }
    }

    fn local_match(&self, v: usize, kind: VertexKind, name: &str, value: Option<&str>) -> bool {
        let vert = &self.g.vertices[v];
        if vert.kind != kind {
            return false;
        }
        if kind != VertexKind::Text && !vert.label_matches(name) {
            return false;
        }
        if !vert.constraints.is_empty() {
            // Element constraints (value `None`) defer to pop (subtree text).
            if let Some(val) = value {
                let atom = Atomic::Str(val.to_string());
                if !vert.constraints.iter().all(|c| c.matches(&atom)) {
                    return false;
                }
            }
        }
        true
    }

    fn current_candidates(&self) -> Vec<usize> {
        let mut c: Vec<usize> = match self.stack.last() {
            Some(f) => f.child_candidates.clone(),
            None => self.t.kids[self.g.root()].clone(),
        };
        for &f in &self.t.floating {
            if !c.contains(&f) {
                c.push(f);
            }
        }
        c
    }

    /// Record candidate chain parents for a chain vertex matched at `rank`.
    fn record_chain_parents(&mut self, v: usize, rank: u32) {
        let Some(pos) = self.t.chain_pos[v] else { return };
        if pos == 0 {
            return; // the root
        }
        let parent_vertex = self.t.chain[pos - 1];
        let rel = self.g.incoming(v).expect("chain vertex").rel;
        let mut parents = Vec::new();
        if parent_vertex == self.g.root() {
            // Virtual root: child arc ⇒ must be a top-level node (empty
            // stack below); descendant ⇒ always fine. Encode as u32::MAX.
            let ok = match rel {
                PRel::Child => self.stack.is_empty(),
                PRel::Descendant => true,
            };
            if ok {
                parents.push(u32::MAX);
            }
        } else {
            match rel {
                PRel::Child => {
                    if let Some(f) = self.stack.last() {
                        if f.locally.contains(&parent_vertex) {
                            parents.push(f.rank);
                        }
                    }
                }
                PRel::Descendant => {
                    for f in &self.stack {
                        if f.locally.contains(&parent_vertex) {
                            parents.push(f.rank);
                        }
                    }
                }
            }
        }
        self.chain_parents.insert((v, rank), parents);
    }

    /// A leaf-ish node (attribute or text) arrives and closes immediately.
    fn leaf_node(&mut self, kind: VertexKind, name: &str, value: &str) {
        let rank = self.next_rank;
        self.next_rank += 1;
        let candidates = self.current_candidates();
        let mut satisfied = Vec::new();
        for v in candidates {
            // Leaves satisfy only childless pattern vertices.
            if self.t.kids[v].is_empty()
                && self.t.desc_targets[v].is_empty()
                && self.local_match(v, kind, name, Some(value))
            {
                satisfied.push(v);
            }
        }
        for v in satisfied {
            // Stack still shows this leaf's ancestors: record before confirm.
            self.record_chain_parents(v, rank);
            self.confirmed[v].push(rank);
            match self.stack.last_mut() {
                Some(f) => {
                    f.child_sat.insert(v);
                }
                None => {
                    self.root_child_sat.insert(v);
                }
            }
        }
        // Text accumulates into every open frame that tracks it.
        if kind == VertexKind::Text {
            for f in self.stack.iter_mut() {
                if let Some(buf) = &mut f.text {
                    buf.push_str(value);
                }
            }
        }
    }

    fn open_element(&mut self, name: &str) {
        let rank = self.next_rank;
        self.next_rank += 1;
        let candidates = self.current_candidates();
        let locally: Vec<usize> = candidates
            .into_iter()
            .filter(|&v| self.local_match(v, VertexKind::Element, name, None))
            .collect();
        let snapshots = locally
            .iter()
            .map(|&v| self.t.desc_targets[v].iter().map(|&tgt| self.confirmed[tgt].len()).collect())
            .collect();
        let needs_text = locally.iter().any(|&v| !self.g.vertices[v].constraints.is_empty());
        let mut child_candidates = Vec::new();
        for &v in &locally {
            child_candidates.extend_from_slice(&self.t.kids[v]);
        }
        // Chain parents must be recorded at open (ancestors still on stack).
        for &v in &locally {
            self.record_chain_parents(v, rank);
        }
        self.stack.push(Frame {
            rank,
            locally,
            snapshots,
            child_sat: HashSet::new(),
            text: needs_text.then(String::new),
            child_candidates,
        });
    }

    fn close_element(&mut self) {
        let frame = self.stack.pop().expect("balanced events");
        let value = frame.text.map(Atomic::Str);
        let mut satisfied = Vec::new();
        for (i, &v) in frame.locally.iter().enumerate() {
            let vert = &self.g.vertices[v];
            if let Some(val) = &value {
                if !vert.constraints.iter().all(|c| c.matches(val)) {
                    continue;
                }
            }
            let kids_ok = self.t.mandatory[v].iter().all(|c| frame.child_sat.contains(c));
            let desc_ok = self.t.desc_targets[v]
                .iter()
                .zip(&frame.snapshots[i])
                .all(|(&tgt, &snap)| self.confirmed[tgt].len() > snap);
            if kids_ok && desc_ok {
                satisfied.push(v);
            }
        }
        // No upward text propagation needed: text events already accumulate
        // into every open buffered frame at arrival time.
        for v in satisfied {
            self.confirmed[v].push(frame.rank);
            match self.stack.last_mut() {
                Some(f) => {
                    f.child_sat.insert(v);
                }
                None => {
                    self.root_child_sat.insert(v);
                }
            }
        }
    }

    fn push_event(&mut self, ev: &Event) {
        match ev {
            Event::StartElement { name, attributes, self_closing } => {
                self.open_element(&name.as_lexical());
                for a in attributes {
                    self.leaf_node(VertexKind::Attribute, &a.name.as_lexical(), &a.value);
                }
                if *self_closing {
                    self.close_element();
                }
            }
            Event::EndElement { .. } => self.close_element(),
            Event::Text(t) => self.leaf_node(VertexKind::Text, "#text", t),
            Event::Comment(_) | Event::ProcessingInstruction { .. } => {}
        }
    }

    fn finish(self) -> Vec<SNodeId> {
        // Root satisfaction.
        let root = self.g.root();
        let root_ok = self.t.mandatory[root].iter().all(|c| self.root_child_sat.contains(c))
            && self.t.desc_targets[root]
                .iter()
                .zip(&self.root_snapshots)
                .all(|(&tgt, &snap)| self.confirmed[tgt].len() > snap);
        if !root_ok {
            return Vec::new();
        }
        // Chain resolution: valid sets flow down the chain. The virtual root
        // is encoded as rank u32::MAX.
        let mut valid: HashSet<u32> = [u32::MAX].into_iter().collect();
        for &v in self.t.chain.iter().skip(1) {
            let confirmed: HashSet<u32> = self.confirmed[v].iter().copied().collect();
            let mut next = HashSet::new();
            for &rank in &self.confirmed[v] {
                if let Some(parents) = self.chain_parents.get(&(v, rank)) {
                    if parents.iter().any(|p| valid.contains(p)) && confirmed.contains(&rank) {
                        next.insert(rank);
                    }
                }
            }
            valid = next;
            if valid.is_empty() {
                return Vec::new();
            }
        }
        let _ = self.output;
        let mut out: Vec<SNodeId> = valid.into_iter().map(SNodeId).collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExecContext;
    use crate::nok;
    use xqp_storage::SuccinctDoc;
    use xqp_xml::Parser;
    use xqp_xpath::parse_path;

    const BIB: &str = "<bib>\
        <book year=\"1994\"><title>TCP</title><author>Stevens</author><price>65</price></book>\
        <book year=\"2000\"><title>Data</title><author>Abiteboul</author><author>Buneman</author><price>39</price></book>\
        <article><title>X</title><keyword>xml</keyword></article>\
        </bib>";

    fn stream_eval(xml: &str, path: &str) -> Vec<SNodeId> {
        let events: Vec<Event> = Parser::new(xml).collect::<Result<_, _>>().unwrap();
        let g = PatternGraph::from_path(&parse_path(path).unwrap()).unwrap();
        match_stream(events.iter(), &g)
    }

    fn stored_eval(xml: &str, path: &str) -> Vec<SNodeId> {
        let d = SuccinctDoc::parse(xml).unwrap();
        let ctx = ExecContext::new(&d);
        let g = PatternGraph::from_path(&parse_path(path).unwrap()).unwrap();
        nok::eval_single_output(&ctx, &g, None)
    }

    fn assert_same(xml: &str, path: &str) {
        assert_eq!(stream_eval(xml, path), stored_eval(xml, path), "path `{path}`");
    }

    #[test]
    fn streaming_equals_stored_on_nok_queries() {
        for p in [
            "/bib/book/title",
            "/bib/book[author]/title",
            "/bib/book/@year",
            "/bib/book[@year = 1994]/title",
            "/bib/article/keyword",
        ] {
            assert_same(BIB, p);
        }
    }

    #[test]
    fn streaming_equals_stored_on_descendant_queries() {
        for p in [
            "//title",
            "//book/title",
            "/bib//author",
            "//book[price > 50]/title",
            "//*[keyword]/title",
        ] {
            assert_same(BIB, p);
        }
    }

    #[test]
    fn streaming_handles_recursion() {
        let xml = "<a><a><a><b/></a></a><b/></a>";
        for p in ["//a//a", "//a//b", "//a[b]", "//a/a"] {
            assert_same(xml, p);
        }
    }

    #[test]
    fn element_value_constraints_use_subtree_text() {
        let xml = "<r><x><deep>42</deep></x><x><deep>7</deep></x></r>";
        assert_same(xml, "/r/x[deep = 42]");
        assert_same(xml, "//x[deep > 10]/deep");
    }

    #[test]
    fn text_vertex_matching() {
        assert_same(BIB, "//title/text()");
    }

    #[test]
    fn empty_results() {
        assert_same(BIB, "/bib/nothing");
        assert_same(BIB, "//book[editor]/title");
    }

    #[test]
    fn ranks_are_store_compatible() {
        // The streaming ranks must be usable as succinct-store node ids.
        let hits = stream_eval(BIB, "//author");
        let d = SuccinctDoc::parse(BIB).unwrap();
        for h in hits {
            assert_eq!(d.name(h), "author");
        }
    }
}
