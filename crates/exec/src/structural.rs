//! Binary structural joins — the join-based baseline (⋈s physically).
//!
//! The extended-relational and early native approaches evaluate a pattern by
//! one **structural join per arc** over region-encoded tag streams (Zhang et
//! al. SIGMOD'01; Al-Khalifa et al. ICDE'02 "stack-tree"). This module
//! implements the stack-tree merge as semi-joins and evaluates a
//! single-output pattern by a bottom-up + top-down semi-join sweep — linear
//! per join in the stream sizes, but paying one join *per arc*, which is the
//! overhead the paper's NoK approach avoids (§4.2, §5).
//!
//! Join-order selection over linear paths realizes rewrite R4 / experiment
//! E8: [`eval_linear_pairs`] materializes intermediate tuples (whose count
//! the order controls), [`eval_linear_ordered`] is the semi-join variant
//! (order-insensitive, used as an exactness oracle).

use crate::context::ExecContext;
use xqp_storage::{Interval, SNodeId};
use xqp_xpath::{PRel, PatternGraph, VertexKind};

/// Candidate intervals for a pattern vertex: its tag stream filtered by
/// kind and value constraints (σs + σv applied to the stream). When the
/// context carries a [`xqp_storage::ValueIndex`] and the vertex has an
/// equality constraint, the index is probed instead of scanning the stream.
pub fn candidates(ctx: &ExecContext<'_>, g: &PatternGraph, v: usize) -> Vec<Interval> {
    let vert = &g.vertices[v];
    let want_attr = vert.kind == VertexKind::Attribute;
    // Index probe: equality or numeric-range constraints over named
    // element/attribute tags.
    if let (Some(index), VertexKind::Element | VertexKind::Attribute) = (ctx.index, vert.kind) {
        if vert.label != "*" && !vert.constraints.is_empty() {
            if let Some(tag) = ctx.sdoc.tag_table().lookup(&vert.label) {
                if let Some(nodes) = index_probe(index, tag, &vert.constraints) {
                    let mut hits: Vec<Interval> = nodes
                        .into_iter()
                        .filter(|&n| ctx.sdoc.is_attribute(n) == want_attr)
                        .map(|n| {
                            let (start, end, level) = ctx.sdoc.interval(n);
                            Interval { start, end, level, node: n }
                        })
                        .collect();
                    ctx.consume_stream(hits.len() as u64);
                    // Remaining constraints still verify per hit.
                    if vert.constraints.len() > 1 {
                        hits.retain(|iv| {
                            let val = ctx.sdoc.typed_value(iv.node);
                            vert.constraints.iter().all(|c| c.matches(&val))
                        });
                    }
                    return hits;
                }
            }
        }
    }
    let mut out: Vec<Interval> = match vert.kind {
        VertexKind::Root => return Vec::new(),
        VertexKind::Text => {
            // Streams carry elements/attributes only; text candidates come
            // from a node scan.
            (0..ctx.sdoc.node_count() as u32)
                .map(SNodeId)
                .filter(|&n| ctx.sdoc.is_text(n))
                .map(|n| {
                    let (start, end, level) = ctx.sdoc.interval(n);
                    Interval { start, end, level, node: n }
                })
                .collect()
        }
        _ => {
            let streams = ctx.streams();
            if vert.label == "*" {
                let mut all: Vec<Interval> = ctx
                    .sdoc
                    .elements()
                    .map(|n| {
                        let (start, end, level) = ctx.sdoc.interval(n);
                        Interval { start, end, level, node: n }
                    })
                    .collect();
                all.sort_by_key(|iv| iv.start);
                all
            } else {
                streams
                    .stream_by_name(ctx.sdoc, &vert.label)
                    .iter()
                    .copied()
                    .filter(|iv| ctx.sdoc.is_attribute(iv.node) == want_attr)
                    .collect()
            }
        }
    };
    // Consumption is counted pre-filter: every interval was read and its
    // value inspected, whether or not the constraint kept it.
    ctx.consume_stream(out.len() as u64);
    if !vert.constraints.is_empty() {
        out.retain(|iv| {
            let val = ctx.sdoc.typed_value(iv.node);
            vert.constraints.iter().all(|c| c.matches(&val))
        });
    }
    out
}

/// Pick the most selective index-answerable constraint: equality first,
/// then a numeric range. Returns `None` when no constraint is probe-able.
fn index_probe(
    index: &xqp_storage::ValueIndex,
    tag: xqp_storage::TagId,
    constraints: &[xqp_xpath::ValueConstraint],
) -> Option<Vec<SNodeId>> {
    use std::ops::Bound;
    use xqp_xml::Atomic;
    use xqp_xpath::CmpOp;
    // Stored values atomize as untyped strings, so the semantics the probe
    // must reproduce depend on the literal's *declared* type (see
    // `Atomic::compare`): a declared number promotes the node value
    // (non-parseable ⇒ incomparable ⇒ false), while a string literal
    // compares lexicographically over every string value — including
    // numeric-looking ones and the empty string. Probing the numeric tree
    // for a numeric-looking *string* literal silently drops those; the
    // differential fuzzer caught exactly that (`//e[c < "5"]` over `<c/>`:
    // "" < "5" lexicographically, but "" is not in the numeric tree).
    if let Some(eq) =
        constraints.iter().find(|c| c.op == CmpOp::Eq && !matches!(c.literal, Atomic::Boolean(_)))
    {
        return Some(index.lookup_eq(tag, &eq.literal));
    }
    for c in constraints {
        match &c.literal {
            Atomic::Integer(_) | Atomic::Double(_) => {
                let v = c.literal.as_number().expect("declared number has a numeric view");
                let (lo, hi) = match c.op {
                    CmpOp::Gt => (Bound::Excluded(v), Bound::Unbounded),
                    CmpOp::Ge => (Bound::Included(v), Bound::Unbounded),
                    CmpOp::Lt => (Bound::Unbounded, Bound::Excluded(v)),
                    CmpOp::Le => (Bound::Unbounded, Bound::Included(v)),
                    _ => continue,
                };
                return Some(index.lookup_numeric_range(tag, lo, hi));
            }
            Atomic::Str(s) => {
                let (lo, hi) = match c.op {
                    CmpOp::Gt => (Bound::Excluded(s.as_str()), Bound::Unbounded),
                    CmpOp::Ge => (Bound::Included(s.as_str()), Bound::Unbounded),
                    CmpOp::Lt => (Bound::Unbounded, Bound::Excluded(s.as_str())),
                    CmpOp::Le => (Bound::Unbounded, Bound::Included(s.as_str())),
                    _ => continue,
                };
                return Some(index.lookup_string_range(tag, lo, hi));
            }
            Atomic::Boolean(_) => continue,
        }
    }
    None
}

/// How many descendant-side iterations may pass between governor polls in
/// the semi-join loops. The join functions return plain `Vec`s (their
/// signatures are shared with the parallel sweep workers), so a trip is
/// observed by bailing out early; the caller's next fallible governor check
/// raises the typed error.
const GOVERNOR_POLL_EVERY: u32 = 256;

fn rel_ok(a: &Interval, d: &Interval, rel: PRel) -> bool {
    match rel {
        PRel::Descendant => a.contains(d),
        PRel::Child => a.is_parent_of(d),
    }
}

/// Stack-tree semi-join keeping the **descendant-side** intervals that have
/// a matching ancestor. Both inputs must be sorted by `start`.
pub fn semijoin_keep_desc(
    ctx: &ExecContext<'_>,
    anc: &[Interval],
    desc: &[Interval],
    rel: PRel,
) -> Vec<Interval> {
    ctx.count_join();
    ctx.consume_stream((anc.len() + desc.len()) as u64);
    let mut out = Vec::new();
    let mut stack: Vec<Interval> = Vec::new();
    let mut ai = 0;
    let mut since_poll: u32 = 0;
    for d in desc {
        since_poll += 1;
        if since_poll >= GOVERNOR_POLL_EVERY {
            since_poll = 0;
            if ctx.governor_should_stop() {
                break;
            }
        }
        while ai < anc.len() && anc[ai].start < d.start {
            while let Some(top) = stack.last() {
                if top.end < anc[ai].start {
                    stack.pop();
                } else {
                    break;
                }
            }
            stack.push(anc[ai]);
            ai += 1;
        }
        while let Some(top) = stack.last() {
            if top.end < d.start {
                stack.pop();
            } else {
                break;
            }
        }
        let hit = match rel {
            PRel::Descendant => stack.last().is_some_and(|a| a.contains(d)),
            PRel::Child => stack.iter().rev().any(|a| a.is_parent_of(d)),
        };
        if hit {
            out.push(*d);
        }
    }
    out
}

/// Stack-tree semi-join keeping the **ancestor-side** intervals that contain
/// at least one descendant. Both inputs sorted by `start`.
pub fn semijoin_keep_anc(
    ctx: &ExecContext<'_>,
    anc: &[Interval],
    desc: &[Interval],
    rel: PRel,
) -> Vec<Interval> {
    ctx.count_join();
    ctx.consume_stream((anc.len() + desc.len()) as u64);
    let mut alive = vec![false; anc.len()];
    let mut stack: Vec<usize> = Vec::new();
    let mut ai = 0;
    let mut since_poll: u32 = 0;
    for d in desc {
        since_poll += 1;
        if since_poll >= GOVERNOR_POLL_EVERY {
            since_poll = 0;
            if ctx.governor_should_stop() {
                break;
            }
        }
        while ai < anc.len() && anc[ai].start < d.start {
            while let Some(&top) = stack.last() {
                if anc[top].end < anc[ai].start {
                    stack.pop();
                } else {
                    break;
                }
            }
            stack.push(ai);
            ai += 1;
        }
        while let Some(&top) = stack.last() {
            if anc[top].end < d.start {
                stack.pop();
            } else {
                break;
            }
        }
        // Every stack entry spans d.start, hence (well-nestedness) contains
        // d; for parent-child only the entry one level up qualifies.
        for &s in stack.iter().rev() {
            if rel_ok(&anc[s], d, rel) {
                alive[s] = true;
                if rel == PRel::Child {
                    break;
                }
            }
        }
    }
    anc.iter().zip(alive).filter_map(|(a, keep)| keep.then_some(*a)).collect()
}

/// Per-vertex candidate lists with the context restriction and the root's
/// Child-arc level filter applied — the front half of
/// [`eval_pattern_binary`], shared with [`crate::parallel`] (which
/// partitions the output vertex's list across worker threads before
/// running [`sweep`] per chunk).
pub fn pattern_candidates(
    ctx: &ExecContext<'_>,
    g: &PatternGraph,
    context: Option<SNodeId>,
) -> Vec<Vec<Interval>> {
    let n = g.vertices.len();
    let mut cand: Vec<Vec<Interval>> = (0..n).map(|v| candidates(ctx, g, v)).collect();

    // Context restriction (and the root's Child arcs = top-level elements).
    if let Some(c) = context {
        let (cs, ce, _) = ctx.sdoc.interval(c);
        for list in cand.iter_mut().skip(1) {
            list.retain(|iv| cs < iv.start && iv.end < ce);
        }
    }
    let context_level = context.map_or(0, |c| ctx.sdoc.interval(c).2);
    for (child, rel) in g.children(g.root()) {
        if rel == PRel::Child {
            cand[child].retain(|iv| iv.level == context_level + 1);
        }
    }
    cand
}

/// Evaluate a single-output pattern entirely with binary structural joins:
/// σs/σv per vertex, then a bottom-up semi-join sweep (existence) and a
/// top-down sweep (connectivity). `context` restricts matches to a subtree.
pub fn eval_pattern_binary(
    ctx: &ExecContext<'_>,
    g: &PatternGraph,
    context: Option<SNodeId>,
) -> Vec<SNodeId> {
    let outputs = g.outputs();
    assert_eq!(outputs.len(), 1, "binary-join evaluation needs one output vertex");
    if g.unsatisfiable || ctx.sdoc.is_empty() {
        return Vec::new();
    }
    let cand = pattern_candidates(ctx, g, context);
    sweep(ctx, g, cand)
}

/// The semi-join sweep over prepared candidate lists — the back half of
/// [`eval_pattern_binary`]. Exact with respect to its inputs: the result is
/// every node in the output vertex's list that participates in a full
/// pattern match drawn from the given lists, in document order.
pub fn sweep(
    ctx: &ExecContext<'_>,
    g: &PatternGraph,
    mut cand: Vec<Vec<Interval>>,
) -> Vec<SNodeId> {
    let outputs = g.outputs();

    // Bottom-up: a vertex keeps only candidates with every mandatory child
    // arc satisfied (post-order over the pattern tree).
    let order = post_order(g);
    for &v in &order {
        let kids: Vec<(usize, PRel)> = g.children(v).collect();
        for (c, rel) in kids {
            if g.vertices[c].optional {
                continue;
            }
            if v == g.root() {
                continue; // root handled implicitly (candidates filtered above)
            }
            let filtered = semijoin_keep_anc(ctx, &cand[v], &cand[c], rel);
            cand[v] = filtered;
        }
    }

    // Top-down along the root-to-output chain: connectivity.
    let mut chain = vec![outputs[0]];
    let mut cur = outputs[0];
    while let Some(arc) = g.incoming(cur) {
        cur = arc.from;
        if cur != g.root() {
            chain.push(cur);
        }
    }
    chain.reverse();
    let mut prev: Option<Vec<Interval>> = None;
    for &v in &chain {
        if let Some(p) = &prev {
            let rel = g.incoming(v).expect("non-root chain vertex").rel;
            cand[v] = semijoin_keep_desc(ctx, p, &cand[v], rel);
        }
        prev = Some(cand[v].clone());
    }
    cand[outputs[0]].iter().map(|iv| iv.node).collect()
}

fn post_order(g: &PatternGraph) -> Vec<usize> {
    fn rec(g: &PatternGraph, v: usize, out: &mut Vec<usize>) {
        for (c, _) in g.children(v) {
            rec(g, c, out);
        }
        out.push(v);
    }
    let mut out = Vec::new();
    rec(g, g.root(), &mut out);
    out
}

/// Evaluate a linear descendant path (`//t1//t2//…//tk`) by pairwise
/// semi-joins applied in the given order of arcs (indices into `0..k-1`).
/// Used by the join-order experiment (E8): a bad order keeps big
/// intermediate streams alive, a good one shrinks them first.
pub fn eval_linear_ordered(
    ctx: &ExecContext<'_>,
    tags: &[&str],
    arc_order: &[usize],
) -> Vec<SNodeId> {
    assert!(tags.len() >= 2);
    assert_eq!(arc_order.len(), tags.len() - 1);
    let streams = ctx.streams();
    let mut lists: Vec<Vec<Interval>> =
        tags.iter().map(|t| streams.stream_by_name(ctx.sdoc, t).to_vec()).collect();
    for list in &lists {
        ctx.consume_stream(list.len() as u64);
    }
    for &arc in arc_order {
        // Arc i joins tags[i] (anc) with tags[i+1] (desc); semi-join both
        // ways so later joins see reduced inputs.
        let kept_desc = semijoin_keep_desc(ctx, &lists[arc], &lists[arc + 1], PRel::Descendant);
        let kept_anc = semijoin_keep_anc(ctx, &lists[arc], &lists[arc + 1], PRel::Descendant);
        lists[arc + 1] = kept_desc;
        lists[arc] = kept_anc;
    }
    // Final connectivity sweep top-down to make the result exact regardless
    // of the chosen order.
    for i in 0..tags.len() - 1 {
        lists[i + 1] = semijoin_keep_desc(ctx, &lists[i], &lists[i + 1], PRel::Descendant);
    }
    lists[tags.len() - 1].iter().map(|iv| iv.node).collect()
}

/// Evaluate a linear descendant path by **pair-materializing** structural
/// joins applied in the given arc order — the classic intermediate-result
/// pipeline whose cost the join order controls (Wu et al. [5], rewrite R4 /
/// experiment E8). Returns the final matches of the last tag plus the total
/// number of intermediate tuples materialized.
pub fn eval_linear_pairs(
    ctx: &ExecContext<'_>,
    tags: &[&str],
    arc_order: &[usize],
) -> (Vec<SNodeId>, usize) {
    assert!(tags.len() >= 2);
    assert_eq!(arc_order.len(), tags.len() - 1);
    let streams: Vec<Vec<Interval>> = {
        let s = ctx.streams();
        tags.iter().map(|t| s.stream_by_name(ctx.sdoc, t).to_vec()).collect()
    };
    // Partial results: rows binding a contiguous range of columns.
    let mut rows: Vec<Vec<Option<Interval>>> = Vec::new();
    let mut bound: Vec<bool> = vec![false; tags.len()];
    let mut intermediates = 0usize;
    for &arc in arc_order {
        let (l, r) = (arc, arc + 1);
        ctx.count_join();
        match (bound[l], bound[r]) {
            (false, false) => {
                // Seed rows from a full pair join of the two streams.
                let mut stack: Vec<Interval> = Vec::new();
                let mut ai = 0;
                let anc = &streams[l];
                for d in &streams[r] {
                    while ai < anc.len() && anc[ai].start < d.start {
                        while let Some(top) = stack.last() {
                            if top.end < anc[ai].start {
                                stack.pop();
                            } else {
                                break;
                            }
                        }
                        stack.push(anc[ai]);
                        ai += 1;
                    }
                    while let Some(top) = stack.last() {
                        if top.end < d.start {
                            stack.pop();
                        } else {
                            break;
                        }
                    }
                    for a in stack.iter().filter(|a| a.contains(d)) {
                        let mut row = vec![None; tags.len()];
                        row[l] = Some(*a);
                        row[r] = Some(*d);
                        rows.push(row);
                    }
                }
            }
            (true, false) => {
                // Extend each row downward: descendants of row[l] in stream r.
                let mut next = Vec::new();
                for row in &rows {
                    let a = row[l].expect("bound column");
                    let s = &streams[r];
                    let from = s.partition_point(|iv| iv.start <= a.start);
                    for d in &s[from..] {
                        if d.start > a.end {
                            break;
                        }
                        if a.contains(d) {
                            let mut nr = row.clone();
                            nr[r] = Some(*d);
                            next.push(nr);
                        }
                    }
                }
                rows = next;
            }
            (false, true) => {
                // Extend upward: ancestors of row[r] with tag l.
                let mut next = Vec::new();
                for row in &rows {
                    let d = row[r].expect("bound column");
                    let mut anc = ctx.sdoc.parent(d.node);
                    while let Some(p) = anc {
                        if ctx.sdoc.is_element(p) && ctx.sdoc.name(p) == tags[l] {
                            let (start, end, level) = ctx.sdoc.interval(p);
                            let mut nr = row.clone();
                            nr[l] = Some(Interval { start, end, level, node: p });
                            next.push(nr);
                        }
                        anc = ctx.sdoc.parent(p);
                    }
                }
                rows = next;
            }
            (true, true) => {
                rows.retain(|row| row[l].expect("bound").contains(&row[r].expect("bound")));
            }
        }
        bound[l] = true;
        bound[r] = true;
        intermediates += rows.len();
        ctx.consume_stream(rows.len() as u64);
    }
    let last = tags.len() - 1;
    let mut out: Vec<SNodeId> = rows.iter().filter_map(|r| r[last].map(|iv| iv.node)).collect();
    out.sort_unstable();
    out.dedup();
    (out, intermediates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::NodeRef;
    use crate::naive;
    use xqp_storage::SuccinctDoc;
    use xqp_xpath::parse_path;

    const BIB: &str = "<bib>\
        <book year=\"1994\"><title>TCP</title><author>Stevens</author><price>65</price></book>\
        <book year=\"2000\"><title>Data</title><author>Abiteboul</author><author>Buneman</author><price>39</price></book>\
        <article><title>X</title><keyword>xml</keyword></article>\
        </bib>";

    fn join_eval(doc: &SuccinctDoc, path: &str) -> Vec<SNodeId> {
        let ctx = ExecContext::new(doc);
        let g = PatternGraph::from_path(&parse_path(path).unwrap()).unwrap();
        eval_pattern_binary(&ctx, &g, None)
    }

    fn naive_eval(doc: &SuccinctDoc, path: &str) -> Vec<SNodeId> {
        let ctx = ExecContext::new(doc);
        naive::eval_path(&ctx, &[], &parse_path(path).unwrap())
            .unwrap()
            .into_iter()
            .map(|n| match n {
                NodeRef::Stored(s) => s,
                NodeRef::Built(_) => unreachable!(),
            })
            .collect()
    }

    fn assert_same(doc: &SuccinctDoc, path: &str) {
        assert_eq!(join_eval(doc, path), naive_eval(doc, path), "path `{path}`");
    }

    #[test]
    fn join_evaluation_matches_naive() {
        let d = SuccinctDoc::parse(BIB).unwrap();
        for p in [
            "/bib/book/title",
            "//title",
            "//book/title",
            "/bib//author",
            "/bib/book[author]/title",
            "//book[@year = 1994]/title",
            "//book[price > 50]/title",
            "//*[keyword]/title",
            "/bib/book//text()",
            "//missing",
        ] {
            assert_same(&d, p);
        }
    }

    #[test]
    fn recursive_nesting_cases() {
        let d = SuccinctDoc::parse("<a><a><a><b/></a></a><b/></a>").unwrap();
        for p in ["//a//a", "//a//b", "//a[b]", "//a/a/b"] {
            assert_same(&d, p);
        }
    }

    #[test]
    fn semijoin_desc_basic() {
        let d = SuccinctDoc::parse(BIB).unwrap();
        let ctx = ExecContext::new(&d);
        let streams = ctx.streams();
        let books = streams.stream_by_name(&d, "book").to_vec();
        let authors = streams.stream_by_name(&d, "author").to_vec();
        let kept = semijoin_keep_desc(&ctx, &books, &authors, PRel::Descendant);
        assert_eq!(kept.len(), 3);
        let kept_pc = semijoin_keep_desc(&ctx, &books, &authors, PRel::Child);
        assert_eq!(kept_pc.len(), 3); // authors are direct children here
    }

    #[test]
    fn semijoin_anc_basic() {
        let d = SuccinctDoc::parse(BIB).unwrap();
        let ctx = ExecContext::new(&d);
        let streams = ctx.streams();
        let all_elems: Vec<Interval> = {
            let mut v: Vec<Interval> = d
                .elements()
                .map(|n| {
                    let (s, e, l) = d.interval(n);
                    Interval { start: s, end: e, level: l, node: n }
                })
                .collect();
            v.sort_by_key(|iv| iv.start);
            v
        };
        let keywords = streams.stream_by_name(&d, "keyword").to_vec();
        // Elements with a keyword descendant: bib + article.
        let kept = semijoin_keep_anc(&ctx, &all_elems, &keywords, PRel::Descendant);
        assert_eq!(kept.len(), 2);
        // Elements with a keyword *child*: article only.
        let kept_pc = semijoin_keep_anc(&ctx, &all_elems, &keywords, PRel::Child);
        assert_eq!(kept_pc.len(), 1);
        assert_eq!(d.name(kept_pc[0].node), "article");
    }

    #[test]
    fn join_counters_tick() {
        let d = SuccinctDoc::parse(BIB).unwrap();
        let ctx = ExecContext::new(&d);
        let g = PatternGraph::from_path(&parse_path("/bib/book[author]/title").unwrap()).unwrap();
        ctx.reset_counters();
        let _ = eval_pattern_binary(&ctx, &g, None);
        // One join per non-root arc at least.
        assert!(ctx.counters().structural_joins >= 2);
    }

    #[test]
    fn linear_ordered_any_order_is_exact() {
        let d =
            SuccinctDoc::parse("<r><a><b><c>1</c></b></a><a><b/></a><b><c>2</c></b><c>3</c></r>")
                .unwrap();
        let ctx = ExecContext::new(&d);
        let expect = naive_eval(&d, "//a//b//c");
        for order in [[0, 1], [1, 0]] {
            let got = eval_linear_ordered(&ctx, &["a", "b", "c"], &order);
            assert_eq!(got, expect, "order {order:?}");
        }
    }

    #[test]
    fn pair_join_orders_agree_but_differ_in_intermediates() {
        // Many a's each with b's; only some b's have c's.
        let mut doc = xqp_xml::Document::new();
        let root = doc.append_element(doc.root(), "r");
        for i in 0..100 {
            let a = doc.append_element(root, "a");
            for j in 0..3 {
                let b = doc.append_element(a, "b");
                if i % 10 == 0 && j == 0 {
                    doc.append_element(b, "c");
                }
            }
        }
        let sdoc = SuccinctDoc::from_document(&doc);
        let ctx = ExecContext::new(&sdoc);
        let expect = naive_eval(&sdoc, "//a//b//c");
        let (good, good_tuples) = eval_linear_pairs(&ctx, &["a", "b", "c"], &[1, 0]);
        let (bad, bad_tuples) = eval_linear_pairs(&ctx, &["a", "b", "c"], &[0, 1]);
        assert_eq!(good, expect);
        assert_eq!(bad, expect);
        // The cost-model order (rare pair first) materializes far less.
        assert!(good_tuples * 2 < bad_tuples, "good {good_tuples} vs bad {bad_tuples}");
    }

    #[test]
    fn index_probe_matches_scan_for_every_literal_type() {
        // Values chosen so lexicographic and numeric order disagree: "" and
        // "4x" sort below "5" as strings but are absent from the numeric
        // tree, "12" sorts below "5" as a string but above as a number.
        let d =
            SuccinctDoc::parse("<r><c/><c>abc</c><c>4x</c><c>12</c><c>7</c><c>5</c><c>5.0</c></r>")
                .unwrap();
        let index = xqp_storage::ValueIndex::build(&d);
        let scan_ctx = ExecContext::new(&d);
        let probe_ctx = ExecContext::new(&d).with_index(&index);
        for pred in [
            "c < \"5\"",
            "c <= \"5\"",
            "c > \"5\"",
            "c >= \"12\"",
            "c = \"\"",
            "c = \"5\"",
            "c < 5",
            "c <= 5",
            "c > 5",
            "c >= 12",
            "c = 5",
        ] {
            let path = format!("//*[{pred}]");
            let g = PatternGraph::from_path(&parse_path(&path).unwrap()).unwrap();
            // Vertex 1 under the root arc is the constrained `c` graft.
            let v = (0..g.vertices.len())
                .find(|&i| !g.vertices[i].constraints.is_empty())
                .expect("predicate produced a constrained vertex");
            let scanned = candidates(&scan_ctx, &g, v);
            let probed = candidates(&probe_ctx, &g, v);
            assert_eq!(probed, scanned, "pred `{pred}`");
        }
    }

    #[test]
    fn context_restricted_join_eval() {
        let d = SuccinctDoc::parse(BIB).unwrap();
        let ctx = ExecContext::new(&d);
        let bib = d.root().unwrap();
        let book2 = d.child_elements(bib).nth(1).unwrap();
        let mut g = PatternGraph::empty();
        let last = g.graft_path(g.root(), &parse_path("author").unwrap()).unwrap().unwrap();
        g.mark_output(last);
        let m = eval_pattern_binary(&ctx, &g, Some(book2));
        assert_eq!(m.len(), 2);
    }
}
