//! The NoK tree-pattern matcher — §4.2 of the paper.
//!
//! A *next-of-kin* pattern uses only local relations (parent-child,
//! attribute), so it is matched **in a single pre-order scan** of the
//! succinct structure with no structural joins. General patterns are first
//! partitioned at their ancestor–descendant arcs ([`NokPartition`], rewrite
//! R3); this matcher still needs only **one pass**:
//!
//! * every non-root partition's root is a *floating* vertex, tried at every
//!   element during the scan;
//! * a vertex with a cut descendant arc checks "did the target partition's
//!   confirmation list grow while my subtree was open?" — an O(1)
//!   stack-snapshot test that plays the role of a structural semi-join
//!   (pops are post-order, so every confirmation added between push and pop
//!   is a descendant);
//! * `optional` vertices (generalized tree patterns, let-bindings) never
//!   block satisfaction.
//!
//! The scan yields, per pattern vertex, the sorted list of document nodes
//! that root a valid match of that vertex's sub-pattern ([`TpmResult`]).
//! [`eval_single_output`] then filters the output vertex's list by the
//! root-to-output ancestor chain; [`matches_between`] supports per-binding
//! enumeration for the FLWOR→TPM operator.

use crate::context::ExecContext;
use xqp_storage::{SKind, SNodeId};
use xqp_xpath::{NokPartition, PRel, PatternGraph, VertexKind};

/// Per-vertex confirmed sub-pattern matches, each list in document order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TpmResult {
    /// `confirmed[v]` = nodes rooting a valid match of the sub-pattern at
    /// vertex `v` (cross-partition descendant constraints included).
    pub confirmed: Vec<Vec<SNodeId>>,
}

impl TpmResult {
    /// Matches of one vertex.
    pub fn of(&self, v: usize) -> &[SNodeId] {
        &self.confirmed[v]
    }
}

/// Does `node` locally satisfy vertex `v` (kind, label, value constraints)?
fn local_match(ctx: &ExecContext<'_>, g: &PatternGraph, v: usize, node: SNodeId) -> bool {
    let vert = &g.vertices[v];
    let kind_ok = match vert.kind {
        VertexKind::Element => ctx.sdoc.kind(node) == SKind::Element,
        VertexKind::Attribute => ctx.sdoc.kind(node) == SKind::Attribute,
        VertexKind::Text => ctx.sdoc.kind(node) == SKind::Text,
        VertexKind::Root => return false, // the root matches the virtual doc only
    };
    if !kind_ok {
        return false;
    }
    if vert.kind != VertexKind::Text && !vert.label_matches(ctx.sdoc.name(node)) {
        return false;
    }
    if !vert.constraints.is_empty() {
        let value = ctx.sdoc.typed_value(node);
        if !vert.constraints.iter().all(|c| c.matches(&value)) {
            return false;
        }
    }
    true
}

/// Static matcher tables derived from the pattern once per evaluation.
struct Tables {
    /// Child-arc children per vertex.
    kids: Vec<Vec<usize>>,
    /// Mandatory (non-optional) child-arc children per vertex.
    mandatory: Vec<Vec<usize>>,
    /// Descendant-arc targets (partition roots) per vertex, mandatory only.
    desc_targets: Vec<Vec<usize>>,
    /// All floating roots (non-root partition roots).
    floating: Vec<usize>,
}

impl Tables {
    fn build(g: &PatternGraph) -> Tables {
        let n = g.vertices.len();
        let mut kids = vec![Vec::new(); n];
        let mut mandatory = vec![Vec::new(); n];
        let mut desc_targets = vec![Vec::new(); n];
        for arc in &g.arcs {
            match arc.rel {
                PRel::Child => {
                    kids[arc.from].push(arc.to);
                    if !g.vertices[arc.to].optional {
                        mandatory[arc.from].push(arc.to);
                    }
                }
                PRel::Descendant => {
                    if !g.vertices[arc.to].optional {
                        desc_targets[arc.from].push(arc.to);
                    }
                }
            }
        }
        let parts = NokPartition::partition(g);
        let floating = parts.patterns.iter().skip(1).map(|p| p.root).collect();
        Tables { kids, mandatory, desc_targets, floating }
    }
}

/// A pattern compiled for repeated matching: shape tables are built once
/// and scratch buffers are pooled, so per-context evaluation (e.g. once per
/// FLWOR binding) costs no setup allocations.
pub struct PreparedPattern<'g> {
    g: &'g PatternGraph,
    t: Tables,
}

impl<'g> PreparedPattern<'g> {
    /// Build the matcher tables for `g`.
    pub fn new(g: &'g PatternGraph) -> Self {
        PreparedPattern { g, t: Tables::build(g) }
    }

    /// The underlying pattern.
    pub fn pattern(&self) -> &'g PatternGraph {
        self.g
    }

    /// Run the single-scan matcher over the subtree of `context` (`None` =
    /// the whole document, the pattern root matching the virtual document
    /// node). Returns per-vertex confirmed match lists.
    pub fn match_pattern(&self, ctx: &ExecContext<'_>, context: Option<SNodeId>) -> TpmResult {
        let g = self.g;
        let n = g.vertices.len();
        let mut confirmed: Vec<Vec<SNodeId>> = vec![Vec::new(); n];
        if g.unsatisfiable || ctx.sdoc.is_empty() {
            return TpmResult { confirmed };
        }
        let tables = &self.t;
        let mut scan = Scan {
            ctx,
            g,
            t: tables,
            confirmed: &mut confirmed,
            bool_pool: Vec::new(),
            usize_pool: Vec::new(),
        };

        // The virtual frame for the pattern root.
        let top_candidates = root_candidates(tables, g.root());
        let mut sat_root: Vec<bool> = vec![false; n];
        let snapshots: Vec<usize> =
            tables.desc_targets[g.root()].iter().map(|&tgt| scan.confirmed[tgt].len()).collect();
        // Walk the context's children by parenthesis position: the first
        // child of rank r at open position p is (r+1, p+1); siblings follow
        // the matching close.
        let bp = ctx.sdoc.bp();
        let (mut child_id, mut child_pos, stop) = match context {
            Some(c) => {
                let p = ctx.sdoc.pos(c);
                (SNodeId(c.0 + 1), p + 1, bp.find_close(p))
            }
            None => (SNodeId(0), 0, bp.len()),
        };
        while child_pos < stop && bp.is_open(child_pos) {
            scan.visit(child_id, child_pos, &top_candidates, &mut sat_root);
            let close = bp.find_close(child_pos);
            child_id = SNodeId(child_id.0 + ((close - child_pos).div_ceil(2)) as u32);
            child_pos = close + 1;
        }
        // Root satisfaction: mandatory child arcs + descendant arcs.
        let root_ok = tables.mandatory[g.root()].iter().all(|&c| sat_root[c])
            && tables.desc_targets[g.root()]
                .iter()
                .zip(&snapshots)
                .all(|(&tgt, &snap)| scan.confirmed[tgt].len() > snap);
        if root_ok {
            // The root "match" is the context itself (the root element
            // stands in for the virtual document node).
            if let Some(c) = context {
                confirmed[g.root()].push(c);
            } else if let Some(r) = ctx.sdoc.root() {
                confirmed[g.root()].push(r);
            }
        } else {
            confirmed[g.root()].clear();
        }
        for list in confirmed.iter_mut() {
            list.sort_unstable();
            list.dedup();
        }
        TpmResult { confirmed }
    }

    /// Evaluate a single-output pattern against one context.
    pub fn eval_single_output(
        &self,
        ctx: &ExecContext<'_>,
        context: Option<SNodeId>,
    ) -> Vec<SNodeId> {
        let outputs = self.g.outputs();
        assert_eq!(outputs.len(), 1, "eval_single_output needs exactly one output vertex");
        let result = self.match_pattern(ctx, context);
        filter_by_chain(ctx, self.g, &result, outputs[0], context)
    }
}

/// One-shot convenience wrapper over [`PreparedPattern::match_pattern`].
pub fn match_pattern(
    ctx: &ExecContext<'_>,
    g: &PatternGraph,
    context: Option<SNodeId>,
) -> TpmResult {
    PreparedPattern::new(g).match_pattern(ctx, context)
}

fn root_candidates(t: &Tables, root: usize) -> Vec<usize> {
    let mut c = t.kids[root].clone();
    for &f in &t.floating {
        if !c.contains(&f) {
            c.push(f);
        }
    }
    c
}

struct Scan<'a, 'b> {
    ctx: &'a ExecContext<'b>,
    g: &'a PatternGraph,
    t: &'a Tables,
    confirmed: &'a mut Vec<Vec<SNodeId>>,
    /// Scratch pools: recursion frames borrow buffers instead of allocating.
    bool_pool: Vec<Vec<bool>>,
    usize_pool: Vec<Vec<usize>>,
}

impl Scan<'_, '_> {
    fn take_bools(&mut self) -> Vec<bool> {
        let mut b = self.bool_pool.pop().unwrap_or_default();
        b.clear();
        b.resize(self.g.vertices.len(), false);
        b
    }

    fn take_usizes(&mut self) -> Vec<usize> {
        let mut b = self.usize_pool.pop().unwrap_or_default();
        b.clear();
        b
    }

    /// Visit the node at open parenthesis `pos` with the given candidate
    /// vertices; sets `parent_sat[v]` for every vertex whose sub-pattern the
    /// node satisfies.
    fn visit(&mut self, node: SNodeId, pos: usize, candidates: &[usize], parent_sat: &mut [bool]) {
        self.ctx.visit(1);
        let mut locally = self.take_usizes();
        locally
            .extend(candidates.iter().copied().filter(|&v| local_match(self.ctx, self.g, v, node)));

        if locally.is_empty() && self.t.floating.is_empty() {
            // Nothing can match here or below: skip the whole subtree.
            self.usize_pool.push(locally);
            return;
        }

        // Candidate vertices for the children of `node`.
        let mut child_candidates = self.take_usizes();
        for &v in &locally {
            child_candidates.extend_from_slice(&self.t.kids[v]);
        }
        for &f in &self.t.floating {
            if !child_candidates.contains(&f) {
                child_candidates.push(f);
            }
        }

        // Snapshot descendant-target confirmation counts (push time),
        // flattened in `locally` × `desc_targets` order.
        let mut snapshots = self.take_usizes();
        for &v in &locally {
            for &tgt in &self.t.desc_targets[v] {
                snapshots.push(self.confirmed[tgt].len());
            }
        }

        // Recurse by parenthesis position — pruned entirely when no child
        // candidates exist.
        let mut child_sat = self.take_bools();
        if !child_candidates.is_empty() {
            let bp = self.ctx.sdoc.bp();
            let mut child_pos = pos + 1;
            let mut child_id = SNodeId(node.0 + 1);
            while bp.is_open(child_pos) {
                self.visit(child_id, child_pos, &child_candidates, &mut child_sat);
                let close = self.ctx.sdoc.bp().find_close(child_pos);
                child_id = SNodeId(child_id.0 + ((close - child_pos).div_ceil(2)) as u32);
                child_pos = close + 1;
            }
        }

        // Pop: decide satisfaction for every locally matched vertex first,
        // then record — otherwise a node confirming one vertex could count
        // as its own descendant for another vertex in the same pop.
        let mut satisfied = self.take_usizes();
        let mut snap_i = 0;
        for &v in &locally {
            let kids_ok = self.t.mandatory[v].iter().all(|&c| child_sat[c]);
            let mut desc_ok = true;
            for &tgt in &self.t.desc_targets[v] {
                desc_ok &= self.confirmed[tgt].len() > snapshots[snap_i];
                snap_i += 1;
            }
            if kids_ok && desc_ok {
                satisfied.push(v);
            }
        }
        for &v in &satisfied {
            self.confirmed[v].push(node);
            parent_sat[v] = true;
        }

        self.usize_pool.push(locally);
        self.usize_pool.push(child_candidates);
        self.usize_pool.push(snapshots);
        self.usize_pool.push(satisfied);
        self.bool_pool.push(child_sat);
    }
}

/// Evaluate a single-output pattern: scan, then filter the output vertex's
/// matches by the root-to-output ancestor chain.
pub fn eval_single_output(
    ctx: &ExecContext<'_>,
    g: &PatternGraph,
    context: Option<SNodeId>,
) -> Vec<SNodeId> {
    let outputs = g.outputs();
    assert_eq!(outputs.len(), 1, "eval_single_output needs exactly one output vertex");
    let result = match_pattern(ctx, g, context);
    filter_by_chain(ctx, g, &result, outputs[0], context)
}

/// Keep only the `target` matches that lie on a valid root-to-target chain.
pub fn filter_by_chain(
    ctx: &ExecContext<'_>,
    g: &PatternGraph,
    result: &TpmResult,
    target: usize,
    context: Option<SNodeId>,
) -> Vec<SNodeId> {
    // Collect the vertex chain root → target.
    let mut chain = vec![target];
    let mut cur = target;
    while let Some(arc) = g.incoming(cur) {
        chain.push(arc.from);
        cur = arc.from;
    }
    chain.reverse(); // root first
    if chain[0] != g.root() {
        // Disconnected target (cannot happen for grafted patterns).
        return result.of(target).to_vec();
    }
    if result.of(g.root()).is_empty() {
        return Vec::new();
    }

    // valid sets flow down the chain.
    use std::collections::HashSet;
    let mut valid: HashSet<SNodeId> = match context {
        Some(c) => [c].into_iter().collect(),
        None => HashSet::new(), // virtual doc: checked specially below
    };
    let mut at_doc_root = context.is_none();
    for win in chain.windows(2) {
        let (from, to) = (win[0], win[1]);
        let rel = g.incoming(to).expect("chain vertices have incoming arcs").rel;
        let mut next: HashSet<SNodeId> = HashSet::new();
        for &n in result.of(to) {
            let ok = if at_doc_root {
                match rel {
                    // Child of the virtual document node = the root element.
                    PRel::Child => ctx.sdoc.parent(n).is_none(),
                    PRel::Descendant => true,
                }
            } else {
                match rel {
                    PRel::Child => ctx.sdoc.parent(n).is_some_and(|p| valid.contains(&p)),
                    PRel::Descendant => {
                        // Walk ancestors; depth is small in practice.
                        let mut anc = ctx.sdoc.parent(n);
                        let mut hit = false;
                        while let Some(a) = anc {
                            if valid.contains(&a) {
                                hit = true;
                                break;
                            }
                            anc = ctx.sdoc.parent(a);
                        }
                        hit
                    }
                }
            };
            if ok {
                next.insert(n);
            }
        }
        let _ = from;
        valid = next;
        at_doc_root = false;
        if valid.is_empty() {
            return Vec::new();
        }
    }
    let mut out: Vec<SNodeId> = valid.into_iter().collect();
    out.sort_unstable();
    out
}

/// Arrange a document-ordered node list into the paper's **NestedList**
/// output sort (§3.2): "two nodes are immediately nested in the output
/// nested list iff they are in (immediate) ancestor-descendant relationship
/// in the input tree". A node with nested matches becomes the group
/// `List([Leaf(n), entry…])`; an isolated match stays a `Leaf`. Because
/// every entry is again a leaf or a group, inner lists are unambiguously
/// groups (only the outermost container is a plain sequence).
pub fn nest_by_structure(ctx: &ExecContext<'_>, nodes: &[SNodeId]) -> xqp_algebra::Nested<SNodeId> {
    use xqp_algebra::{Item, Nested};

    struct Frame {
        node: SNodeId,
        /// Exclusive end of the node's rank range.
        end: u32,
        children: Vec<Nested<SNodeId>>,
    }

    fn close(frame: Frame) -> Nested<SNodeId> {
        if frame.children.is_empty() {
            Nested::Leaf(Item::Node(frame.node))
        } else {
            let mut items = Vec::with_capacity(frame.children.len() + 1);
            items.push(Nested::Leaf(Item::Node(frame.node)));
            items.extend(frame.children);
            Nested::List(items)
        }
    }

    let mut top: Vec<Nested<SNodeId>> = Vec::new();
    let mut stack: Vec<Frame> = Vec::new();
    for &n in nodes {
        // Pop frames that do not contain n.
        while let Some(f) = stack.last() {
            if n.0 >= f.end {
                let done = close(stack.pop().expect("checked non-empty"));
                match stack.last_mut() {
                    Some(parent) => parent.children.push(done),
                    None => top.push(done),
                }
            } else {
                break;
            }
        }
        let end = n.0 + ctx.sdoc.subtree_size(n) as u32;
        stack.push(Frame { node: n, end, children: Vec::new() });
    }
    while let Some(f) = stack.pop() {
        let done = close(f);
        match stack.last_mut() {
            Some(parent) => parent.children.push(done),
            None => top.push(done),
        }
    }
    Nested::List(top)
}

/// τ with the paper's NestedList result: the single output vertex's matches
/// arranged by their structural relationships.
pub fn eval_single_output_nested(
    ctx: &ExecContext<'_>,
    g: &PatternGraph,
    context: Option<SNodeId>,
) -> xqp_algebra::Nested<SNodeId> {
    let flat = eval_single_output(ctx, g, context);
    nest_by_structure(ctx, &flat)
}

/// Enumerate the nodes matching `to_vertex` that are reachable from
/// `anchor` (a concrete match of `from_vertex`; `None` = the virtual doc
/// node) through the pattern's arc chain, consistent with the confirmed
/// sets. Used by the FLWOR→TPM binder.
pub fn matches_between(
    ctx: &ExecContext<'_>,
    g: &PatternGraph,
    result: &TpmResult,
    from_vertex: usize,
    to_vertex: usize,
    anchor: Option<SNodeId>,
) -> Vec<SNodeId> {
    // Chain from to_vertex up to from_vertex.
    let mut chain = vec![to_vertex];
    let mut cur = to_vertex;
    while cur != from_vertex {
        let Some(arc) = g.incoming(cur) else { return Vec::new() };
        cur = arc.from;
        if cur != from_vertex {
            chain.push(cur);
        }
    }
    chain.reverse(); // nearest-to-from first … to_vertex last

    let mut current: Vec<Option<SNodeId>> = vec![anchor];
    for &vertex in &chain {
        let rel = g.incoming(vertex).expect("chain vertex has incoming arc").rel;
        let matches = result.of(vertex);
        let mut next: Vec<Option<SNodeId>> = Vec::new();
        for src in &current {
            match (src, rel) {
                (None, PRel::Child) => {
                    // Children of the virtual doc node: the root element.
                    next.extend(
                        matches.iter().copied().filter(|&m| ctx.sdoc.parent(m).is_none()).map(Some),
                    );
                }
                (None, PRel::Descendant) => {
                    next.extend(matches.iter().copied().map(Some));
                }
                (Some(a), PRel::Child) => {
                    // Restrict to the subtree's rank range first (sorted
                    // lists, binary search), then check direct parenthood.
                    let lo = a.0 + 1;
                    let hi = a.0 + ctx.sdoc.subtree_size(*a) as u32;
                    let start = matches.partition_point(|m| m.0 < lo);
                    let end = matches.partition_point(|m| m.0 < hi);
                    next.extend(
                        matches[start..end]
                            .iter()
                            .copied()
                            .filter(|&m| ctx.sdoc.parent(m) == Some(*a))
                            .map(Some),
                    );
                }
                (Some(a), PRel::Descendant) => {
                    // Confirmed lists are sorted by pre-order rank, and a
                    // subtree is a contiguous rank range: binary search.
                    let lo = a.0 + 1;
                    let hi = a.0 + ctx.sdoc.subtree_size(*a) as u32;
                    let start = matches.partition_point(|m| m.0 < lo);
                    let end = matches.partition_point(|m| m.0 < hi);
                    next.extend(matches[start..end].iter().copied().map(Some));
                }
            }
        }
        let mut flat: Vec<SNodeId> = next.into_iter().flatten().collect();
        flat.sort_unstable();
        flat.dedup();
        current = flat.into_iter().map(Some).collect();
        if current.is_empty() {
            return Vec::new();
        }
    }
    current.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::NodeRef;
    use crate::naive;
    use xqp_storage::SuccinctDoc;
    use xqp_xpath::{parse_path, PatternGraph};

    const BIB: &str = "<bib>\
        <book year=\"1994\"><title>TCP</title><author>Stevens</author><price>65</price></book>\
        <book year=\"2000\"><title>Data</title><author>Abiteboul</author><author>Buneman</author><price>39</price></book>\
        <article><title>X</title><keyword>xml</keyword></article>\
        </bib>";

    fn nok_eval(doc: &SuccinctDoc, path: &str) -> Vec<SNodeId> {
        let ctx = ExecContext::new(doc);
        let g = PatternGraph::from_path(&parse_path(path).unwrap()).unwrap();
        eval_single_output(&ctx, &g, None)
    }

    fn naive_eval(doc: &SuccinctDoc, path: &str) -> Vec<SNodeId> {
        let ctx = ExecContext::new(doc);
        let p = parse_path(path).unwrap();
        naive::eval_path(&ctx, &[], &p)
            .unwrap()
            .into_iter()
            .map(|n| match n {
                NodeRef::Stored(s) => s,
                NodeRef::Built(_) => unreachable!("no construction here"),
            })
            .collect()
    }

    fn assert_same(doc: &SuccinctDoc, path: &str) {
        assert_eq!(nok_eval(doc, path), naive_eval(doc, path), "path `{path}`");
    }

    #[test]
    fn pure_nok_queries_match_naive() {
        let d = SuccinctDoc::parse(BIB).unwrap();
        for p in [
            "/bib/book/title",
            "/bib/book[author]/title",
            "/bib/book[author][price]/title",
            "/bib/book/@year",
            "/bib/book[@year = 1994]/title",
            "/bib/book[price > 50]/title",
            "/bib/article/keyword",
            "/bib/*[title]/title",
            "/nothing/here",
            "/bib/book[editor]",
        ] {
            assert_same(&d, p);
        }
    }

    #[test]
    fn descendant_patterns_match_naive() {
        let d = SuccinctDoc::parse(BIB).unwrap();
        for p in [
            "//title",
            "//book/title",
            "/bib//author",
            "//book[author = \"Buneman\"]/title",
            "//*[keyword]/title",
            "//book//text()",
            "/bib/book//author",
        ] {
            assert_same(&d, p);
        }
    }

    #[test]
    fn deeper_nesting_with_multiple_partitions() {
        let d = SuccinctDoc::parse(
            "<r><a><b><c><d>1</d></c></b></a><a><x><c><d>2</d></c></x></a><c><d>3</d></c></r>",
        )
        .unwrap();
        for p in ["//a//c/d", "//a//c//d", "/r//c/d", "//a/b//d", "/r/a//d"] {
            assert_same(&d, p);
        }
    }

    #[test]
    fn recursive_same_tag_nesting() {
        // The classic hard case: a//a with nested a's.
        let d = SuccinctDoc::parse("<a><a><a><b/></a></a><b/></a>").unwrap();
        for p in ["//a//a", "//a[b]", "//a//b", "//a/a[b]"] {
            assert_same(&d, p);
        }
    }

    #[test]
    fn text_and_wildcard_vertices() {
        let d = SuccinctDoc::parse(BIB).unwrap();
        for p in ["//title/text()", "/bib/*/title", "//*[@year]/price"] {
            assert_same(&d, p);
        }
    }

    #[test]
    fn context_rooted_matching() {
        let d = SuccinctDoc::parse(BIB).unwrap();
        let ctx = ExecContext::new(&d);
        let bib = d.root().unwrap();
        let book2 = d.child_elements(bib).nth(1).unwrap();
        // Relative pattern `author` under the second book.
        let mut g = PatternGraph::empty();
        let last = g.graft_path(g.root(), &parse_path("author").unwrap()).unwrap().unwrap();
        g.mark_output(last);
        let m = eval_single_output(&ctx, &g, Some(book2));
        assert_eq!(m.len(), 2);
        for n in m {
            assert_eq!(d.name(n), "author");
            assert!(d.is_ancestor(book2, n));
        }
    }

    #[test]
    fn unsatisfiable_pattern_is_empty() {
        let d = SuccinctDoc::parse(BIB).unwrap();
        let ctx = ExecContext::new(&d);
        let g = PatternGraph::from_path(&parse_path("/bib[1 = 2]").unwrap()).unwrap();
        assert!(eval_single_output(&ctx, &g, None).is_empty());
    }

    #[test]
    fn optional_vertices_do_not_block() {
        let d = SuccinctDoc::parse("<r><p><q>1</q></p><p/></r>").unwrap();
        let ctx = ExecContext::new(&d);
        // /r/p with an optional q child: both p's match.
        let mut g = PatternGraph::from_path(&parse_path("/r/p[q]").unwrap()).unwrap();
        let q = g.vertices.iter().position(|v| v.label == "q").unwrap();
        // Mandatory: only the first p matches.
        assert_eq!(eval_single_output(&ctx, &g, None).len(), 1);
        g.vertices[q].optional = true;
        let m = eval_single_output(&ctx, &g, None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn matches_between_child_and_descendant() {
        let d = SuccinctDoc::parse(BIB).unwrap();
        let ctx = ExecContext::new(&d);
        let mut g = PatternGraph::from_path(&parse_path("/bib/book").unwrap()).unwrap();
        let book_v = g.outputs()[0];
        let author_v = g.graft_path(book_v, &parse_path("author").unwrap()).unwrap().unwrap();
        g.mark_output(author_v);
        let result = match_pattern(&ctx, &g, None);
        // books from the virtual doc root:
        let books = matches_between(&ctx, &g, &result, g.root(), book_v, None);
        assert_eq!(books.len(), 2);
        // authors per book:
        let a1 = matches_between(&ctx, &g, &result, book_v, author_v, Some(books[0]));
        let a2 = matches_between(&ctx, &g, &result, book_v, author_v, Some(books[1]));
        assert_eq!(a1.len(), 1);
        assert_eq!(a2.len(), 2);
    }

    #[test]
    fn single_scan_visits_each_node_once_for_nok() {
        let d = SuccinctDoc::parse(BIB).unwrap();
        let ctx = ExecContext::new(&d);
        let g = PatternGraph::from_path(&parse_path("/bib/book[author]/title").unwrap()).unwrap();
        ctx.reset_counters();
        let _ = match_pattern(&ctx, &g, None);
        // At most one visit per stored node (pruning may skip subtrees).
        assert!(ctx.counters().nodes_visited as usize <= d.node_count());
    }

    #[test]
    fn floating_scan_still_one_pass() {
        let d = SuccinctDoc::parse(BIB).unwrap();
        let ctx = ExecContext::new(&d);
        let g = PatternGraph::from_path(&parse_path("//book//author").unwrap()).unwrap();
        ctx.reset_counters();
        let _ = match_pattern(&ctx, &g, None);
        assert!(ctx.counters().nodes_visited as usize <= d.node_count());
    }

    #[test]
    fn value_constraints_in_scan() {
        let d = SuccinctDoc::parse(BIB).unwrap();
        for p in [
            "//book[price > 50]/title",
            "//book[price >= 39][price <= 65]/title",
            "//book[@year != 1994]/author",
        ] {
            assert_same(&d, p);
        }
    }

    #[test]
    fn nested_output_reflects_structure() {
        let d = SuccinctDoc::parse("<a><a><a><b/></a></a><a/></a>").unwrap();
        let ctx = ExecContext::new(&d);
        let g = PatternGraph::from_path(&parse_path("//a").unwrap()).unwrap();
        let nested = eval_single_output_nested(&ctx, &g, None);
        // Flattening gives back the flat result in document order.
        let flat = eval_single_output(&ctx, &g, None);
        let flattened: Vec<SNodeId> = nested
            .flatten()
            .into_iter()
            .filter_map(|i| match i {
                xqp_algebra::Item::Node(n) => Some(n),
                _ => None,
            })
            .collect();
        assert_eq!(flattened, flat);
        // Nesting depth: a/a/a chain → ≥3 levels of list nesting.
        assert!(nested.depth() >= 3, "depth {}", nested.depth());
    }

    #[test]
    fn nested_output_of_disjoint_matches_is_flat() {
        let d = SuccinctDoc::parse("<r><x/><x/><x/></r>").unwrap();
        let ctx = ExecContext::new(&d);
        let g = PatternGraph::from_path(&parse_path("//x").unwrap()).unwrap();
        let nested = eval_single_output_nested(&ctx, &g, None);
        assert_eq!(nested.depth(), 1); // one list of three leaves
        assert_eq!(nested.leaf_count(), 3);
    }
}
