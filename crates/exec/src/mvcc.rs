//! MVCC document versions: snapshot-isolated reads for a serving process.
//!
//! The single-owner `Database` of the early PRs made every reader exclude
//! every writer. This module promotes the generation-stamp idea from
//! `storage::persist` into the in-memory store: a document is a chain of
//! immutable [`DocVersion`]s — succinct structure + content, the optional
//! value/suffix indexes built *for that structure's ranks*, and the lazily
//! derived planner statistics — published through a [`VersionedDoc`] cell.
//!
//! * **Readers** call [`VersionedDoc::snapshot`], a brief read-lock `Arc`
//!   clone, and then run entirely against the captured version. They never
//!   block writers and can never observe a half-applied update: versions
//!   are immutable after publication.
//! * **Writers** build the successor off-line (splices, index rebuilds)
//!   and [`publish`](VersionedDoc) it with one pointer swap under a short
//!   write lock. Writers must be externally serialized per document (the
//!   `Database` holds a per-document writer mutex); the generation stamp is
//!   assigned under the publish lock, so it is monotonic regardless.
//! * **Reclamation** is refcount-based: the cell holds only a `Weak` to
//!   each retired version, so a version's memory is freed the moment its
//!   last reader drops the snapshot `Arc`. [`VersionedDoc::live_versions`]
//!   observes this for tests and server introspection.
//!
//! The compiled-plan cache is deliberately *shared* across versions
//! (`Arc<PlanCache>`): installing a successor does not clear it. Instead
//! every executor built from a snapshot scopes its cache keys by the
//! snapshot's generation ([`Executor::with_cache_scope`]), which
//! logically invalidates old plans — they stop matching and age out via
//! LRU — while a slow reader still holding the previous version keeps
//! hitting its own generation's entries. This also keeps the cache's
//! hit/miss counters continuous across updates, which the plan-cache
//! regression suite pins.

use crate::cache::PlanCache;
use crate::engine::Executor;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, RwLock, Weak};
use xqp_algebra::DocStatistics;
use xqp_storage::{SuccinctDoc, SuffixIndex, ValueIndex};

/// One immutable published version of a document: structure, content
/// indexes, statistics and the (shared) plan cache, stamped with the
/// generation at which it was installed.
pub struct DocVersion {
    generation: u64,
    sdoc: Arc<SuccinctDoc>,
    index: Option<Arc<ValueIndex>>,
    suffix: Option<Arc<SuffixIndex>>,
    /// Planner statistics, derived on first use and shared by every
    /// executor over this version. A `OnceLock` keeps derivation lazy
    /// without locking readers that only navigate.
    stats: OnceLock<Arc<DocStatistics>>,
    cache: Arc<PlanCache>,
}

const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<DocVersion>();
    assert_send_sync::<VersionedDoc>();
};

impl DocVersion {
    /// The generation this version was installed at (0 for the initial
    /// load; +1 per successful publish).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The succinct document itself.
    pub fn sdoc(&self) -> &SuccinctDoc {
        &self.sdoc
    }

    /// The value (σv) index built for this version, if enabled.
    pub fn value_index(&self) -> Option<&ValueIndex> {
        self.index.as_deref()
    }

    /// The suffix (substring) index built for this version, if enabled.
    pub fn suffix_index(&self) -> Option<&SuffixIndex> {
        self.suffix.as_deref()
    }

    /// Cost-model statistics for this version, derived on first use.
    pub fn statistics(&self) -> Arc<DocStatistics> {
        Arc::clone(self.stats.get_or_init(|| Arc::new(crate::context::statistics_of(&self.sdoc))))
    }

    /// The plan cache shared across this document's versions.
    pub fn plan_cache(&self) -> &Arc<PlanCache> {
        &self.cache
    }

    /// An executor over this snapshot: document, index, statistics and the
    /// shared plan cache scoped to this version's generation. Callers
    /// layer strategy / rules / governor on top.
    pub fn executor(&self) -> Executor<'_> {
        self.executor_with_cache(Arc::clone(&self.cache), format!("g{}", self.generation))
    }

    /// Like [`DocVersion::executor`], but against an externally shared
    /// cache (the server's process-wide one) under an explicit scope —
    /// conventionally `"{doc}@g{generation}"`, so documents and
    /// generations never collide in the shared key space.
    pub fn executor_with_cache(
        &self,
        cache: Arc<PlanCache>,
        scope: impl Into<String>,
    ) -> Executor<'_> {
        let mut ex = Executor::new(&self.sdoc)
            .with_statistics(self.statistics())
            .with_plan_cache(cache)
            .with_cache_scope(scope);
        if let Some(idx) = &self.index {
            ex = ex.with_index(idx);
        }
        ex
    }
}

/// `document()` callers navigate the snapshot exactly like the raw
/// succinct doc they used to get.
impl std::ops::Deref for DocVersion {
    type Target = SuccinctDoc;

    fn deref(&self) -> &SuccinctDoc {
        &self.sdoc
    }
}

/// The publication cell for one document: the current version behind a
/// short-critical-section `RwLock`, plus weak handles to retired versions
/// so reclamation stays observable without keeping them alive.
pub struct VersionedDoc {
    current: RwLock<Arc<DocVersion>>,
    retired: Mutex<Vec<Weak<DocVersion>>>,
}

impl VersionedDoc {
    /// Wrap an initial document as generation 0, no indexes, fresh cache.
    pub fn new(sdoc: SuccinctDoc) -> Self {
        VersionedDoc {
            current: RwLock::new(Arc::new(DocVersion {
                generation: 0,
                sdoc: Arc::new(sdoc),
                index: None,
                suffix: None,
                stats: OnceLock::new(),
                cache: Arc::new(PlanCache::default()),
            })),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// Capture the current version. The read lock is held only for the
    /// `Arc` clone; everything after runs lock-free against the snapshot.
    pub fn snapshot(&self) -> Arc<DocVersion> {
        Arc::clone(&self.current.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// The current generation.
    pub fn generation(&self) -> u64 {
        self.snapshot().generation
    }

    /// Publish `sdoc` as the next version. Indexes present on the current
    /// version are rebuilt for the new ranks *before* the publish lock is
    /// taken, so readers stay unblocked during the rebuild; the plan cache
    /// is carried over (generation scoping invalidates logically).
    pub fn install_document(&self, sdoc: SuccinctDoc) -> Arc<DocVersion> {
        let cur = self.snapshot();
        let sdoc = Arc::new(sdoc);
        let index = cur.index.as_ref().map(|_| Arc::new(ValueIndex::build(&sdoc)));
        let suffix = cur.suffix.as_ref().map(|_| Arc::new(SuffixIndex::build(&sdoc)));
        self.publish(DocVersion {
            generation: 0, // stamped under the publish lock
            sdoc,
            index,
            suffix,
            stats: OnceLock::new(),
            cache: Arc::clone(&cur.cache),
        })
    }

    /// Publish a successor that shares the current structure but has the
    /// value index built (`true`) or dropped (`false`). Statistics carry
    /// over (same document); the generation still bumps, so cached plans
    /// recompile and can pick up (or stop using) σv probes.
    pub fn set_value_index(&self, on: bool) -> Arc<DocVersion> {
        let cur = self.snapshot();
        let index = on.then(|| Arc::new(ValueIndex::build(&cur.sdoc)));
        self.publish(DocVersion {
            generation: 0,
            sdoc: Arc::clone(&cur.sdoc),
            index,
            suffix: cur.suffix.clone(),
            stats: carry_stats(&cur),
            cache: Arc::clone(&cur.cache),
        })
    }

    /// Publish a successor with the suffix index built or dropped; see
    /// [`VersionedDoc::set_value_index`].
    pub fn set_suffix_index(&self, on: bool) -> Arc<DocVersion> {
        let cur = self.snapshot();
        let suffix = on.then(|| Arc::new(SuffixIndex::build(&cur.sdoc)));
        self.publish(DocVersion {
            generation: 0,
            sdoc: Arc::clone(&cur.sdoc),
            index: cur.index.clone(),
            suffix,
            stats: carry_stats(&cur),
            cache: Arc::clone(&cur.cache),
        })
    }

    /// Versions still reachable: the current one plus every retired
    /// version some reader still holds. Drops dead weak handles as a side
    /// effect, so a steady state with no readers reports 1.
    pub fn live_versions(&self) -> usize {
        let mut retired = self.retired_list();
        retired.retain(|w| w.strong_count() > 0);
        1 + retired.len()
    }

    fn retired_list(&self) -> MutexGuard<'_, Vec<Weak<DocVersion>>> {
        self.retired.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Swap in `next` under the write lock, stamping its generation, and
    /// retire the displaced version as a weak handle.
    fn publish(&self, mut next: DocVersion) -> Arc<DocVersion> {
        let mut cur = self.current.write().unwrap_or_else(|e| e.into_inner());
        next.generation = cur.generation + 1;
        let next = Arc::new(next);
        let old = std::mem::replace(&mut *cur, Arc::clone(&next));
        drop(cur);
        let mut retired = self.retired_list();
        retired.retain(|w| w.strong_count() > 0);
        retired.push(Arc::downgrade(&old));
        next
    }
}

/// Share already-derived statistics with a successor over the same
/// structure (index toggles change plans, not cardinalities).
fn carry_stats(cur: &DocVersion) -> OnceLock<Arc<DocStatistics>> {
    let stats = OnceLock::new();
    if let Some(s) = cur.stats.get() {
        let _ = stats.set(Arc::clone(s));
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshots_are_isolated_from_installs() {
        let v = VersionedDoc::new(SuccinctDoc::parse("<r><a/></r>").unwrap());
        let before = v.snapshot();
        assert_eq!(before.generation(), 0);
        v.install_document(SuccinctDoc::parse("<r><a/><b/></r>").unwrap());
        // The old snapshot still answers from the old structure…
        assert_eq!(before.executor().query("/r/b").unwrap(), "");
        // …while fresh snapshots see the new one, at the next generation.
        let after = v.snapshot();
        assert_eq!(after.generation(), 1);
        assert_eq!(after.executor().query("/r/b").unwrap(), "<b/>");
    }

    #[test]
    fn retired_versions_are_freed_when_the_last_reader_drops() {
        let v = VersionedDoc::new(SuccinctDoc::parse("<r/>").unwrap());
        let held = v.snapshot();
        v.install_document(SuccinctDoc::parse("<r><x/></r>").unwrap());
        v.install_document(SuccinctDoc::parse("<r><x/><y/></r>").unwrap());
        // gen 0 is pinned by `held`; gen 1 had no reader and is gone.
        assert_eq!(v.live_versions(), 2);
        drop(held);
        assert_eq!(v.live_versions(), 1);
    }

    #[test]
    fn index_toggles_share_structure_and_bump_generation() {
        let v = VersionedDoc::new(SuccinctDoc::parse("<r><a>1</a></r>").unwrap());
        let plain = v.snapshot();
        let _ = plain.statistics(); // derive, so the successor can share
        let indexed = v.set_value_index(true);
        assert_eq!(indexed.generation(), 1);
        assert!(indexed.value_index().is_some());
        assert!(std::ptr::eq(plain.sdoc(), indexed.sdoc()), "structure is shared");
        assert!(Arc::ptr_eq(&plain.statistics(), &indexed.statistics()), "stats are shared");
        let dropped = v.set_value_index(false);
        assert!(dropped.value_index().is_none());
        assert_eq!(dropped.generation(), 2);
    }

    #[test]
    fn plan_cache_is_shared_and_generation_scoped() {
        let v = VersionedDoc::new(SuccinctDoc::parse("<r><a>1</a></r>").unwrap());
        let g0 = v.snapshot();
        g0.executor().query("/r/a").unwrap();
        g0.executor().query("/r/a").unwrap();
        // Same generation: second run hits.
        assert_eq!(g0.plan_cache().stats(), (1, 1, 0));
        let g1 = v.install_document(SuccinctDoc::parse("<r><a>2</a></r>").unwrap());
        assert!(Arc::ptr_eq(g0.plan_cache(), g1.plan_cache()), "cache is shared");
        // New generation: same text misses (logical invalidation), counters
        // keep accumulating across the install.
        g1.executor().query("/r/a").unwrap();
        assert_eq!(g1.plan_cache().stats(), (1, 2, 0));
        // The old snapshot still hits its own generation's entry.
        g0.executor().query("/r/a").unwrap();
        assert_eq!(g0.plan_cache().stats(), (2, 2, 0));
    }
}
