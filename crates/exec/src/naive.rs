//! Naive navigational path evaluation.
//!
//! Node-at-a-time interpretation of the full path AST — every axis, every
//! predicate form. This is three things at once:
//!
//! 1. the **semantic reference**: every other access method is checked
//!    against it in the soundness tests (E10);
//! 2. the **comparator** standing in for a mature navigational engine (§5's
//!    related work; the commercial system of [6]'s experiments);
//! 3. the **fallback** for paths outside the pattern-graph fragment
//!    (upward/sideways axes, disjunctive or positional predicates).
//!
//! Its pipelined evaluation exhibits the worst-case exponential behaviour of
//! Gottlob et al. [4] that experiment E4 reproduces: predicates are
//! re-evaluated per context node with no sharing.

use crate::context::{ExecContext, NodeRef, Val, XqError};
use xqp_algebra::value::effective_boolean;
use xqp_algebra::Item;
use xqp_storage::SNodeId;
use xqp_xml::Atomic;
use xqp_xpath::{Axis, CmpOp, NodeTest, PathExpr, PredOperand, Predicate};

/// Resolves `$var` references inside path predicates; returns `None` for
/// unbound names (which evaluation reports as an error).
pub type VarLookup<'a> = &'a dyn Fn(&str) -> Option<Val>;

/// Evaluate a path with no variable scope (bare XPath).
pub fn eval_path(
    ctx: &ExecContext<'_>,
    context: &[NodeRef],
    path: &PathExpr,
) -> Result<Vec<NodeRef>, XqError> {
    eval_path_with_vars(ctx, context, path, &|_| None)
}

/// Evaluate a path against a context sequence. Absolute paths ignore the
/// context and start at the document root. The result is in document order
/// without duplicates. `vars` resolves `$var` predicate operands.
pub fn eval_path_with_vars(
    ctx: &ExecContext<'_>,
    context: &[NodeRef],
    path: &PathExpr,
    vars: VarLookup<'_>,
) -> Result<Vec<NodeRef>, XqError> {
    let mut current: Vec<Ctx> = if path.absolute {
        vec![Ctx::DocRoot]
    } else {
        context.iter().map(|&n| Ctx::Node(n)).collect()
    };
    for step in &path.steps {
        let mut next: Vec<NodeRef> = Vec::new();
        let mut keep_doc_root = false;
        for c in &current {
            // The virtual document node survives `self`/`descendant-or-self`
            // node() steps (so `//x` can match the root element).
            if *c == Ctx::DocRoot
                && step.test == NodeTest::AnyNode
                && matches!(step.axis, Axis::SelfAxis | Axis::DescendantOrSelf)
                && step.predicates.is_empty()
            {
                keep_doc_root = true;
            }
            let mut candidates = axis_candidates(ctx, *c, step.axis, &step.test);
            for pred in &step.predicates {
                candidates = filter_predicate(ctx, candidates, pred, vars)?;
            }
            next.extend(candidates);
        }
        dedup_doc_order(&mut next);
        current = next.into_iter().map(Ctx::Node).collect();
        if keep_doc_root {
            current.insert(0, Ctx::DocRoot);
        }
    }
    let mut out: Vec<NodeRef> = current
        .into_iter()
        .filter_map(|c| match c {
            Ctx::Node(n) => Some(n),
            // `/` alone (or a trailing node() self step): the root element
            // stands in for the document node.
            Ctx::DocRoot => ctx.sdoc.root().map(NodeRef::Stored),
        })
        .collect();
    dedup_doc_order(&mut out);
    Ok(out)
}

/// Sort into document order and drop duplicates.
pub fn dedup_doc_order(nodes: &mut Vec<NodeRef>) {
    nodes.sort_unstable();
    nodes.dedup();
}

/// A context position: a real node or the virtual document root.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ctx {
    DocRoot,
    Node(NodeRef),
}

/// Nodes reached from `c` along `axis`, filtered by `test`, in axis order
/// (reverse axes yield nearest-first, as XPath positions require).
fn axis_candidates(ctx: &ExecContext<'_>, c: Ctx, axis: Axis, test: &NodeTest) -> Vec<NodeRef> {
    let mut out = Vec::new();
    match c {
        Ctx::DocRoot => axis_from_doc_root(ctx, axis, test, &mut out),
        Ctx::Node(n) => axis_from_node(ctx, n, axis, test, &mut out),
    }
    out
}

fn axis_from_doc_root(ctx: &ExecContext<'_>, axis: Axis, test: &NodeTest, out: &mut Vec<NodeRef>) {
    let Some(root) = ctx.sdoc.root() else { return };
    match axis {
        Axis::Child => {
            ctx.visit(1);
            push_if(ctx, NodeRef::Stored(root), test, out, Principal::Element);
        }
        Axis::Descendant => {
            // All stored nodes except attributes.
            for n in (0..ctx.sdoc.node_count() as u32).map(SNodeId) {
                ctx.visit(1);
                if !ctx.sdoc.is_attribute(n) {
                    push_if(ctx, NodeRef::Stored(n), test, out, Principal::Element);
                }
            }
        }
        Axis::DescendantOrSelf => {
            // The document node itself never matches a name test; descend.
            axis_from_doc_root(ctx, Axis::Descendant, test, out);
        }
        Axis::SelfAxis if *test == NodeTest::AnyNode => {
            // Virtual root as self: keep nothing representable; the `/` case
            // is handled by eval_path's final mapping.
        }
        _ => {}
    }
}

fn axis_from_node(
    ctx: &ExecContext<'_>,
    n: NodeRef,
    axis: Axis,
    test: &NodeTest,
    out: &mut Vec<NodeRef>,
) {
    match axis {
        Axis::SelfAxis => push_if(ctx, n, test, out, Principal::Element),
        Axis::Child => {
            for c in children_of(ctx, n) {
                ctx.visit(1);
                push_if(ctx, c, test, out, Principal::Element);
            }
        }
        Axis::Descendant | Axis::DescendantOrSelf => {
            if axis == Axis::DescendantOrSelf {
                push_if(ctx, n, test, out, Principal::Element);
            }
            descend(ctx, n, test, out);
        }
        Axis::Attribute => {
            for a in attributes_of(ctx, n) {
                ctx.visit(1);
                push_if(ctx, a, test, out, Principal::Attribute);
            }
        }
        Axis::Parent => {
            if let Some(p) = parent_of(ctx, n) {
                ctx.visit(1);
                push_if(ctx, p, test, out, Principal::Element);
            }
        }
        Axis::Ancestor | Axis::AncestorOrSelf => {
            if axis == Axis::AncestorOrSelf {
                push_if(ctx, n, test, out, Principal::Element);
            }
            let mut cur = parent_of(ctx, n);
            while let Some(p) = cur {
                ctx.visit(1);
                push_if(ctx, p, test, out, Principal::Element);
                cur = parent_of(ctx, p);
            }
        }
        Axis::FollowingSibling => {
            let mut cur = next_sibling_of(ctx, n);
            while let Some(s) = cur {
                ctx.visit(1);
                push_if(ctx, s, test, out, Principal::Element);
                cur = next_sibling_of(ctx, s);
            }
        }
        Axis::PrecedingSibling => {
            // Nearest-first (reverse document order), per axis semantics.
            let mut cur = prev_sibling_of(ctx, n);
            while let Some(s) = cur {
                ctx.visit(1);
                push_if(ctx, s, test, out, Principal::Element);
                cur = prev_sibling_of(ctx, s);
            }
        }
    }
}

fn descend(ctx: &ExecContext<'_>, n: NodeRef, test: &NodeTest, out: &mut Vec<NodeRef>) {
    for c in children_of(ctx, n) {
        ctx.visit(1);
        push_if(ctx, c, test, out, Principal::Element);
        descend(ctx, c, test, out);
    }
}

/// Which node kind a name test selects on this axis.
#[derive(Clone, Copy, PartialEq)]
enum Principal {
    Element,
    Attribute,
}

fn push_if(
    ctx: &ExecContext<'_>,
    n: NodeRef,
    test: &NodeTest,
    out: &mut Vec<NodeRef>,
    principal: Principal,
) {
    let ok = match test {
        NodeTest::AnyNode => true,
        NodeTest::Text => is_text(ctx, n),
        NodeTest::Name(t) => match principal {
            Principal::Element => is_element(ctx, n) && name_matches(ctx, n, t),
            Principal::Attribute => is_attribute(ctx, n) && name_matches(ctx, n, t),
        },
    };
    if ok {
        out.push(n);
    }
}

// ---- raw navigation over both arenas ------------------------------------------

pub(crate) fn children_of(ctx: &ExecContext<'_>, n: NodeRef) -> Vec<NodeRef> {
    match n {
        NodeRef::Stored(s) => {
            if !ctx.sdoc.is_element(s) {
                return Vec::new();
            }
            ctx.sdoc
                .children(s)
                .filter(|&c| !ctx.sdoc.is_attribute(c))
                .map(NodeRef::Stored)
                .collect()
        }
        NodeRef::Built(b) => ctx.with_built(|d| d.children(b).map(NodeRef::Built).collect()),
    }
}

pub(crate) fn attributes_of(ctx: &ExecContext<'_>, n: NodeRef) -> Vec<NodeRef> {
    match n {
        NodeRef::Stored(s) => {
            if !ctx.sdoc.is_element(s) {
                return Vec::new();
            }
            ctx.sdoc.attributes(s).map(NodeRef::Stored).collect()
        }
        NodeRef::Built(b) => {
            ctx.with_built(|d| d.attributes(b).iter().copied().map(NodeRef::Built).collect())
        }
    }
}

pub(crate) fn parent_of(ctx: &ExecContext<'_>, n: NodeRef) -> Option<NodeRef> {
    match n {
        NodeRef::Stored(s) => ctx.sdoc.parent(s).map(NodeRef::Stored),
        NodeRef::Built(b) => {
            ctx.with_built(|d| d.node(b).parent.filter(|&p| p != d.root()).map(NodeRef::Built))
        }
    }
}

fn next_sibling_of(ctx: &ExecContext<'_>, n: NodeRef) -> Option<NodeRef> {
    match n {
        NodeRef::Stored(s) => ctx.sdoc.next_sibling(s).map(NodeRef::Stored),
        NodeRef::Built(b) => ctx.with_built(|d| d.node(b).next_sibling.map(NodeRef::Built)),
    }
}

fn prev_sibling_of(ctx: &ExecContext<'_>, n: NodeRef) -> Option<NodeRef> {
    match n {
        NodeRef::Stored(s) => {
            // The succinct structure has no prev-sibling primitive; go via
            // the parent's child list (attributes skipped).
            let p = ctx.sdoc.parent(s)?;
            let mut prev = None;
            for c in ctx.sdoc.children(p) {
                if c == s {
                    return prev.map(NodeRef::Stored);
                }
                if !ctx.sdoc.is_attribute(c) {
                    prev = Some(c);
                }
            }
            None
        }
        NodeRef::Built(b) => ctx.with_built(|d| d.node(b).prev_sibling.map(NodeRef::Built)),
    }
}

fn is_element(ctx: &ExecContext<'_>, n: NodeRef) -> bool {
    ctx.is_element(n)
}

fn is_text(ctx: &ExecContext<'_>, n: NodeRef) -> bool {
    match n {
        NodeRef::Stored(s) => ctx.sdoc.is_text(s),
        NodeRef::Built(b) => ctx.with_built(|d| d.is_text(b)),
    }
}

fn is_attribute(ctx: &ExecContext<'_>, n: NodeRef) -> bool {
    match n {
        NodeRef::Stored(s) => ctx.sdoc.is_attribute(s),
        NodeRef::Built(b) => ctx.with_built(|d| d.is_attribute(b)),
    }
}

fn name_matches(ctx: &ExecContext<'_>, n: NodeRef, test: &str) -> bool {
    test == "*" || ctx.name_of(n).as_deref() == Some(test)
}

// ---- predicates ---------------------------------------------------------------

/// Filter a candidate list through one predicate; positions are 1-based
/// within the list (axis order).
fn filter_predicate(
    ctx: &ExecContext<'_>,
    candidates: Vec<NodeRef>,
    pred: &Predicate,
    vars: VarLookup<'_>,
) -> Result<Vec<NodeRef>, XqError> {
    let size = candidates.len();
    let mut out = Vec::with_capacity(size);
    for (i, n) in candidates.into_iter().enumerate() {
        if eval_predicate(ctx, n, pred, i + 1, size, vars)? {
            out.push(n);
        }
    }
    Ok(out)
}

/// Evaluate one predicate on one node.
pub fn eval_predicate(
    ctx: &ExecContext<'_>,
    node: NodeRef,
    pred: &Predicate,
    pos: usize,
    size: usize,
    vars: VarLookup<'_>,
) -> Result<bool, XqError> {
    match pred {
        Predicate::Exists(path) => Ok(!eval_path_with_vars(ctx, &[node], path, vars)?.is_empty()),
        Predicate::Position(-1) => Ok(pos == size),
        Predicate::Position(p) => Ok(*p >= 1 && pos == *p as usize),
        Predicate::And(a, b) => Ok(eval_predicate(ctx, node, a, pos, size, vars)?
            && eval_predicate(ctx, node, b, pos, size, vars)?),
        Predicate::Or(a, b) => Ok(eval_predicate(ctx, node, a, pos, size, vars)?
            || eval_predicate(ctx, node, b, pos, size, vars)?),
        Predicate::Not(a) => Ok(!eval_predicate(ctx, node, a, pos, size, vars)?),
        Predicate::Compare { lhs, op, rhs } => {
            let l = operand_atoms(ctx, node, lhs, vars)?;
            let r = operand_atoms(ctx, node, rhs, vars)?;
            Ok(general_compare(&l, *op, &r))
        }
    }
}

fn operand_atoms(
    ctx: &ExecContext<'_>,
    node: NodeRef,
    op: &PredOperand,
    vars: VarLookup<'_>,
) -> Result<Vec<Atomic>, XqError> {
    match op {
        PredOperand::Literal(a) => Ok(vec![a.clone()]),
        PredOperand::Path(p) => {
            let nodes = eval_path_with_vars(ctx, &[node], p, vars)?;
            Ok(nodes.into_iter().map(|n| ctx.typed_value(n)).collect())
        }
        PredOperand::Var { name, path } => {
            let val = vars(name)
                .ok_or_else(|| XqError::new(format!("unbound variable ${name} in predicate")))?;
            if path.steps.is_empty() {
                return Ok(ctx.atomize(&val));
            }
            let roots: Vec<NodeRef> = val.iter().filter_map(|i| i.as_node().copied()).collect();
            let nodes = eval_path_with_vars(ctx, &roots, path, vars)?;
            Ok(nodes.into_iter().map(|n| ctx.typed_value(n)).collect())
        }
    }
}

/// XQuery general comparison: true iff some pair of atoms satisfies the
/// operator.
pub fn general_compare(left: &[Atomic], op: CmpOp, right: &[Atomic]) -> bool {
    left.iter().any(|l| right.iter().any(|r| l.compare(r).is_some_and(|ord| op.eval(ord))))
}

/// Effective boolean value of a node/atom sequence.
pub fn ebv(v: &crate::context::Val) -> bool {
    effective_boolean(v)
}

/// Convenience: wrap node ids as items (used by callers and tests).
pub fn to_items(nodes: Vec<NodeRef>) -> crate::context::Val {
    nodes.into_iter().map(Item::Node).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqp_storage::SuccinctDoc;
    use xqp_xpath::parse_path;

    const BIB: &str = "<bib>\
        <book year=\"1994\"><title>TCP</title><author>Stevens</author><price>65</price></book>\
        <book year=\"2000\"><title>Data on the Web</title><author>Abiteboul</author><author>Buneman</author><price>39</price></book>\
        <article><title>X</title></article>\
        </bib>";

    fn run(doc: &SuccinctDoc, path: &str) -> Vec<String> {
        let ctx = ExecContext::new(doc);
        let p = parse_path(path).unwrap();
        eval_path(&ctx, &[], &p).unwrap().into_iter().map(|n| ctx.string_value(n)).collect()
    }

    fn names(doc: &SuccinctDoc, path: &str) -> Vec<String> {
        let ctx = ExecContext::new(doc);
        let p = parse_path(path).unwrap();
        eval_path(&ctx, &[], &p)
            .unwrap()
            .into_iter()
            .map(|n| ctx.name_of(n).unwrap_or_else(|| "#text".into()))
            .collect()
    }

    fn bib() -> SuccinctDoc {
        SuccinctDoc::parse(BIB).unwrap()
    }

    #[test]
    fn simple_child_paths() {
        let d = bib();
        assert_eq!(run(&d, "/bib/book/title"), ["TCP", "Data on the Web"]);
        assert_eq!(run(&d, "/bib/article/title"), ["X"]);
        assert_eq!(run(&d, "/nope"), Vec::<String>::new());
    }

    #[test]
    fn descendant_paths() {
        let d = bib();
        assert_eq!(run(&d, "//title").len(), 3);
        assert_eq!(run(&d, "//author").len(), 3);
        assert_eq!(run(&d, "/bib//price"), ["65", "39"]);
    }

    #[test]
    fn wildcard_and_node_tests() {
        let d = bib();
        assert_eq!(names(&d, "/bib/*"), ["book", "book", "article"]);
        assert_eq!(run(&d, "/bib/book/title/text()"), ["TCP", "Data on the Web"]);
        // node() on child axis: elements + texts, not attributes.
        assert_eq!(names(&d, "/bib/book/node()").len(), 7);
    }

    #[test]
    fn attribute_axis() {
        let d = bib();
        assert_eq!(run(&d, "/bib/book/@year"), ["1994", "2000"]);
        assert_eq!(run(&d, "/bib/book/@*"), ["1994", "2000"]);
        assert_eq!(run(&d, "/bib/article/@year"), Vec::<String>::new());
    }

    #[test]
    fn existence_predicates() {
        let d = bib();
        // Books with >0 authors: both; articles have none.
        assert_eq!(run(&d, "/bib/book[author]/title").len(), 2);
        assert_eq!(run(&d, "/bib/*[author]/title").len(), 2);
        assert_eq!(run(&d, "/bib/book[editor]").len(), 0);
        assert_eq!(run(&d, "/bib/book[@year]").len(), 2);
    }

    #[test]
    fn value_predicates() {
        let d = bib();
        assert_eq!(run(&d, "/bib/book[price > 50]/title"), ["TCP"]);
        assert_eq!(run(&d, "/bib/book[price < 50]/title"), ["Data on the Web"]);
        assert_eq!(run(&d, "/bib/book[@year = 1994]/title"), ["TCP"]);
        assert_eq!(run(&d, "/bib/book[@year = \"1994\"]/title"), ["TCP"]);
        assert_eq!(run(&d, "/bib/book[author = \"Buneman\"]/@year"), ["2000"]);
    }

    #[test]
    fn positional_predicates() {
        let d = bib();
        assert_eq!(run(&d, "/bib/book[1]/title"), ["TCP"]);
        assert_eq!(run(&d, "/bib/book[2]/title"), ["Data on the Web"]);
        assert_eq!(run(&d, "/bib/book[last()]/title"), ["Data on the Web"]);
        assert_eq!(run(&d, "/bib/book[3]"), Vec::<String>::new());
        assert_eq!(run(&d, "/bib/book/author[2]"), ["Buneman"]);
    }

    #[test]
    fn boolean_predicates() {
        let d = bib();
        assert_eq!(run(&d, "/bib/book[price > 50 or @year = 2000]/title").len(), 2);
        assert_eq!(run(&d, "/bib/book[price > 50 and @year = 2000]").len(), 0);
        assert_eq!(run(&d, "/bib/book[not(price > 50)]/title"), ["Data on the Web"]);
    }

    #[test]
    fn parent_and_ancestor_axes() {
        let d = bib();
        assert_eq!(names(&d, "/bib/book/title/.."), ["book", "book"]);
        assert_eq!(names(&d, "//author/ancestor::bib"), ["bib"]);
        assert_eq!(
            names(&d, "//author/ancestor-or-self::*"),
            ["bib", "book", "author", "book", "author", "author"]
        );
    }

    #[test]
    fn sibling_axes() {
        let d = bib();
        assert_eq!(names(&d, "/bib/book[1]/following-sibling::*"), ["book", "article"]);
        assert_eq!(names(&d, "/bib/article/preceding-sibling::*"), ["book", "book"]);
        assert_eq!(run(&d, "/bib/book/title/following-sibling::price"), ["65", "39"]);
        // Nearest-first positions on reverse axes:
        assert_eq!(names(&d, "/bib/article/preceding-sibling::*[1]/@year"), ["year"]);
        assert_eq!(run(&d, "/bib/article/preceding-sibling::*[1]/@year"), ["2000"]);
    }

    #[test]
    fn dedup_across_contexts() {
        let d = SuccinctDoc::parse("<r><a><x/></a><a><x/></a></r>").unwrap();
        // //a//x and //x same nodes, no duplicates
        assert_eq!(run(&d, "//a/ancestor::r").len(), 1);
        assert_eq!(run(&d, "//x").len(), 2);
    }

    #[test]
    fn nested_path_predicates() {
        let d = bib();
        assert_eq!(run(&d, "/bib[book/author = \"Stevens\"]/article/title"), ["X"]);
        assert_eq!(run(&d, "/bib/book[title = author]").len(), 0); // path-path compare
    }

    #[test]
    fn general_compare_existential() {
        // {3,5} > {4}: 5>4 true.
        let l = [Atomic::Integer(3), Atomic::Integer(5)];
        let r = [Atomic::Integer(4)];
        assert!(general_compare(&l, CmpOp::Gt, &r));
        assert!(general_compare(&l, CmpOp::Lt, &r));
        assert!(!general_compare(&[], CmpOp::Eq, &r));
    }

    #[test]
    fn counters_track_visits() {
        let d = bib();
        let ctx = ExecContext::new(&d);
        let p = parse_path("//title").unwrap();
        eval_path(&ctx, &[], &p).unwrap();
        assert!(ctx.counters().nodes_visited as usize >= d.node_count());
    }

    #[test]
    fn self_and_dotdot() {
        let d = bib();
        assert_eq!(names(&d, "/bib/book/."), ["book", "book"]);
        assert_eq!(names(&d, "/bib/book/../article"), ["article"]);
        assert_eq!(run(&d, "/bib/book/self::book/@year"), ["1994", "2000"]);
        assert_eq!(run(&d, "/bib/book/self::article").len(), 0);
    }
}
