//! Partitioned parallel pattern evaluation (`Strategy::Parallel`).
//!
//! The join-based physical operators split a pattern match into per-vertex
//! candidate interval lists and a sweep over them. Because the sweep is
//! exact with respect to its inputs, restricting the **output vertex's**
//! list to a subset S and sweeping yields exactly the matches whose output
//! node lies in S — the other vertex lists stay whole, so no cross-chunk
//! match is lost, and no false positive can appear (every thread result is
//! a subset of the full sweep's). Partitioning the output list into
//! contiguous document-order chunks therefore gives an embarrassingly
//! parallel decomposition whose union is the serial answer; this is the
//! per-subtree independence that makes τ/⋈s work distributable (cf. join
//! graph isolation, Grust et al.).
//!
//! Workers run under [`std::thread::scope`] sharing one [`ExecContext`]
//! (`Sync`: atomic counters, `OnceLock` lazy state). Each worker clones the
//! non-output candidate lists — O(total candidates) extra memory per
//! thread, bounded by the same streams the serial sweep reads. Per-chunk
//! results come back ordered and are combined by a k-way merge that
//! preserves document order.

use crate::context::ExecContext;
use crate::{structural, twig};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use xqp_algebra::{CostModel, TpmAccess};
use xqp_storage::{Interval, SNodeId};
use xqp_xpath::PatternGraph;

/// Below this many output candidates per worker, thread spawn overhead
/// outweighs the sweep; the partitioner caps the worker count accordingly.
const MIN_CHUNK: usize = 64;

/// Resolve a requested thread count: `0` means one worker per available
/// hardware thread.
pub fn effective_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        threads
    }
}

/// Evaluate a single-output pattern with up to `threads` workers
/// (`0` = auto). Results are identical to the serial join-based operators:
/// document-ordered, deduplicated output-node ids.
pub fn eval_pattern_parallel(
    ctx: &ExecContext<'_>,
    g: &PatternGraph,
    context: Option<SNodeId>,
    threads: usize,
) -> Vec<SNodeId> {
    let outputs = g.outputs();
    assert_eq!(outputs.len(), 1, "parallel evaluation needs one output vertex");
    let output = outputs[0];
    if g.unsatisfiable || ctx.sdoc.is_empty() {
        return Vec::new();
    }
    let threads = effective_threads(threads);

    // Physical sweep choice, by the same cost-model policy the serial Auto
    // strategy uses: the holistic twig join when the model picks it, the
    // binary semi-join sweep otherwise. (The NoK single-scan matcher has no
    // candidate lists to partition, so the parallel strategy always runs a
    // join-based sweep.)
    let cm = CostModel::new(ctx.stats());
    let use_twig = matches!(cm.choose_access(g), (TpmAccess::TwigStack, _));

    if output == g.root() {
        // Degenerate pattern (output is the virtual root): nothing to
        // partition, run the serial operator.
        return if use_twig {
            twig::eval_pattern_holistic(ctx, g, context)
        } else {
            structural::eval_pattern_binary(ctx, g, context)
        };
    }

    if use_twig {
        let streams = twig::holistic_streams(ctx, g, context);
        run_partitioned(ctx, g, streams, output, threads, twig::holistic_sweep)
    } else {
        let cand = structural::pattern_candidates(ctx, g, context);
        run_partitioned(ctx, g, cand, output, threads, structural::sweep)
    }
}

/// Partition `base[output]` into contiguous chunks, sweep each chunk on its
/// own scoped thread, and k-way-merge the ordered per-chunk results.
fn run_partitioned(
    ctx: &ExecContext<'_>,
    g: &PatternGraph,
    base: Vec<Vec<Interval>>,
    output: usize,
    threads: usize,
    sweep: for<'c, 'd> fn(
        &'c ExecContext<'d>,
        &'c PatternGraph,
        Vec<Vec<Interval>>,
    ) -> Vec<SNodeId>,
) -> Vec<SNodeId> {
    let chunks = partition(&base[output], threads);
    if chunks.len() <= 1 {
        // One worker (or an empty output stream): no point spawning.
        return sweep(ctx, g, base);
    }
    let parts: Vec<Vec<SNodeId>> = std::thread::scope(|scope| {
        let base = &base;
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                scope.spawn(move || {
                    let mut mine = base.clone();
                    mine[output] = chunk;
                    sweep(ctx, g, mine)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("parallel sweep worker panicked")).collect()
    });
    kway_merge(parts)
}

/// Split a document-ordered interval list into at most `threads` contiguous
/// chunks of at least [`MIN_CHUNK`] intervals (the last chunk takes the
/// remainder). Returns no more chunks than items.
fn partition(list: &[Interval], threads: usize) -> Vec<Vec<Interval>> {
    if list.is_empty() {
        return Vec::new();
    }
    let workers = threads.min(list.len().div_ceil(MIN_CHUNK)).max(1);
    let chunk = list.len().div_ceil(workers);
    list.chunks(chunk).map(<[Interval]>::to_vec).collect()
}

/// Merge ordered, duplicate-free id lists into one ordered, duplicate-free
/// list. The partitioned chunks produce disjoint ranges, but the merge does
/// not rely on that — it orders by a min-heap over the list heads and drops
/// duplicates, so any ordered inputs combine correctly.
pub fn kway_merge(mut parts: Vec<Vec<SNodeId>>) -> Vec<SNodeId> {
    match parts.len() {
        0 => return Vec::new(),
        1 => return parts.pop().expect("one part"),
        _ => {}
    }
    let total = parts.iter().map(Vec::len).sum();
    let mut heap: BinaryHeap<Reverse<(SNodeId, usize)>> = parts
        .iter()
        .enumerate()
        .filter(|(_, p)| !p.is_empty())
        .map(|(i, p)| Reverse((p[0], i)))
        .collect();
    let mut cursor = vec![1usize; parts.len()];
    let mut out: Vec<SNodeId> = Vec::with_capacity(total);
    while let Some(Reverse((node, i))) = heap.pop() {
        if out.last() != Some(&node) {
            out.push(node);
        }
        let c = cursor[i];
        if c < parts[i].len() {
            heap.push(Reverse((parts[i][c], i)));
            cursor[i] = c + 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqp_storage::SuccinctDoc;
    use xqp_xpath::parse_path;

    const DOC: &str = "<r><a><b>1</b></a><a><b>2</b><c/></a><a><b>3</b></a><d/></r>";

    fn pattern(path: &str) -> PatternGraph {
        PatternGraph::from_path(&parse_path(path).unwrap()).unwrap()
    }

    #[test]
    fn effective_threads_resolves_auto() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(3), 3);
    }

    #[test]
    fn parallel_matches_serial_operators() {
        let d = SuccinctDoc::parse(DOC).unwrap();
        let ctx = ExecContext::new(&d);
        for path in ["/r/a/b", "//a[c]/b", "//b", "/r//c", "//missing"] {
            let g = pattern(path);
            let serial = structural::eval_pattern_binary(&ctx, &g, None);
            for threads in [1, 2, 8] {
                let par = eval_pattern_parallel(&ctx, &g, None, threads);
                assert_eq!(par, serial, "path `{path}` threads {threads}");
            }
        }
    }

    #[test]
    fn parallel_respects_context_restriction() {
        let d = SuccinctDoc::parse(DOC).unwrap();
        let ctx = ExecContext::new(&d);
        let r = d.root().unwrap();
        let a2 = d.child_elements(r).nth(1).unwrap();
        let mut g = PatternGraph::empty();
        let last = g.graft_path(g.root(), &parse_path("b").unwrap()).unwrap().unwrap();
        g.mark_output(last);
        let serial = structural::eval_pattern_binary(&ctx, &g, Some(a2));
        let par = eval_pattern_parallel(&ctx, &g, Some(a2), 4);
        assert_eq!(par, serial);
        assert_eq!(par.len(), 1);
    }

    #[test]
    fn partition_bounds() {
        let iv = |i: u32| Interval { start: i, end: i, level: 1, node: SNodeId(i) };
        let list: Vec<Interval> = (0..10).map(iv).collect();
        // Few items: one chunk regardless of thread count.
        assert_eq!(partition(&list, 8).len(), 1);
        assert!(partition(&[], 8).is_empty());
        let big: Vec<Interval> = (0..1000).map(iv).collect();
        let chunks = partition(&big, 4);
        assert_eq!(chunks.len(), 4);
        assert_eq!(chunks.iter().map(Vec::len).sum::<usize>(), 1000);
        // Contiguity: concatenation reproduces the input order.
        let flat: Vec<u32> = chunks.iter().flatten().map(|iv| iv.start).collect();
        assert_eq!(flat, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn kway_merge_orders_and_dedups() {
        let ids = |v: &[u32]| v.iter().map(|&i| SNodeId(i)).collect::<Vec<_>>();
        assert_eq!(kway_merge(vec![]), ids(&[]));
        assert_eq!(kway_merge(vec![ids(&[1, 3])]), ids(&[1, 3]));
        assert_eq!(
            kway_merge(vec![ids(&[1, 4, 9]), ids(&[2, 4]), ids(&[]), ids(&[3, 10])]),
            ids(&[1, 2, 3, 4, 9, 10])
        );
    }
}
