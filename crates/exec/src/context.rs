//! Execution context, node references and runtime values.

use crate::governor::ResourceGovernor;
use crate::physical::EvalError;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use xqp_algebra::{DocStatistics, Item, Sequence};
use xqp_storage::{SNodeId, SuccinctDoc, TagStreams, ValueIndex};
use xqp_xml::{Atomic, Document, NodeId};

/// A reference to a node: either in the stored (succinct) document or in the
/// executor's output arena (a node built by a constructor).
///
/// Ordering is document order, with all stored nodes before all built nodes
/// (constructed trees have implementation-defined order; this one is stable
/// and total).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NodeRef {
    /// A node of the queried document.
    Stored(SNodeId),
    /// A node in the output arena.
    Built(NodeId),
}

/// A runtime value: a flat sequence of items over [`NodeRef`]s.
pub type Val = Sequence<NodeRef>;

/// Runtime failure (unknown function, type error, unsupported form).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XqError(pub String);

impl XqError {
    /// Build from anything stringy.
    pub fn new(msg: impl Into<String>) -> Self {
        XqError(msg.into())
    }

    /// Did this error originate from a resource-governor limit trip
    /// (deadline, memory budget, row cap, or cancellation)? The check is on
    /// the stable `"resource governor"` message marker, so it survives the
    /// flattening from [`EvalError`] and any diagnostic decoration the
    /// engine adds on top.
    pub fn is_resource_limit(&self) -> bool {
        self.0.contains("resource governor")
    }
}

impl fmt::Display for XqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "execution error: {}", self.0)
    }
}

impl std::error::Error for XqError {}

/// Work counters, the timing-independent effort measure the experiments use
/// (node visits survive machine noise; wall-clock comes from the bench
/// harness).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecCounters {
    /// Document nodes touched by navigation/scans.
    pub nodes_visited: u64,
    /// Intervals consumed by join-based operators.
    pub stream_items: u64,
    /// Binary structural joins performed.
    pub structural_joins: u64,
    /// Compiled plans served from the plan cache.
    pub plan_hits: u64,
    /// Queries that had to be compiled from scratch.
    pub plan_misses: u64,
    /// Compiled plans evicted to stay within cache capacity.
    pub plan_evictions: u64,
    /// Bytes written by the persistence layer (snapshots + WAL records);
    /// zero unless the document has a durable store attached.
    pub persist_bytes_written: u64,
    /// WAL records replayed when the durable store was opened.
    pub persist_records_replayed: u64,
    /// Log compactions performed by the durable store.
    pub persist_compactions: u64,
    /// WAL group commits (batched-fsync `log_batch` calls).
    pub persist_group_commits: u64,
    /// WAL records written through group commits.
    pub persist_group_records: u64,
    /// Largest single group-commit batch.
    pub persist_group_max_batch: u64,
    /// Buffer-pool fetches served from a resident page frame; zero unless
    /// the database serves paged documents through a pool.
    pub buffer_hits: u64,
    /// Buffer-pool fetches that had to read the page from disk.
    pub buffer_misses: u64,
    /// Page frames dropped by the pool's clock sweep.
    pub buffer_evictions: u64,
    /// High-water mark of simultaneously pinned page frames.
    pub buffer_pinned_peak: u64,
    /// Rows (total bindings) emitted by physical operators.
    pub phys_rows: u64,
    /// Batches pulled through the physical pipeline.
    pub phys_batches: u64,
    /// High-water mark of simultaneously-live intermediate bindings — the
    /// memory-shaped number experiment E16 compares between the streaming
    /// pipeline and the materializing interpreter.
    pub peak_bindings: u64,
    /// Cooperative resource-governor checks performed; zero when no governor
    /// was attached.
    pub governor_checks: u64,
    /// Governor limit trips recorded (sticky: 0 or 1 per governed query).
    pub governor_trips: u64,
}

/// Shared counter storage. Relaxed atomics: every counter is an independent
/// monotone tally — threads never coordinate through them, we only need each
/// increment to land exactly once.
#[derive(Default)]
struct CounterCells {
    nodes_visited: AtomicU64,
    stream_items: AtomicU64,
    structural_joins: AtomicU64,
    phys_rows: AtomicU64,
    phys_batches: AtomicU64,
    /// Gauge of currently-live intermediate bindings (not a snapshot field —
    /// only its high-water mark is reported).
    live_bindings: AtomicU64,
    peak_bindings: AtomicU64,
}

/// Everything evaluation needs: the stored document, optional indexes,
/// lazily-built tag streams, statistics and the output arena.
///
/// `Send + Sync`: the stored document and indexes are shared immutable
/// borrows, lazy statistics/streams are `OnceLock`s, counters are atomics,
/// and the output arena sits behind a `Mutex` — so one context can be shared
/// by the scoped worker threads of [`crate::parallel`] and by callers running
/// whole queries from multiple threads.
pub struct ExecContext<'a> {
    /// The queried document in succinct storage.
    pub sdoc: &'a SuccinctDoc,
    /// Optional content index (σv pushdown probes it).
    pub index: Option<&'a ValueIndex>,
    streams: OnceLock<TagStreams>,
    stats: OnceLock<Arc<DocStatistics>>,
    built: Mutex<Document>,
    counters: CounterCells,
    governor: Option<Arc<ResourceGovernor>>,
}

// Compile-time proof that the context (and hence the executor) can cross
// threads; if a non-Sync field sneaks back in, this fails to build.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ExecContext<'_>>();
};

impl<'a> ExecContext<'a> {
    /// Create a context over a stored document. Statistics and tag streams
    /// are built lazily — query setup must not pay O(n) unless the cost
    /// model or a join-based operator actually runs.
    pub fn new(sdoc: &'a SuccinctDoc) -> Self {
        ExecContext {
            sdoc,
            index: None,
            streams: OnceLock::new(),
            stats: OnceLock::new(),
            built: Mutex::new(Document::new()),
            counters: CounterCells::default(),
            governor: None,
        }
    }

    /// Cardinality statistics (built on first use unless seeded by
    /// [`Self::with_stats`]).
    pub fn stats(&self) -> &DocStatistics {
        self.stats.get_or_init(|| Arc::new(statistics_of(self.sdoc)))
    }

    /// Attach a value index.
    pub fn with_index(mut self, index: &'a ValueIndex) -> Self {
        self.index = Some(index);
        self
    }

    /// Seed the statistics with a pre-computed (typically per-document,
    /// cached-by-the-database) snapshot, so repeated queries don't re-derive
    /// them and updates can invalidate them centrally. A no-op if statistics
    /// were already initialized.
    pub fn with_stats(self, stats: Arc<DocStatistics>) -> Self {
        let _ = self.stats.set(stats);
        self
    }

    /// The tag streams, built on first use (join-based operators only).
    pub fn streams(&self) -> &TagStreams {
        self.streams.get_or_init(|| TagStreams::build(self.sdoc))
    }

    // ---- resource governor --------------------------------------------------

    /// Attach a per-query resource governor; every cooperative check point
    /// in the evaluation paths consults it through this context.
    pub fn with_governor(mut self, governor: Arc<ResourceGovernor>) -> Self {
        self.governor = Some(governor);
        self
    }

    /// The attached governor, if any.
    pub fn governor(&self) -> Option<&Arc<ResourceGovernor>> {
        self.governor.as_ref()
    }

    /// Cooperative governor check against the current live-binding gauge.
    /// One `Option` test when ungoverned.
    #[inline]
    pub fn governor_check(&self) -> Result<(), EvalError> {
        match &self.governor {
            None => Ok(()),
            Some(g) => g.check(self.counters.live_bindings.load(Ordering::Relaxed)),
        }
    }

    /// Governor check against the live gauge **plus** `extra` transient
    /// bindings the caller is holding (a materialized environment, a τ
    /// expansion stack) — the governor-facing twin of
    /// [`Self::bindings_pulse`].
    #[inline]
    pub fn governor_check_mem(&self, extra: u64) -> Result<(), EvalError> {
        match &self.governor {
            None => Ok(()),
            Some(g) => g.check(self.counters.live_bindings.load(Ordering::Relaxed) + extra),
        }
    }

    /// Polling form for loops that cannot return `Result` (the sweep
    /// function pointers shared with the parallel partitioner). `true` means
    /// stop early with partial state; the sticky trip is re-raised by the
    /// next `Result`-bearing check.
    #[inline]
    pub fn governor_should_stop(&self) -> bool {
        match &self.governor {
            None => false,
            Some(g) => g.should_stop(self.counters.live_bindings.load(Ordering::Relaxed)),
        }
    }

    /// Account `n` emitted result items against the governor's row cap.
    #[inline]
    pub fn governor_note_rows(&self, n: u64) -> Result<(), EvalError> {
        match &self.governor {
            None => Ok(()),
            Some(g) => g.note_rows(n),
        }
    }

    /// Enforce the row cap against the final, absolute result size (no
    /// accumulation — safe after streaming paths already noted their rows).
    #[inline]
    pub fn governor_check_total_rows(&self, total: u64) -> Result<(), EvalError> {
        match &self.governor {
            None => Ok(()),
            Some(g) => g.check_total_rows(total),
        }
    }

    /// Count `n` node visits.
    #[inline]
    pub fn visit(&self, n: u64) {
        self.counters.nodes_visited.fetch_add(n, Ordering::Relaxed);
    }

    /// Count `n` stream items consumed.
    #[inline]
    pub fn consume_stream(&self, n: u64) {
        self.counters.stream_items.fetch_add(n, Ordering::Relaxed);
    }

    /// Count one structural join.
    #[inline]
    pub fn count_join(&self) {
        self.counters.structural_joins.fetch_add(1, Ordering::Relaxed);
    }

    /// Count `n` rows emitted by a physical operator.
    #[inline]
    pub fn count_phys_rows(&self, n: u64) {
        self.counters.phys_rows.fetch_add(n, Ordering::Relaxed);
    }

    /// Count one batch pulled through the physical pipeline.
    #[inline]
    pub fn count_phys_batch(&self) {
        self.counters.phys_batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Register `n` intermediate bindings becoming live, updating the
    /// high-water mark. Pair with [`Self::bindings_dead`].
    #[inline]
    pub fn bindings_live(&self, n: u64) {
        let now = self.counters.live_bindings.fetch_add(n, Ordering::Relaxed) + n;
        self.counters.peak_bindings.fetch_max(now, Ordering::Relaxed);
    }

    /// Register `n` intermediate bindings going dead (consumed/dropped).
    #[inline]
    pub fn bindings_dead(&self, n: u64) {
        self.counters.live_bindings.fetch_sub(n, Ordering::Relaxed);
    }

    /// Register `n` bindings transiently live on top of the long-lived ones
    /// (a batch in flight, a materialized clause output): bumps the
    /// high-water mark without moving the live gauge.
    #[inline]
    pub fn bindings_pulse(&self, n: u64) {
        let now = self.counters.live_bindings.load(Ordering::Relaxed) + n;
        self.counters.peak_bindings.fetch_max(now, Ordering::Relaxed);
    }

    /// Snapshot the counters.
    pub fn counters(&self) -> ExecCounters {
        let gov = self.governor.as_ref().map(|g| g.stats()).unwrap_or_default();
        ExecCounters {
            nodes_visited: self.counters.nodes_visited.load(Ordering::Relaxed),
            stream_items: self.counters.stream_items.load(Ordering::Relaxed),
            structural_joins: self.counters.structural_joins.load(Ordering::Relaxed),
            phys_rows: self.counters.phys_rows.load(Ordering::Relaxed),
            phys_batches: self.counters.phys_batches.load(Ordering::Relaxed),
            peak_bindings: self.counters.peak_bindings.load(Ordering::Relaxed),
            governor_checks: gov.checks,
            governor_trips: gov.trips,
            ..ExecCounters::default()
        }
    }

    /// Reset the counters (between measured runs).
    pub fn reset_counters(&self) {
        self.counters.nodes_visited.store(0, Ordering::Relaxed);
        self.counters.stream_items.store(0, Ordering::Relaxed);
        self.counters.structural_joins.store(0, Ordering::Relaxed);
        self.counters.phys_rows.store(0, Ordering::Relaxed);
        self.counters.phys_batches.store(0, Ordering::Relaxed);
        self.counters.live_bindings.store(0, Ordering::Relaxed);
        self.counters.peak_bindings.store(0, Ordering::Relaxed);
    }

    // ---- output arena -------------------------------------------------------

    /// Run `f` with mutable access to the output arena.
    ///
    /// The arena lock is held only for the duration of `f`; do not call
    /// [`Self::with_built`]/[`Self::with_built_mut`] re-entrantly from `f`.
    pub fn with_built_mut<T>(&self, f: impl FnOnce(&mut Document) -> T) -> T {
        f(&mut self.built.lock().expect("built arena poisoned"))
    }

    /// Run `f` with shared access to the output arena.
    pub fn with_built<T>(&self, f: impl FnOnce(&Document) -> T) -> T {
        f(&self.built.lock().expect("built arena poisoned"))
    }

    // ---- node accessors (dispatch over NodeRef) ------------------------------

    /// XPath string value of a node.
    pub fn string_value(&self, n: NodeRef) -> String {
        match n {
            NodeRef::Stored(s) => self.sdoc.string_value(s),
            NodeRef::Built(b) => self.with_built(|d| d.string_value(b)),
        }
    }

    /// Atomized value of a node: **untyped** (a string), per the XQuery data
    /// model — comparisons and arithmetic promote it as needed. Eagerly
    /// typing here would corrupt string contexts (`"11e1"` is not `110`).
    pub fn typed_value(&self, n: NodeRef) -> Atomic {
        Atomic::Str(self.string_value(n))
    }

    /// Element/attribute name, if any.
    pub fn name_of(&self, n: NodeRef) -> Option<String> {
        match n {
            NodeRef::Stored(s) => {
                if self.sdoc.is_text(s) {
                    None
                } else {
                    Some(self.sdoc.name(s).to_string())
                }
            }
            NodeRef::Built(b) => self.with_built(|d| d.name(b).map(|q| q.as_lexical())),
        }
    }

    /// True if the node is an element.
    pub fn is_element(&self, n: NodeRef) -> bool {
        match n {
            NodeRef::Stored(s) => self.sdoc.is_element(s),
            NodeRef::Built(b) => self.with_built(|d| d.is_element(b)),
        }
    }

    /// Atomize a whole sequence (nodes → typed values, atoms pass through).
    pub fn atomize(&self, v: &Val) -> Vec<Atomic> {
        v.iter()
            .map(|item| match item {
                Item::Node(n) => self.typed_value(*n),
                Item::Atom(a) => a.clone(),
            })
            .collect()
    }
}

/// Derive cost-model statistics directly from the succinct document. Public
/// so the database layer can compute (and cache) them once per document
/// generation and seed every context via [`ExecContext::with_stats`].
pub fn statistics_of(sdoc: &SuccinctDoc) -> DocStatistics {
    let mut tag_counts = std::collections::HashMap::new();
    let mut elements = 0usize;
    let mut max_depth = 0usize;
    for n in (0..sdoc.node_count() as u32).map(SNodeId) {
        if sdoc.is_text(n) {
            continue;
        }
        if sdoc.is_element(n) {
            elements += 1;
            max_depth = max_depth.max(sdoc.depth(n));
        }
        *tag_counts.entry(sdoc.name(n).to_string()).or_insert(0) += 1;
    }
    DocStatistics::from_counts(sdoc.node_count(), elements, tag_counts, max_depth)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_doc() -> SuccinctDoc {
        SuccinctDoc::parse("<a x=\"1\"><b>7</b><c>hi</c></a>").unwrap()
    }

    #[test]
    fn noderef_ordering_stored_before_built() {
        assert!(NodeRef::Stored(SNodeId(100)) < NodeRef::Built(NodeId(0)));
        assert!(NodeRef::Stored(SNodeId(1)) < NodeRef::Stored(SNodeId(2)));
        assert!(NodeRef::Built(NodeId(1)) < NodeRef::Built(NodeId(2)));
    }

    #[test]
    fn context_accessors() {
        let sdoc = ctx_doc();
        let ctx = ExecContext::new(&sdoc);
        let root = NodeRef::Stored(sdoc.root().unwrap());
        assert_eq!(ctx.string_value(root), "7hi");
        assert_eq!(ctx.name_of(root), Some("a".into()));
        assert!(ctx.is_element(root));
    }

    #[test]
    fn built_nodes_work_too() {
        let sdoc = ctx_doc();
        let ctx = ExecContext::new(&sdoc);
        let built = ctx.with_built_mut(|d| {
            let root = d.root();
            let el = d.append_element(root, "out");
            d.append_text(el, "42");
            el
        });
        let r = NodeRef::Built(built);
        assert_eq!(ctx.string_value(r), "42");
        assert_eq!(ctx.typed_value(r), Atomic::Str("42".into()));
        assert_eq!(ctx.name_of(r), Some("out".into()));
    }

    #[test]
    fn statistics_derived_from_storage() {
        let sdoc = ctx_doc();
        let ctx = ExecContext::new(&sdoc);
        assert_eq!(ctx.stats().tag_count("b"), 1);
        assert_eq!(ctx.stats().tag_count("x"), 1);
        assert_eq!(ctx.stats().tag_count("*"), 3);
        assert!(ctx.stats().max_depth >= 2);
    }

    #[test]
    fn counters_accumulate_and_reset() {
        let sdoc = ctx_doc();
        let ctx = ExecContext::new(&sdoc);
        ctx.visit(5);
        ctx.count_join();
        ctx.consume_stream(3);
        let c = ctx.counters();
        assert_eq!(c.nodes_visited, 5);
        assert_eq!(c.structural_joins, 1);
        assert_eq!(c.stream_items, 3);
        ctx.reset_counters();
        assert_eq!(ctx.counters(), ExecCounters::default());
    }

    #[test]
    fn binding_gauge_tracks_high_water_mark() {
        let sdoc = ctx_doc();
        let ctx = ExecContext::new(&sdoc);
        ctx.bindings_live(10);
        ctx.bindings_live(5);
        ctx.bindings_dead(12);
        ctx.bindings_live(2);
        let c = ctx.counters();
        assert_eq!(c.peak_bindings, 15, "peak is the max of the live gauge");
        ctx.count_phys_rows(7);
        ctx.count_phys_batch();
        let c = ctx.counters();
        assert_eq!(c.phys_rows, 7);
        assert_eq!(c.phys_batches, 1);
        ctx.reset_counters();
        assert_eq!(ctx.counters(), ExecCounters::default());
    }

    #[test]
    fn injected_stats_are_used() {
        let sdoc = ctx_doc();
        let mut tags = std::collections::HashMap::new();
        tags.insert("fake".to_string(), 99usize);
        let seeded = Arc::new(DocStatistics::from_counts(1, 1, tags, 1));
        let ctx = ExecContext::new(&sdoc).with_stats(seeded);
        assert_eq!(ctx.stats().tag_count("fake"), 99);
    }

    #[test]
    fn streams_built_lazily() {
        let sdoc = ctx_doc();
        let ctx = ExecContext::new(&sdoc);
        let s = ctx.streams();
        assert!(s.total_len() > 0);
    }

    #[test]
    fn atomize_mixed_sequence() {
        let sdoc = ctx_doc();
        let ctx = ExecContext::new(&sdoc);
        let b = sdoc.child_elements(sdoc.root().unwrap()).next().unwrap();
        let v: Val = vec![Item::Node(NodeRef::Stored(b)), Item::Atom(Atomic::Str("x".into()))];
        let atoms = ctx.atomize(&v);
        assert_eq!(atoms, vec![Atomic::Str("7".into()), Atomic::Str("x".into())]);
    }
}
