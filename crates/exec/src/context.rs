//! Execution context, node references and runtime values.

use std::cell::{Cell, Ref, RefCell};
use std::fmt;
use xqp_algebra::{DocStatistics, Item, Sequence};
use xqp_storage::{SNodeId, SuccinctDoc, TagStreams, ValueIndex};
use xqp_xml::{Atomic, Document, NodeId};

/// A reference to a node: either in the stored (succinct) document or in the
/// executor's output arena (a node built by a constructor).
///
/// Ordering is document order, with all stored nodes before all built nodes
/// (constructed trees have implementation-defined order; this one is stable
/// and total).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NodeRef {
    /// A node of the queried document.
    Stored(SNodeId),
    /// A node in the output arena.
    Built(NodeId),
}

/// A runtime value: a flat sequence of items over [`NodeRef`]s.
pub type Val = Sequence<NodeRef>;

/// Runtime failure (unknown function, type error, unsupported form).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XqError(pub String);

impl XqError {
    /// Build from anything stringy.
    pub fn new(msg: impl Into<String>) -> Self {
        XqError(msg.into())
    }
}

impl fmt::Display for XqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "execution error: {}", self.0)
    }
}

impl std::error::Error for XqError {}

/// Work counters, the timing-independent effort measure the experiments use
/// (node visits survive machine noise; wall-clock comes from criterion).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecCounters {
    /// Document nodes touched by navigation/scans.
    pub nodes_visited: u64,
    /// Intervals consumed by join-based operators.
    pub stream_items: u64,
    /// Binary structural joins performed.
    pub structural_joins: u64,
}

#[derive(Default)]
struct CounterCells {
    nodes_visited: Cell<u64>,
    stream_items: Cell<u64>,
    structural_joins: Cell<u64>,
}

/// Everything evaluation needs: the stored document, optional indexes,
/// lazily-built tag streams, statistics and the output arena.
pub struct ExecContext<'a> {
    /// The queried document in succinct storage.
    pub sdoc: &'a SuccinctDoc,
    /// Optional content index (σv pushdown probes it).
    pub index: Option<&'a ValueIndex>,
    streams: RefCell<Option<TagStreams>>,
    stats: RefCell<Option<DocStatistics>>,
    built: RefCell<Document>,
    counters: CounterCells,
}

impl<'a> ExecContext<'a> {
    /// Create a context over a stored document. Statistics and tag streams
    /// are built lazily — query setup must not pay O(n) unless the cost
    /// model or a join-based operator actually runs.
    pub fn new(sdoc: &'a SuccinctDoc) -> Self {
        ExecContext {
            sdoc,
            index: None,
            streams: RefCell::new(None),
            stats: RefCell::new(None),
            built: RefCell::new(Document::new()),
            counters: CounterCells::default(),
        }
    }

    /// Cardinality statistics (built on first use).
    pub fn stats(&self) -> Ref<'_, DocStatistics> {
        if self.stats.borrow().is_none() {
            *self.stats.borrow_mut() = Some(statistics_of(self.sdoc));
        }
        Ref::map(self.stats.borrow(), |o| o.as_ref().expect("stats just built"))
    }

    /// Attach a value index.
    pub fn with_index(mut self, index: &'a ValueIndex) -> Self {
        self.index = Some(index);
        self
    }

    /// The tag streams, built on first use (join-based operators only).
    pub fn streams(&self) -> std::cell::Ref<'_, TagStreams> {
        if self.streams.borrow().is_none() {
            *self.streams.borrow_mut() = Some(TagStreams::build(self.sdoc));
        }
        std::cell::Ref::map(self.streams.borrow(), |o| {
            o.as_ref().expect("streams just built")
        })
    }

    /// Count `n` node visits.
    #[inline]
    pub fn visit(&self, n: u64) {
        self.counters.nodes_visited.set(self.counters.nodes_visited.get() + n);
    }

    /// Count `n` stream items consumed.
    #[inline]
    pub fn consume_stream(&self, n: u64) {
        self.counters.stream_items.set(self.counters.stream_items.get() + n);
    }

    /// Count one structural join.
    #[inline]
    pub fn count_join(&self) {
        self.counters.structural_joins.set(self.counters.structural_joins.get() + 1);
    }

    /// Snapshot the counters.
    pub fn counters(&self) -> ExecCounters {
        ExecCounters {
            nodes_visited: self.counters.nodes_visited.get(),
            stream_items: self.counters.stream_items.get(),
            structural_joins: self.counters.structural_joins.get(),
        }
    }

    /// Reset the counters (between measured runs).
    pub fn reset_counters(&self) {
        self.counters.nodes_visited.set(0);
        self.counters.stream_items.set(0);
        self.counters.structural_joins.set(0);
    }

    // ---- output arena -------------------------------------------------------

    /// Run `f` with mutable access to the output arena.
    pub fn with_built_mut<T>(&self, f: impl FnOnce(&mut Document) -> T) -> T {
        f(&mut self.built.borrow_mut())
    }

    /// Run `f` with shared access to the output arena.
    pub fn with_built<T>(&self, f: impl FnOnce(&Document) -> T) -> T {
        f(&self.built.borrow())
    }

    // ---- node accessors (dispatch over NodeRef) ------------------------------

    /// XPath string value of a node.
    pub fn string_value(&self, n: NodeRef) -> String {
        match n {
            NodeRef::Stored(s) => self.sdoc.string_value(s),
            NodeRef::Built(b) => self.with_built(|d| d.string_value(b)),
        }
    }

    /// Atomized value of a node: **untyped** (a string), per the XQuery data
    /// model — comparisons and arithmetic promote it as needed. Eagerly
    /// typing here would corrupt string contexts (`"11e1"` is not `110`).
    pub fn typed_value(&self, n: NodeRef) -> Atomic {
        Atomic::Str(self.string_value(n))
    }

    /// Element/attribute name, if any.
    pub fn name_of(&self, n: NodeRef) -> Option<String> {
        match n {
            NodeRef::Stored(s) => {
                if self.sdoc.is_text(s) {
                    None
                } else {
                    Some(self.sdoc.name(s).to_string())
                }
            }
            NodeRef::Built(b) => self.with_built(|d| d.name(b).map(|q| q.as_lexical())),
        }
    }

    /// True if the node is an element.
    pub fn is_element(&self, n: NodeRef) -> bool {
        match n {
            NodeRef::Stored(s) => self.sdoc.is_element(s),
            NodeRef::Built(b) => self.with_built(|d| d.is_element(b)),
        }
    }

    /// Atomize a whole sequence (nodes → typed values, atoms pass through).
    pub fn atomize(&self, v: &Val) -> Vec<Atomic> {
        v.iter()
            .map(|item| match item {
                Item::Node(n) => self.typed_value(*n),
                Item::Atom(a) => a.clone(),
            })
            .collect()
    }
}

/// Derive cost-model statistics directly from the succinct document.
fn statistics_of(sdoc: &SuccinctDoc) -> DocStatistics {
    let mut tag_counts = std::collections::HashMap::new();
    let mut elements = 0usize;
    let mut max_depth = 0usize;
    for n in (0..sdoc.node_count() as u32).map(SNodeId) {
        if sdoc.is_text(n) {
            continue;
        }
        if sdoc.is_element(n) {
            elements += 1;
            max_depth = max_depth.max(sdoc.depth(n));
        }
        *tag_counts.entry(sdoc.name(n).to_string()).or_insert(0) += 1;
    }
    DocStatistics::from_counts(sdoc.node_count(), elements, tag_counts, max_depth)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_doc() -> SuccinctDoc {
        SuccinctDoc::parse("<a x=\"1\"><b>7</b><c>hi</c></a>").unwrap()
    }

    #[test]
    fn noderef_ordering_stored_before_built() {
        assert!(NodeRef::Stored(SNodeId(100)) < NodeRef::Built(NodeId(0)));
        assert!(NodeRef::Stored(SNodeId(1)) < NodeRef::Stored(SNodeId(2)));
        assert!(NodeRef::Built(NodeId(1)) < NodeRef::Built(NodeId(2)));
    }

    #[test]
    fn context_accessors() {
        let sdoc = ctx_doc();
        let ctx = ExecContext::new(&sdoc);
        let root = NodeRef::Stored(sdoc.root().unwrap());
        assert_eq!(ctx.string_value(root), "7hi");
        assert_eq!(ctx.name_of(root), Some("a".into()));
        assert!(ctx.is_element(root));
    }

    #[test]
    fn built_nodes_work_too() {
        let sdoc = ctx_doc();
        let ctx = ExecContext::new(&sdoc);
        let built = ctx.with_built_mut(|d| {
            let root = d.root();
            let el = d.append_element(root, "out");
            d.append_text(el, "42");
            el
        });
        let r = NodeRef::Built(built);
        assert_eq!(ctx.string_value(r), "42");
        assert_eq!(ctx.typed_value(r), Atomic::Str("42".into()));
        assert_eq!(ctx.name_of(r), Some("out".into()));
    }

    #[test]
    fn statistics_derived_from_storage() {
        let sdoc = ctx_doc();
        let ctx = ExecContext::new(&sdoc);
        assert_eq!(ctx.stats().tag_count("b"), 1);
        assert_eq!(ctx.stats().tag_count("x"), 1);
        assert_eq!(ctx.stats().tag_count("*"), 3);
        assert!(ctx.stats().max_depth >= 2);
    }

    #[test]
    fn counters_accumulate_and_reset() {
        let sdoc = ctx_doc();
        let ctx = ExecContext::new(&sdoc);
        ctx.visit(5);
        ctx.count_join();
        ctx.consume_stream(3);
        let c = ctx.counters();
        assert_eq!(c.nodes_visited, 5);
        assert_eq!(c.structural_joins, 1);
        assert_eq!(c.stream_items, 3);
        ctx.reset_counters();
        assert_eq!(ctx.counters(), ExecCounters::default());
    }

    #[test]
    fn streams_built_lazily() {
        let sdoc = ctx_doc();
        let ctx = ExecContext::new(&sdoc);
        let s = ctx.streams();
        assert!(s.total_len() > 0);
    }

    #[test]
    fn atomize_mixed_sequence() {
        let sdoc = ctx_doc();
        let ctx = ExecContext::new(&sdoc);
        let b = sdoc.child_elements(sdoc.root().unwrap()).next().unwrap();
        let v: Val = vec![
            Item::Node(NodeRef::Stored(b)),
            Item::Atom(Atomic::Str("x".into())),
        ];
        let atoms = ctx.atomize(&v);
        assert_eq!(atoms, vec![Atomic::Str("7".into()), Atomic::Str("x".into())]);
    }
}
