//! Per-query resource governance: deadlines, memory budgets, row caps, and
//! cooperative cancellation.
//!
//! The paper's algebra admits plans whose intermediate `NestedList`s explode
//! combinatorially (Koch: even the non-recursive fragment is inherently
//! expensive in the worst case), so an engine serving untrusted queries needs
//! a way to stop one without killing the process. A [`ResourceGovernor`] is
//! attached to the `ExecContext` of one query and checked **cooperatively**
//! at bounded intervals by every evaluation path — each batch pull in the
//! streaming pipeline, each expression evaluation, the materializing
//! interpreter's binding pulses, TPM expansion stacks, γ construction, and
//! the structural/holistic sweep loops (including their parallel chunk
//! workers, which share the governor through the `Sync` context).
//!
//! Design points:
//!
//! * **Sticky first trip.** The first limit that fires is recorded with a
//!   compare-and-swap; every later check reports that same
//!   [`EvalError`](crate::physical::EvalError) variant. Evaluation paths that
//!   cannot return `Result` (the sweep function pointers shared with the
//!   parallel partitioner) instead *poll* [`ResourceGovernor::should_stop`]
//!   and bail out early with partial results — the next check in a
//!   `Result`-bearing layer converts the sticky trip into the error, so a
//!   truncated result can never escape to the caller.
//! * **Unwind, never panic.** Trips surface as typed `EvalError` variants
//!   carrying a stable `"resource governor:"` message prefix, so callers (and
//!   the differential oracle) can classify them without string plumbing.
//! * **Near-zero cost when idle.** With no governor attached a check is one
//!   `Option` test; with a governor attached but no limits set it is a few
//!   relaxed atomic loads and no clock read (`Instant::now` is only consulted
//!   when a deadline exists).

use crate::physical::EvalError;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared cancellation flag; clone it out of a governor (or create one
/// up front) and flip it from any thread to stop the query at its next
/// governor check.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Has [`CancelToken::cancel`] been called?
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Declarative per-query limits; `None` everywhere means ungoverned.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryLimits {
    /// Wall-clock budget, measured from governor creation.
    pub timeout: Option<Duration>,
    /// Memory budget in **live binding cells** (rows × bound variables held
    /// by the pipeline, or the materialized environment size) — the unit the
    /// engine's `peak_bindings` counter already reports.
    pub max_memory: Option<u64>,
    /// Cap on result items a query may produce.
    pub max_rows: Option<u64>,
}

impl QueryLimits {
    /// No limits at all.
    pub fn none() -> QueryLimits {
        QueryLimits::default()
    }

    /// Set the wall-clock budget.
    pub fn with_timeout(mut self, d: Duration) -> QueryLimits {
        self.timeout = Some(d);
        self
    }

    /// Set the live-binding memory budget.
    pub fn with_max_memory(mut self, cells: u64) -> QueryLimits {
        self.max_memory = Some(cells);
        self
    }

    /// Set the result-item cap.
    pub fn with_max_rows(mut self, rows: u64) -> QueryLimits {
        self.max_rows = Some(rows);
        self
    }

    /// True when every limit is unset (attaching a governor would only ever
    /// serve its cancel token).
    pub fn is_unlimited(&self) -> bool {
        self.timeout.is_none() && self.max_memory.is_none() && self.max_rows.is_none()
    }
}

/// Snapshot of a governor's activity, merged into `ExecCounters`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GovernorStats {
    /// Cooperative checks performed.
    pub checks: u64,
    /// Limit trips recorded (sticky: 0 or 1 per query).
    pub trips: u64,
}

const TRIP_NONE: u8 = 0;
const TRIP_DEADLINE: u8 = 1;
const TRIP_MEMORY: u8 = 2;
const TRIP_ROWS: u8 = 3;
const TRIP_CANCELLED: u8 = 4;

fn trip_code(e: EvalError) -> u8 {
    match e {
        EvalError::DeadlineExceeded => TRIP_DEADLINE,
        EvalError::MemoryBudgetExceeded => TRIP_MEMORY,
        EvalError::ResultLimitExceeded => TRIP_ROWS,
        EvalError::Cancelled => TRIP_CANCELLED,
        // Non-limit variants never trip a governor.
        EvalError::SortBufferMissing
        | EvalError::TpmResultMissing
        | EvalError::MixedTypeAggregate => TRIP_NONE,
    }
}

fn trip_error(code: u8) -> Option<EvalError> {
    match code {
        TRIP_DEADLINE => Some(EvalError::DeadlineExceeded),
        TRIP_MEMORY => Some(EvalError::MemoryBudgetExceeded),
        TRIP_ROWS => Some(EvalError::ResultLimitExceeded),
        TRIP_CANCELLED => Some(EvalError::Cancelled),
        _ => None,
    }
}

/// The per-query governor. Thread-safe: parallel sweep workers share it
/// through the `Sync` execution context.
#[derive(Debug)]
pub struct ResourceGovernor {
    deadline: Option<Instant>,
    max_memory: Option<u64>,
    max_rows: Option<u64>,
    cancel: CancelToken,
    rows_emitted: AtomicU64,
    checks: AtomicU64,
    tripped: AtomicU8,
}

impl ResourceGovernor {
    /// Governor for `limits` with a fresh cancel token. The deadline clock
    /// starts now.
    pub fn new(limits: QueryLimits) -> ResourceGovernor {
        ResourceGovernor::with_cancel(limits, CancelToken::new())
    }

    /// Governor for `limits` observing an externally held cancel token.
    pub fn with_cancel(limits: QueryLimits, cancel: CancelToken) -> ResourceGovernor {
        ResourceGovernor {
            deadline: limits.timeout.map(|t| Instant::now() + t),
            max_memory: limits.max_memory,
            max_rows: limits.max_rows,
            cancel,
            rows_emitted: AtomicU64::new(0),
            checks: AtomicU64::new(0),
            tripped: AtomicU8::new(TRIP_NONE),
        }
    }

    /// A clone of the governor's cancel token.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Time left before the deadline trips: `None` when no deadline is set,
    /// `Some(ZERO)` once it has passed. Retry layers use this to hand each
    /// attempt only the remaining budget, so client deadline and governor
    /// deadline agree.
    pub fn remaining_time(&self) -> Option<Duration> {
        self.deadline.map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Record the first trip; concurrent racers all return the winner so the
    /// reported error class is deterministic within one query.
    fn trip(&self, e: EvalError) -> EvalError {
        match self.tripped.compare_exchange(
            TRIP_NONE,
            trip_code(e),
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => e,
            Err(prev) => trip_error(prev).unwrap_or(e),
        }
    }

    /// The sticky trip, if any limit has fired.
    pub fn tripped(&self) -> Option<EvalError> {
        trip_error(self.tripped.load(Ordering::Relaxed))
    }

    /// One cooperative check. `live_memory` is the caller's current live
    /// binding-cell count (the pipeline gauge or a materialized-environment
    /// pulse). Returns the sticky trip once any limit has fired.
    pub fn check(&self, live_memory: u64) -> Result<(), EvalError> {
        self.checks.fetch_add(1, Ordering::Relaxed);
        if let Some(e) = self.tripped() {
            return Err(e);
        }
        if self.cancel.is_cancelled() {
            return Err(self.trip(EvalError::Cancelled));
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Err(self.trip(EvalError::DeadlineExceeded));
            }
        }
        if let Some(m) = self.max_memory {
            if live_memory > m {
                return Err(self.trip(EvalError::MemoryBudgetExceeded));
            }
        }
        Ok(())
    }

    /// Polling form of [`ResourceGovernor::check`] for loops that cannot
    /// return `Result` (the sweep function pointers). A `true` means: stop
    /// producing, unwind with whatever partial state you have — a later
    /// `Result`-bearing check will surface the recorded trip.
    pub fn should_stop(&self, live_memory: u64) -> bool {
        self.check(live_memory).is_err()
    }

    /// Account `n` emitted result items against the row cap.
    pub fn note_rows(&self, n: u64) -> Result<(), EvalError> {
        if let Some(e) = self.tripped() {
            return Err(e);
        }
        let total = self.rows_emitted.fetch_add(n, Ordering::Relaxed) + n;
        if let Some(cap) = self.max_rows {
            if total > cap {
                return Err(self.trip(EvalError::ResultLimitExceeded));
            }
        }
        Ok(())
    }

    /// Enforce the row cap against an **absolute** result size without
    /// accumulating it — the engine's final backstop for evaluation paths
    /// that do not stream their output through
    /// [`ResourceGovernor::note_rows`]. Safe to call after streaming paths
    /// already accounted the same rows.
    pub fn check_total_rows(&self, total: u64) -> Result<(), EvalError> {
        if let Some(e) = self.tripped() {
            return Err(e);
        }
        if let Some(cap) = self.max_rows {
            if total > cap {
                return Err(self.trip(EvalError::ResultLimitExceeded));
            }
        }
        Ok(())
    }

    /// Result items accounted so far.
    pub fn rows_emitted(&self) -> u64 {
        self.rows_emitted.load(Ordering::Relaxed)
    }

    /// Activity snapshot for counter merging.
    pub fn stats(&self) -> GovernorStats {
        GovernorStats {
            checks: self.checks.load(Ordering::Relaxed),
            trips: u64::from(self.tripped.load(Ordering::Relaxed) != TRIP_NONE),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ungoverned_checks_pass() {
        let g = ResourceGovernor::new(QueryLimits::none());
        for _ in 0..10 {
            assert!(g.check(u64::MAX).is_ok());
        }
        assert!(g.note_rows(1_000_000).is_ok());
        assert_eq!(g.tripped(), None);
        assert_eq!(g.stats().trips, 0);
        assert_eq!(g.stats().checks, 10);
    }

    #[test]
    fn deadline_trips_and_sticks() {
        let g = ResourceGovernor::new(QueryLimits::none().with_timeout(Duration::ZERO));
        assert_eq!(g.check(0), Err(EvalError::DeadlineExceeded));
        // Sticky: later checks report the same trip even with zero usage.
        assert_eq!(g.check(0), Err(EvalError::DeadlineExceeded));
        assert_eq!(g.tripped(), Some(EvalError::DeadlineExceeded));
        assert_eq!(g.stats().trips, 1);
    }

    #[test]
    fn memory_budget_trips() {
        let g = ResourceGovernor::new(QueryLimits::none().with_max_memory(100));
        assert!(g.check(100).is_ok());
        assert_eq!(g.check(101), Err(EvalError::MemoryBudgetExceeded));
        assert!(g.should_stop(0));
    }

    #[test]
    fn row_cap_trips() {
        let g = ResourceGovernor::new(QueryLimits::none().with_max_rows(3));
        assert!(g.note_rows(2).is_ok());
        assert!(g.note_rows(1).is_ok());
        assert_eq!(g.note_rows(1), Err(EvalError::ResultLimitExceeded));
        assert_eq!(g.rows_emitted(), 4);
        // The trip is visible to plain checks too.
        assert_eq!(g.check(0), Err(EvalError::ResultLimitExceeded));
    }

    #[test]
    fn absolute_row_check_does_not_accumulate() {
        let g = ResourceGovernor::new(QueryLimits::none().with_max_rows(3));
        assert!(g.note_rows(3).is_ok());
        // Absolute: checking the same final size again is not a second emit.
        assert!(g.check_total_rows(3).is_ok());
        assert_eq!(g.check_total_rows(4), Err(EvalError::ResultLimitExceeded));
    }

    #[test]
    fn cancellation_is_cooperative() {
        let g = ResourceGovernor::new(QueryLimits::none());
        let token = g.cancel_token();
        assert!(g.check(0).is_ok());
        token.cancel();
        assert_eq!(g.check(0), Err(EvalError::Cancelled));
    }

    #[test]
    fn first_trip_wins() {
        let g = ResourceGovernor::new(QueryLimits::none().with_max_memory(10).with_max_rows(1));
        assert_eq!(g.check(11), Err(EvalError::MemoryBudgetExceeded));
        // A later row-cap overrun still reports the original trip.
        assert_eq!(g.note_rows(5), Err(EvalError::MemoryBudgetExceeded));
    }

    #[test]
    fn limits_builder_and_unlimited() {
        assert!(QueryLimits::none().is_unlimited());
        let l = QueryLimits::none()
            .with_timeout(Duration::from_millis(5))
            .with_max_memory(7)
            .with_max_rows(9);
        assert!(!l.is_unlimited());
        assert_eq!(l.timeout, Some(Duration::from_millis(5)));
        assert_eq!(l.max_memory, Some(7));
        assert_eq!(l.max_rows, Some(9));
    }

    #[test]
    fn governor_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ResourceGovernor>();
        assert_send_sync::<CancelToken>();
    }
}
