//! The streaming physical-operator pipeline for FLWOR plans.
//!
//! The paper's two-layer design (§2) asks for "many physical operators that
//! implement the same [logical] functionalities", chosen by a cost model.
//! This module supplies the physical layer for the *list* operators: a
//! [`LogicalPlan`] pipeline is lowered by [`lower`] into a [`PhysicalPlan`]
//! of pull-based (Volcano-style) operators — [`PhysNode::EnvRoot`],
//! [`PhysNode::ForScan`], [`PhysNode::LetEval`], [`PhysNode::Filter`],
//! [`PhysNode::Sort`], [`PhysNode::TpmScan`] and [`PhysNode::Construct`] —
//! that stream total bindings batch-at-a-time through `next_batch()` instead
//! of materializing a whole [`xqp_algebra::Env`] between clauses.
//!
//! **Batch protocol.** A batch is a `Vec<Row>` of at most (softly)
//! [`BATCH_SIZE`] rows; a [`Row`] is one total binding, stored as a
//! persistent linked list so extending a binding shares its prefix with
//! every sibling — the same sharing the layered `Env` tree provides, without
//! keeping dead layers alive. `next_batch()` returns `Ok(None)` when an
//! operator is exhausted. `Sort` is the only pipeline breaker; `ForScan`
//! bounds its working set with a pull-through queue.
//!
//! **Costing.** [`lower`] runs [`CostModel::cost_plan`] once and annotates
//! every operator with its estimated rows and cost; execution fills in the
//! actual row/batch counts (shared `Arc<OpStats>`, so a cached plan
//! accumulates across runs) which `explain` renders side by side.
//!
//! **τ access.** A `TpmScan` always executes through the NoK matcher — it
//! is the only access method that produces the per-vertex confirmed sets
//! multi-variable binding derivation needs, and the only one that gives
//! optional vertices let-over-empty-match semantics. The cost model's
//! per-method estimates are still shown so the choice is auditable, and
//! compiled patterns *inside* for/let sources genuinely dispatch by
//! strategy (see [`crate::planner::eval_pattern`]).

use crate::context::{NodeRef, Val, XqError};
use crate::eval::{Evaluator, Scope};
use crate::naive;
use crate::nok;
use crate::planner::{self, Strategy};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use xqp_algebra::plan::{OrderKey, TpmVar};
use xqp_algebra::{CostModel, Expr, Item, JoinEdge, JoinSideDef, LogicalPlan, PathOp, TpmAccess};
use xqp_storage::SNodeId;
use xqp_xpath::{PathExpr, PatternGraph};

/// Soft cap on rows per batch. Small enough to keep intermediate bindings
/// bounded (experiment E16), large enough to amortize per-batch dispatch.
pub const BATCH_SIZE: usize = 64;

/// How the executor runs FLWOR plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalMode {
    /// Lower to the physical pipeline and stream batches (the default).
    #[default]
    Streaming,
    /// Interpret the logical plan directly, materializing the full `Env`
    /// between clauses — the reference semantics and the E16 baseline.
    Materializing,
}

impl EvalMode {
    /// Display name used by EXPLAIN renderings.
    pub fn name(self) -> &'static str {
        match self {
            EvalMode::Streaming => "streaming",
            EvalMode::Materializing => "materializing",
        }
    }
}

/// Typed evaluation failures. The pipeline-integrity variants are
/// unreachable through [`lower`] on a well-formed plan, but a malformed or
/// hand-built plan must degrade into an error result — not a panic that
/// poisons a fuzz run or a server thread. The resource-governor variants are
/// the cooperative limit trips raised by
/// [`crate::governor::ResourceGovernor`]; their messages share the stable
/// `"resource governor:"` prefix so callers can classify a limit trip after
/// the error has been flattened into an [`XqError`] (see
/// [`XqError::is_resource_limit`](crate::context::XqError::is_resource_limit)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalError {
    /// `Sort` was pulled and found its buffer unfilled after the fill phase.
    SortBufferMissing,
    /// A τ expansion frame was queued without a pattern-match result.
    TpmResultMissing,
    /// `min()`/`max()` applied to a sequence mixing incomparable type
    /// classes (boolean vs numeric vs string) — a type error under the
    /// spec, not a silent resolution through the internal rank order.
    MixedTypeAggregate,
    /// The query's wall-clock deadline passed.
    DeadlineExceeded,
    /// Live bindings exceeded the query's memory budget.
    MemoryBudgetExceeded,
    /// The query produced more result items than its row cap allows.
    ResultLimitExceeded,
    /// The query's cancel token was flipped.
    Cancelled,
}

impl EvalError {
    /// Human-readable description.
    pub fn message(self) -> &'static str {
        match self {
            EvalError::SortBufferMissing => "physical pipeline: sort buffer missing after fill",
            EvalError::TpmResultMissing => {
                "physical pipeline: τ expansion frame without a pattern-match result"
            }
            EvalError::MixedTypeAggregate => {
                "type error: min()/max() over a sequence of mixed types"
            }
            EvalError::DeadlineExceeded => "resource governor: deadline exceeded",
            EvalError::MemoryBudgetExceeded => "resource governor: memory budget exceeded",
            EvalError::ResultLimitExceeded => "resource governor: result limit exceeded",
            EvalError::Cancelled => "resource governor: query cancelled",
        }
    }

    /// Is this one of the governor's limit trips (as opposed to a
    /// pipeline-integrity failure)?
    pub fn is_limit(self) -> bool {
        matches!(
            self,
            EvalError::DeadlineExceeded
                | EvalError::MemoryBudgetExceeded
                | EvalError::ResultLimitExceeded
                | EvalError::Cancelled
        )
    }
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.message())
    }
}

impl From<EvalError> for XqError {
    fn from(e: EvalError) -> XqError {
        XqError::new(e.message())
    }
}

/// One total binding flowing through the pipeline: a persistent linked list
/// of `(var, value)` cells, so `bind` is O(1) and siblings share prefixes.
#[derive(Debug, Clone, Default)]
pub struct Row(Option<Arc<RowCell>>);

#[derive(Debug)]
struct RowCell {
    var: String,
    value: Val,
    parent: Row,
}

impl Row {
    /// The empty total binding (the `EnvRoot` row).
    pub fn empty() -> Row {
        Row(None)
    }

    /// Extend with one binding; the receiver is shared, not copied.
    pub fn bind(&self, var: &str, value: Val) -> Row {
        Row(Some(Arc::new(RowCell { var: var.to_string(), value, parent: self.clone() })))
    }

    /// Look up a variable; inner bindings shadow outer ones.
    pub fn get(&self, var: &str) -> Option<&Val> {
        let mut cur = &self.0;
        while let Some(cell) = cur {
            if cell.var == var {
                return Some(&cell.value);
            }
            cur = &cell.parent.0;
        }
        None
    }

    /// All bound `(var, value)` pairs, outermost first.
    pub fn entries(&self) -> Vec<(String, Val)> {
        let mut out = Vec::new();
        let mut cur = &self.0;
        while let Some(cell) = cur {
            out.push((cell.var.clone(), cell.value.clone()));
            cur = &cell.parent.0;
        }
        out.reverse();
        out
    }
}

/// Actual row/batch tallies of one operator, shared (`Arc`) between the
/// cached plan and its executions so `explain` can show accumulated actuals.
#[derive(Debug, Default)]
pub struct OpStats {
    /// Rows emitted so far.
    pub rows: AtomicU64,
    /// Batches emitted so far.
    pub batches: AtomicU64,
}

/// Estimate + actuals attached to every physical operator.
#[derive(Debug, Clone)]
pub struct OpInfo {
    /// Cost-model estimated output rows.
    pub est_rows: f64,
    /// Cost-model estimated work of this operator.
    pub est_cost: f64,
    /// Actual tallies (shared across executions of a cached plan).
    pub stats: Arc<OpStats>,
}

impl OpInfo {
    fn record(&self, ev: &Evaluator<'_, '_>, rows: usize) {
        self.stats.rows.fetch_add(rows as u64, Ordering::Relaxed);
        self.stats.batches.fetch_add(1, Ordering::Relaxed);
        ev.ctx.count_phys_rows(rows as u64);
        ev.ctx.count_phys_batch();
        ev.ctx.bindings_pulse(rows as u64);
    }
}

/// A physical operator node. Each wraps its upstream input (except
/// `EnvRoot`) and carries its [`OpInfo`] annotation.
#[derive(Debug, Clone)]
pub enum PhysNode {
    /// Emits exactly one empty row: the one empty total binding.
    EnvRoot {
        /// Estimate/actuals annotation.
        info: OpInfo,
    },
    /// `for $var in source` — evaluates the source per input row and emits
    /// one extended row per item, pulling input on demand.
    ForScan {
        /// Upstream operator.
        input: Box<PhysNode>,
        /// Bound variable.
        var: String,
        /// Source expression.
        source: Expr,
        /// Access method of an embedded compiled τ, if the source is one.
        tau: Option<(&'static str, f64)>,
        /// Bind the hidden focus variables (`#pos`/`#last`) alongside the
        /// item — set when the plan calls `position()`/`last()`.
        focus: bool,
        /// Estimate/actuals annotation.
        info: OpInfo,
    },
    /// `let $var := source` — one extended row per input row.
    LetEval {
        /// Upstream operator.
        input: Box<PhysNode>,
        /// Bound variable.
        var: String,
        /// Source expression.
        source: Expr,
        /// Access method of an embedded compiled τ, if the source is one.
        tau: Option<(&'static str, f64)>,
        /// Estimate/actuals annotation.
        info: OpInfo,
    },
    /// `where cond` — drops rows whose condition is false.
    Filter {
        /// Upstream operator.
        input: Box<PhysNode>,
        /// Condition (effective boolean value).
        cond: Expr,
        /// Estimate/actuals annotation.
        info: OpInfo,
    },
    /// `order by` — the pipeline breaker: drains its input, stable-sorts,
    /// re-emits in batches.
    Sort {
        /// Upstream operator.
        input: Box<PhysNode>,
        /// Sort keys, major first.
        keys: Vec<OrderKey>,
        /// Estimate/actuals annotation.
        info: OpInfo,
    },
    /// A fused multi-variable τ (rewrite R5): one pattern match shared by
    /// all executions, rows expanded per confirmed match sets.
    TpmScan {
        /// Upstream operator.
        input: Box<PhysNode>,
        /// The pattern graph.
        pattern: PatternGraph,
        /// Variables bound from pattern vertices, outermost first.
        vars: Vec<TpmVar>,
        /// The executed access method (always the NoK matcher — see the
        /// module docs) and the cost model's per-method estimates for the
        /// audit trail: `(nok, twigstack, binaryjoin)`.
        access: TpmAccess,
        /// Estimated cost of each access method: `(nok, twig, binary)`.
        alt_costs: (f64, f64, f64),
        /// Estimate/actuals annotation.
        info: OpInfo,
    },
    /// An isolated ⋈v join graph (rewrite R12): per input row, evaluates
    /// each side's sequence once, builds a string-keyed hash table per edge
    /// and probes in side order — replacing the nested-loop cross product
    /// while emitting rows in exactly its (lexicographic) order.
    HashJoin {
        /// Upstream operator.
        input: Box<PhysNode>,
        /// Join sides, in FLWOR source order.
        sides: Vec<JoinSideDef>,
        /// Equi-join edges between sides.
        edges: Vec<JoinEdge>,
        /// The cost model's preferred build order — an enumeration audit
        /// trail only; execution keeps source order, which FLWOR tuple
        /// order makes observable.
        order: Vec<usize>,
        /// Estimate/actuals annotation.
        info: OpInfo,
    },
    /// `return expr` — evaluates the return expression once per row and
    /// concatenates (γ when the expression is a constructor).
    Construct {
        /// Upstream operator.
        input: Box<PhysNode>,
        /// Returned expression.
        expr: Expr,
        /// Estimate/actuals annotation.
        info: OpInfo,
    },
}

impl PhysNode {
    /// The upstream operator, if any.
    pub fn input(&self) -> Option<&PhysNode> {
        match self {
            PhysNode::EnvRoot { .. } => None,
            PhysNode::ForScan { input, .. }
            | PhysNode::LetEval { input, .. }
            | PhysNode::Filter { input, .. }
            | PhysNode::Sort { input, .. }
            | PhysNode::TpmScan { input, .. }
            | PhysNode::HashJoin { input, .. }
            | PhysNode::Construct { input, .. } => Some(input),
        }
    }

    /// This operator's annotation.
    pub fn info(&self) -> &OpInfo {
        match self {
            PhysNode::EnvRoot { info }
            | PhysNode::ForScan { info, .. }
            | PhysNode::LetEval { info, .. }
            | PhysNode::Filter { info, .. }
            | PhysNode::Sort { info, .. }
            | PhysNode::TpmScan { info, .. }
            | PhysNode::HashJoin { info, .. }
            | PhysNode::Construct { info, .. } => info,
        }
    }

    fn label(&self) -> String {
        match self {
            PhysNode::EnvRoot { .. } => "env-root".to_string(),
            PhysNode::ForScan { var, source, tau, .. } => match tau {
                Some((name, cost)) => {
                    format!("for-scan ${var} in {source} τ={name}(cost {})", fmt_est(*cost))
                }
                None => format!("for-scan ${var} in {source}"),
            },
            PhysNode::LetEval { var, source, tau, .. } => match tau {
                Some((name, cost)) => {
                    format!("let-eval ${var} := {source} τ={name}(cost {})", fmt_est(*cost))
                }
                None => format!("let-eval ${var} := {source}"),
            },
            PhysNode::Filter { cond, .. } => format!("filter {cond}"),
            PhysNode::Sort { keys, .. } => {
                let ks: Vec<String> = keys
                    .iter()
                    .map(|k| format!("{}{}", k.expr, if k.descending { " descending" } else { "" }))
                    .collect();
                format!("sort [{}]", ks.join(", "))
            }
            PhysNode::TpmScan { vars, pattern, access, alt_costs, .. } => {
                let vs: Vec<String> =
                    vars.iter().map(|v| format!("${}←v{}", v.var, v.vertex)).collect();
                let (n, t, b) = alt_costs;
                format!(
                    "tpm-scan [{}] over pattern({} vertices) access={} costs[nok={}, twig={}, binary={}]",
                    vs.join(", "),
                    pattern.pattern_size(),
                    access.name(),
                    fmt_est(*n),
                    fmt_est(*t),
                    fmt_est(*b),
                )
            }
            PhysNode::HashJoin { sides, edges, order, .. } => {
                let vs: Vec<String> = sides.iter().map(|s| format!("${}", s.var)).collect();
                let es: Vec<String> = edges.iter().map(|e| e.render(sides)).collect();
                let os: Vec<String> = order.iter().map(|i| format!("${}", sides[*i].var)).collect();
                format!(
                    "hash-join [{}] on [{}] cost-order=[{}]",
                    vs.join(" ⋈ "),
                    es.join(", "),
                    os.join(", "),
                )
            }
            PhysNode::Construct { expr, .. } => format!("construct {expr}"),
        }
    }
}

/// A compiled physical plan: the operator tree plus whole-plan estimates and
/// the logical plan it was lowered from (used to match γ-embedded FLWORs
/// back to their cached pipeline).
#[derive(Debug, Clone)]
pub struct PhysicalPlan {
    /// The logical pipeline this plan was lowered from.
    pub source: LogicalPlan,
    /// Top operator (always a [`PhysNode::Construct`]).
    pub root: PhysNode,
    /// Estimated rows delivered to the consumer.
    pub est_out_rows: f64,
    /// Estimated total cost of the pipeline.
    pub est_total_cost: f64,
}

impl PhysicalPlan {
    /// Multi-line EXPLAIN rendering: a header line, then the operator tree
    /// top-first with per-operator estimated vs actual rows.
    pub fn render(&self, mode: EvalMode) -> String {
        let mut out = format!(
            "-- physical plan ({}, batch={BATCH_SIZE}): est {} rows out, total cost {}\n",
            mode.name(),
            fmt_est(self.est_out_rows),
            fmt_est(self.est_total_cost),
        );
        let mut chain = Vec::new();
        let mut cur = Some(&self.root);
        while let Some(n) = cur {
            chain.push(n);
            cur = n.input();
        }
        for (depth, node) in chain.iter().enumerate() {
            let info = node.info();
            let rows = info.stats.rows.load(Ordering::Relaxed);
            let batches = info.stats.batches.load(Ordering::Relaxed);
            out.push_str(&"  ".repeat(depth));
            out.push_str(&format!(
                "{}  (est {} rows, cost {}; actual {} rows / {} batches)\n",
                node.label(),
                fmt_est(info.est_rows),
                fmt_est(info.est_cost),
                rows,
                batches,
            ));
        }
        out
    }
}

/// Format an estimate: whole numbers plain, fractions to one decimal.
fn fmt_est(v: f64) -> String {
    if v.fract().abs() < 1e-9 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.1}")
    }
}

/// The access method (display name + estimated cost) a compiled-τ source
/// expression resolves to under `strategy`. `None` when the source is not a
/// compiled pattern, or the strategy evaluates it outside the three costed
/// methods (`naive` navigation, `parallel` partitioned sweeps).
fn expr_tau(cm: &CostModel<'_>, strategy: Strategy, e: &Expr) -> Option<(&'static str, f64)> {
    let Expr::CompiledPath { plan, .. } = e else { return None };
    let PathOp::TpmFrom { pattern, .. } = plan.as_ref() else { return None };
    let (access, cost) = match strategy {
        Strategy::Auto => cm.choose_access(pattern),
        Strategy::NoK => (TpmAccess::NokScan, cm.access_cost(pattern, TpmAccess::NokScan)),
        Strategy::TwigStack => {
            (TpmAccess::TwigStack, cm.access_cost(pattern, TpmAccess::TwigStack))
        }
        Strategy::BinaryJoin => {
            (TpmAccess::BinaryJoin, cm.access_cost(pattern, TpmAccess::BinaryJoin))
        }
        Strategy::Naive => return Some(("naive", cm.nok_scan_cost(pattern))),
        Strategy::Parallel { .. } => {
            // The partitioned sweep is join-based; report it under its own
            // name with the join-pipeline estimate.
            return Some(("parallel", cm.access_cost(pattern, TpmAccess::BinaryJoin)));
        }
    };
    Some((access.name(), cost))
}

/// Lower a logical FLWOR pipeline to a physical plan, annotating every
/// operator from one whole-plan [`CostModel::cost_plan`] pass.
pub fn lower(
    plan: &LogicalPlan,
    ctx: &crate::context::ExecContext<'_>,
    strategy: Strategy,
) -> Result<PhysicalPlan, XqError> {
    let stats = ctx.stats();
    let cm = CostModel::new(stats);
    let report = cm.cost_plan(plan);
    // Focus is a whole-plan property: any position()/last() call anywhere
    // in the pipeline makes every for-scan thread the hidden bindings, so
    // the innermost enclosing `for` wins by Row shadowing.
    let focus = plan.uses_focus();
    let clauses = plan.clauses();
    let mut node: Option<PhysNode> = None;
    let boxed = |n: Option<PhysNode>| -> Result<Box<PhysNode>, XqError> {
        n.map(Box::new).ok_or_else(|| XqError::new("plan clause with no upstream input"))
    };
    for (i, (clause, est)) in clauses.iter().zip(&report.clauses).enumerate() {
        let last = i + 1 == clauses.len();
        let info =
            OpInfo { est_rows: est.rows, est_cost: est.cost, stats: Arc::new(OpStats::default()) };
        if matches!(clause, LogicalPlan::ReturnClause { .. }) != last {
            return Err(XqError::new(if last {
                format!("plan must end in a return clause, found {clause:?}")
            } else {
                "nested return clause in binding pipeline".to_string()
            }));
        }
        node = Some(match clause {
            LogicalPlan::EnvRoot => PhysNode::EnvRoot { info },
            LogicalPlan::ForBind { var, source, .. } => PhysNode::ForScan {
                input: boxed(node)?,
                var: var.clone(),
                source: source.clone(),
                tau: expr_tau(&cm, strategy, source),
                focus,
                info,
            },
            LogicalPlan::LetBind { var, source, .. } => PhysNode::LetEval {
                input: boxed(node)?,
                var: var.clone(),
                source: source.clone(),
                tau: expr_tau(&cm, strategy, source),
                info,
            },
            LogicalPlan::Where { cond, .. } => {
                PhysNode::Filter { input: boxed(node)?, cond: cond.clone(), info }
            }
            LogicalPlan::OrderBy { keys, .. } => {
                PhysNode::Sort { input: boxed(node)?, keys: keys.clone(), info }
            }
            LogicalPlan::TpmBind { pattern, vars, .. } => PhysNode::TpmScan {
                input: boxed(node)?,
                pattern: pattern.clone(),
                vars: vars.clone(),
                access: TpmAccess::NokScan,
                alt_costs: (
                    cm.access_cost(pattern, TpmAccess::NokScan),
                    cm.access_cost(pattern, TpmAccess::TwigStack),
                    cm.access_cost(pattern, TpmAccess::BinaryJoin),
                ),
                info,
            },
            LogicalPlan::JoinGraph { sides, edges, .. } => {
                let cards: Vec<f64> =
                    sides.iter().map(|s| cm.expr_cardinality(&s.source)).collect();
                let pairs: Vec<(usize, usize)> = edges.iter().map(|e| (e.left, e.right)).collect();
                PhysNode::HashJoin {
                    input: boxed(node)?,
                    sides: sides.clone(),
                    edges: edges.clone(),
                    order: cm.choose_join_graph_order(&cards, &pairs),
                    info,
                }
            }
            LogicalPlan::ReturnClause { expr, .. } => {
                PhysNode::Construct { input: boxed(node)?, expr: expr.clone(), info }
            }
        });
    }
    Ok(PhysicalPlan {
        source: plan.clone(),
        root: node.ok_or_else(|| XqError::new("empty plan"))?,
        est_out_rows: report.out_rows,
        est_total_cost: report.total_cost,
    })
}

/// Per-operator pull state. Borrows the plan (`'x`); the evaluator and outer
/// scope are threaded through `next_batch` so the state carries no extra
/// lifetimes.
enum Src<'x> {
    Root {
        emitted: bool,
        info: &'x OpInfo,
    },
    For {
        input: Box<Src<'x>>,
        var: &'x str,
        source: &'x Expr,
        focus: bool,
        queue: VecDeque<Row>,
        done: bool,
        info: &'x OpInfo,
    },
    Let {
        input: Box<Src<'x>>,
        var: &'x str,
        source: &'x Expr,
        info: &'x OpInfo,
    },
    Filter {
        input: Box<Src<'x>>,
        cond: &'x Expr,
        info: &'x OpInfo,
    },
    Sort {
        input: Box<Src<'x>>,
        keys: &'x [OrderKey],
        buffer: Option<VecDeque<Row>>,
        info: &'x OpInfo,
    },
    Tpm {
        input: Box<Src<'x>>,
        pattern: &'x PatternGraph,
        vars: &'x [TpmVar],
        /// Per variable: `(anchor_vertex, anchor_var)` — resolved once.
        anchors: Vec<(usize, Option<String>)>,
        result: Option<nok::TpmResult>,
        /// Input rows awaiting expansion (live-counted while queued).
        queue: VecDeque<Row>,
        /// Depth-first expansion stack of `(next_var_layer, partial_row)`
        /// frames. Its size is bounded by the *sum* of per-layer fan-outs,
        /// not their product — this is what keeps a fused multi-`for` τ
        /// from materializing the whole cross product at once.
        work: Vec<(usize, Row)>,
        done: bool,
        info: &'x OpInfo,
    },
    Join {
        input: Box<Src<'x>>,
        sides: &'x [JoinSideDef],
        edges: &'x [JoinEdge],
        /// Fully joined rows awaiting emission (live-counted while queued).
        out: VecDeque<Row>,
        done: bool,
        info: &'x OpInfo,
    },
}

/// Scope for evaluating expressions under one row's bindings.
fn row_scope<'p>(outer: &'p Scope<'p>, row: &Row) -> Scope<'p> {
    outer.child(row.entries())
}

impl<'x> Src<'x> {
    fn build(node: &'x PhysNode) -> Result<Src<'x>, XqError> {
        Ok(match node {
            PhysNode::EnvRoot { info } => Src::Root { emitted: false, info },
            PhysNode::ForScan { input, var, source, focus, info, .. } => Src::For {
                input: Box::new(Src::build(input)?),
                var,
                source,
                focus: *focus,
                queue: VecDeque::new(),
                done: false,
                info,
            },
            PhysNode::LetEval { input, var, source, info, .. } => {
                Src::Let { input: Box::new(Src::build(input)?), var, source, info }
            }
            PhysNode::Filter { input, cond, info } => {
                Src::Filter { input: Box::new(Src::build(input)?), cond, info }
            }
            PhysNode::Sort { input, keys, info } => {
                Src::Sort { input: Box::new(Src::build(input)?), keys, buffer: None, info }
            }
            PhysNode::TpmScan { input, pattern, vars, info, .. } => Src::Tpm {
                input: Box::new(Src::build(input)?),
                pattern,
                vars,
                anchors: planner::tpm_anchor_chain(pattern, vars),
                result: None,
                queue: VecDeque::new(),
                work: Vec::new(),
                done: false,
                info,
            },
            PhysNode::HashJoin { input, sides, edges, info, .. } => Src::Join {
                input: Box::new(Src::build(input)?),
                sides,
                edges,
                out: VecDeque::new(),
                done: false,
                info,
            },
            PhysNode::Construct { .. } => {
                return Err(XqError::new("construct is driven by execute(), not pulled"))
            }
        })
    }

    /// Pull the next batch of rows; `Ok(None)` when exhausted.
    fn next_batch(
        &mut self,
        ev: &Evaluator<'_, '_>,
        scope: &Scope<'_>,
    ) -> Result<Option<Vec<Row>>, XqError> {
        // Cooperative governor check once per pull: every operator funnels
        // through here, so deadlines/budgets are observed at (sub-)batch
        // granularity on every pipeline shape.
        ev.ctx.governor_check()?;
        match self {
            Src::Root { emitted, info } => {
                if *emitted {
                    return Ok(None);
                }
                *emitted = true;
                let out = vec![Row::empty()];
                info.record(ev, out.len());
                Ok(Some(out))
            }
            Src::For { input, var, source, focus, queue, done, info } => {
                let mut out = Vec::new();
                loop {
                    while out.len() < BATCH_SIZE {
                        let Some(row) = queue.pop_front() else { break };
                        ev.ctx.bindings_dead(1);
                        let s = row_scope(scope, &row);
                        let seq = ev.eval(source, &s)?;
                        let n = seq.len() as i64;
                        for (i, item) in seq.into_iter().enumerate() {
                            let mut next = row.bind(var, vec![item]);
                            if *focus {
                                // The hidden focus bindings: position is
                                // 1-based, and inner for-scans shadow outer
                                // ones exactly like ordinary variables.
                                next = next
                                    .bind(
                                        crate::functions::FOCUS_POS,
                                        vec![Item::Atom(xqp_xml::Atomic::Integer(i as i64 + 1))],
                                    )
                                    .bind(
                                        crate::functions::FOCUS_LAST,
                                        vec![Item::Atom(xqp_xml::Atomic::Integer(n))],
                                    );
                            }
                            out.push(next);
                        }
                    }
                    if out.len() >= BATCH_SIZE || *done {
                        break;
                    }
                    match input.next_batch(ev, scope)? {
                        Some(batch) => {
                            ev.ctx.bindings_live(batch.len() as u64);
                            queue.extend(batch);
                        }
                        None => *done = true,
                    }
                }
                if out.is_empty() {
                    return Ok(None);
                }
                info.record(ev, out.len());
                Ok(Some(out))
            }
            Src::Let { input, var, source, info } => match input.next_batch(ev, scope)? {
                None => Ok(None),
                Some(batch) => {
                    let mut out = Vec::with_capacity(batch.len());
                    for row in batch {
                        let s = row_scope(scope, &row);
                        let seq = ev.eval(source, &s)?;
                        out.push(row.bind(var, seq));
                    }
                    info.record(ev, out.len());
                    Ok(Some(out))
                }
            },
            Src::Filter { input, cond, info } => loop {
                match input.next_batch(ev, scope)? {
                    None => return Ok(None),
                    Some(batch) => {
                        let mut out = Vec::new();
                        for row in batch {
                            let s = row_scope(scope, &row);
                            if naive::ebv(&ev.eval(cond, &s)?) {
                                out.push(row);
                            }
                        }
                        if !out.is_empty() {
                            info.record(ev, out.len());
                            return Ok(Some(out));
                        }
                    }
                }
            },
            Src::Sort { input, keys, buffer, info } => {
                if buffer.is_none() {
                    let mut all: Vec<Row> = Vec::new();
                    while let Some(batch) = input.next_batch(ev, scope)? {
                        ev.ctx.bindings_live(batch.len() as u64);
                        all.extend(batch);
                    }
                    let mut keyed = Vec::with_capacity(all.len());
                    for row in all {
                        let s = row_scope(scope, &row);
                        let key = ev.order_key(keys, &s)?;
                        keyed.push((key, row));
                    }
                    keyed.sort_by(|a, b| a.0.cmp(&b.0)); // stable
                    *buffer = Some(keyed.into_iter().map(|(_, r)| r).collect());
                }
                let Some(buf) = buffer.as_mut() else {
                    return Err(EvalError::SortBufferMissing.into());
                };
                let n = buf.len().min(BATCH_SIZE);
                if n == 0 {
                    return Ok(None);
                }
                let out: Vec<Row> = buf.drain(..n).collect();
                ev.ctx.bindings_dead(out.len() as u64);
                info.record(ev, out.len());
                Ok(Some(out))
            }
            Src::Tpm { input, pattern, vars, anchors, result, queue, work, done, info } => {
                let mut out = Vec::new();
                loop {
                    // Drain the depth-first expansion before touching the
                    // input: each frame either emits a finished row or pushes
                    // the next layer's bindings for one partial row.
                    while out.len() < BATCH_SIZE {
                        if let Some((layer, row)) = work.pop() {
                            if layer == vars.len() {
                                out.push(row);
                            } else {
                                let Some(res) = result.as_ref() else {
                                    return Err(EvalError::TpmResultMissing.into());
                                };
                                // The expansion stack is where a fused
                                // multi-`for` τ does its combinatorial work;
                                // check per frame so a deadline interrupts
                                // mid-expansion, and account the stacked
                                // partial rows against the memory budget.
                                ev.ctx.governor_check_mem(work.len() as u64)?;
                                expand_tpm_layer(
                                    ev, pattern, vars, anchors, res, layer, &row, work,
                                );
                            }
                        } else if let Some(row) = queue.pop_front() {
                            ev.ctx.bindings_dead(1);
                            result.get_or_insert_with(|| nok::match_pattern(ev.ctx, pattern, None));
                            work.push((0, row));
                        } else {
                            break;
                        }
                    }
                    if out.len() >= BATCH_SIZE || *done {
                        break;
                    }
                    match input.next_batch(ev, scope)? {
                        Some(batch) => {
                            ev.ctx.bindings_live(batch.len() as u64);
                            queue.extend(batch);
                        }
                        None => *done = true,
                    }
                }
                if out.is_empty() {
                    return Ok(None);
                }
                info.record(ev, out.len());
                Ok(Some(out))
            }
            Src::Join { input, sides, edges, out, done, info } => {
                let mut batch = Vec::new();
                loop {
                    while batch.len() < BATCH_SIZE {
                        let Some(row) = out.pop_front() else { break };
                        ev.ctx.bindings_dead(1);
                        batch.push(row);
                    }
                    if batch.len() >= BATCH_SIZE || *done {
                        break;
                    }
                    match input.next_batch(ev, scope)? {
                        Some(rows) => {
                            for row in rows {
                                expand_join_row(ev, scope, sides, edges, &row, out)?;
                            }
                        }
                        None => *done = true,
                    }
                }
                if batch.is_empty() {
                    return Ok(None);
                }
                info.record(ev, batch.len());
                Ok(Some(batch))
            }
        }
    }
}

/// String hash keys for every item of one join side under an optional
/// relative key path: the atomizations of the key expression's result.
/// `Ok(None)` when any key value atomizes outside the string domain —
/// impossible for R12-isolated joins (sides are node sequences, and node
/// atomization always yields an untyped string), but a hand-built plan
/// could do it, and hash equality is only exact for strings; that edge
/// then degrades to evaluating its reference predicate per candidate.
fn side_key_sets(
    ev: &Evaluator<'_, '_>,
    scope: &Scope<'_>,
    base: &Row,
    var: &str,
    key: &Option<PathExpr>,
    seq: &Val,
) -> Result<Option<Vec<Vec<String>>>, XqError> {
    let key_expr = key.as_ref().map(|p| Expr::var_path(var, p.clone()));
    let mut out = Vec::with_capacity(seq.len());
    for item in seq {
        let val: Val = match &key_expr {
            None => vec![item.clone()],
            Some(e) => {
                let bound = base.bind(var, vec![item.clone()]);
                let s = row_scope(scope, &bound);
                ev.eval(e, &s)?
            }
        };
        let mut keys = Vec::with_capacity(val.len());
        for atom in ev.ctx.atomize(&val) {
            match atom {
                xqp_xml::Atomic::Str(s) => keys.push(s),
                _ => return Ok(None),
            }
        }
        out.push(keys);
    }
    Ok(Some(out))
}

/// Per-item string key sets for one side of an edge.
type KeySets = Vec<Vec<String>>;
/// Hash table from key to the later side's ascending item indexes.
type KeyIndex = HashMap<String, Vec<usize>>;

/// One edge, prepared for probing: the earlier side's per-item key sets
/// plus a hash table over the later side's items (`aid`), or — when the
/// keys left the string domain — just the reference predicate.
struct EdgeProbe {
    lo: usize,
    hi: usize,
    aid: Option<(KeySets, KeyIndex)>,
    pred: Expr,
}

/// Ascending-sorted intersection of two ascending index lists.
fn intersect_sorted(a: &[usize], b: &[usize]) -> Vec<usize> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Expand one upstream row through the join graph: evaluate each side's
/// sequence (stopping at the first empty side, exactly like the nested
/// loop, which never reaches a later `for` source once an earlier one
/// produced nothing), build one hash table per edge, then probe stage by
/// stage in side order. Candidates stay in ascending item order at every
/// stage, so rows come out in exactly the nested-loop order.
fn expand_join_row(
    ev: &Evaluator<'_, '_>,
    scope: &Scope<'_>,
    sides: &[JoinSideDef],
    edges: &[JoinEdge],
    base: &Row,
    out: &mut VecDeque<Row>,
) -> Result<(), XqError> {
    let mut seqs: Vec<Val> = Vec::with_capacity(sides.len());
    for side in sides {
        let s = row_scope(scope, base);
        let seq = ev.eval(&side.source, &s)?;
        let empty = seq.is_empty();
        seqs.push(seq);
        // The build side is held in full; charge it against the memory
        // budget as it accumulates, before any probing starts.
        ev.ctx.governor_check_mem(seqs.iter().map(|q| q.len() as u64).sum())?;
        if empty {
            return Ok(());
        }
    }
    let mut probes: Vec<EdgeProbe> = Vec::with_capacity(edges.len());
    for e in edges {
        // Normalize so the probe always runs at the *later* stage, where
        // the earlier side's item is already chosen.
        let (lo, lo_key, hi, hi_key) = if e.left < e.right {
            (e.left, &e.left_key, e.right, &e.right_key)
        } else {
            (e.right, &e.right_key, e.left, &e.left_key)
        };
        let lo_keys = side_key_sets(ev, scope, base, &sides[lo].var, lo_key, &seqs[lo])?;
        let hi_keys = side_key_sets(ev, scope, base, &sides[hi].var, hi_key, &seqs[hi])?;
        let aid = match (lo_keys, hi_keys) {
            (Some(lo_keys), Some(hi_keys)) => {
                let mut table: HashMap<String, Vec<usize>> = HashMap::new();
                for (idx, keys) in hi_keys.into_iter().enumerate() {
                    for k in keys {
                        let slot = table.entry(k).or_default();
                        // An item may carry duplicate keys; index it once.
                        if slot.last() != Some(&idx) {
                            slot.push(idx);
                        }
                    }
                }
                Some((lo_keys, table))
            }
            _ => None,
        };
        probes.push(EdgeProbe { lo, hi, aid, pred: e.as_expr(sides) });
    }
    join_probe(ev, scope, sides, &seqs, &probes, 0, &mut Vec::new(), base, out)
}

/// Probe one stage of the join: intersect the hash hits of every edge
/// landing on this stage (full scan when none), bind each surviving item
/// and recurse; a finished combination is pushed as an output row.
#[allow(clippy::too_many_arguments)]
fn join_probe(
    ev: &Evaluator<'_, '_>,
    scope: &Scope<'_>,
    sides: &[JoinSideDef],
    seqs: &[Val],
    probes: &[EdgeProbe],
    stage: usize,
    chosen: &mut Vec<usize>,
    row: &Row,
    out: &mut VecDeque<Row>,
) -> Result<(), XqError> {
    if stage == sides.len() {
        out.push_back(row.clone());
        ev.ctx.bindings_live(1);
        ev.ctx.governor_check()?;
        return Ok(());
    }
    let mut cand: Option<Vec<usize>> = None;
    for p in probes.iter().filter(|p| p.hi == stage) {
        let Some((lo_keys, table)) = &p.aid else { continue };
        let mut hits: Vec<usize> = lo_keys[chosen[p.lo]]
            .iter()
            .flat_map(|k| table.get(k).into_iter().flatten().copied())
            .collect();
        hits.sort_unstable();
        hits.dedup();
        cand = Some(match cand {
            None => hits,
            Some(prev) => intersect_sorted(&prev, &hits),
        });
    }
    let cand = cand.unwrap_or_else(|| (0..seqs[stage].len()).collect());
    'next: for idx in cand {
        let next = row.bind(&sides[stage].var, vec![seqs[stage][idx].clone()]);
        for p in probes.iter().filter(|p| p.hi == stage && p.aid.is_none()) {
            let s = row_scope(scope, &next);
            if !naive::ebv(&ev.eval(&p.pred, &s)?) {
                continue 'next;
            }
        }
        chosen.push(idx);
        join_probe(ev, scope, sides, seqs, probes, stage + 1, chosen, &next, out)?;
        chosen.pop();
    }
    Ok(())
}

/// Expand one depth-first frame: bind `vars[layer]` for `row` through the
/// confirmed match sets of the τ and push the successor frames. Successors
/// go on the stack in reverse, so the first binding pops first — the
/// depth-first drain emits finished rows in the same lexicographic order
/// as layer-wise `Env` extension, and the streaming and materializing
/// pipelines agree exactly.
#[allow(clippy::too_many_arguments)]
fn expand_tpm_layer(
    ev: &Evaluator<'_, '_>,
    pattern: &PatternGraph,
    vars: &[TpmVar],
    anchors: &[(usize, Option<String>)],
    result: &nok::TpmResult,
    layer: usize,
    row: &Row,
    work: &mut Vec<(usize, Row)>,
) {
    let tv = &vars[layer];
    let (anchor_vertex, anchor_var) = &anchors[layer];
    let anchor_nodes: Vec<Option<SNodeId>> = match anchor_var {
        None => vec![None],
        Some(name) => match row.get(name) {
            Some(val) => val
                .iter()
                .filter_map(|i| match i {
                    Item::Node(NodeRef::Stored(s)) => Some(Some(*s)),
                    _ => None,
                })
                .collect(),
            None => Vec::new(),
        },
    };
    let mut nodes: Vec<SNodeId> = Vec::new();
    for a in anchor_nodes {
        nodes.extend(nok::matches_between(ev.ctx, pattern, result, *anchor_vertex, tv.vertex, a));
    }
    nodes.sort_unstable();
    nodes.dedup();
    if tv.one_to_many {
        for n in nodes.into_iter().rev() {
            work.push((layer + 1, row.bind(&tv.var, vec![Item::Node(NodeRef::Stored(n))])));
        }
    } else {
        work.push((
            layer + 1,
            row.bind(&tv.var, nodes.into_iter().map(|n| Item::Node(NodeRef::Stored(n))).collect()),
        ));
    }
}

/// Drive a physical plan to its full result sequence: pull batches from the
/// pipeline below the `Construct` root and evaluate the return expression
/// once per row.
pub fn execute(
    plan: &PhysicalPlan,
    ev: &Evaluator<'_, '_>,
    scope: &Scope<'_>,
) -> Result<Val, XqError> {
    let PhysNode::Construct { input, expr, info } = &plan.root else {
        return Err(XqError::new("physical plan must be rooted in a construct operator"));
    };
    let mut src = Src::build(input)?;
    let mut out: Val = Vec::new();
    while let Some(batch) = src.next_batch(ev, scope)? {
        let n = batch.len();
        for row in batch {
            let s = row_scope(scope, &row);
            let before = out.len();
            out.extend(ev.eval(expr, &s)?);
            ev.ctx.governor_note_rows((out.len() - before) as u64)?;
        }
        info.record(ev, n);
    }
    Ok(out)
}

/// Drive a physical plan into an aggregate fold instead of a materialized
/// result: each row's return value is pushed into the fold and dropped, so
/// the aggregate's working set is the fold's accumulator plus one batch —
/// never the whole input sequence. Rows keep flowing after the fold
/// saturates (or traps an error) so per-row governor accounting matches the
/// materializing evaluation exactly; `finish` then surfaces the value or
/// the first trapped error.
pub fn fold_execute(
    plan: &PhysicalPlan,
    ev: &Evaluator<'_, '_>,
    scope: &Scope<'_>,
    mut fold: Box<dyn crate::functions::Fold>,
) -> Result<Val, XqError> {
    let PhysNode::Construct { input, expr, info } = &plan.root else {
        return Err(XqError::new("physical plan must be rooted in a construct operator"));
    };
    let mut src = Src::build(input)?;
    let mut active = true;
    while let Some(batch) = src.next_batch(ev, scope)? {
        let n = batch.len();
        for row in batch {
            let s = row_scope(scope, &row);
            let items = ev.eval(expr, &s)?;
            ev.ctx.governor_note_rows(items.len() as u64)?;
            if active {
                active = fold.push(ev.ctx, &items);
            }
        }
        info.record(ev, n);
    }
    fold.finish(ev.ctx)
}

impl Evaluator<'_, '_> {
    /// Run a FLWOR plan through the streaming pipeline. Reuses the cached
    /// pre-lowered plan when it matches (so its shared operator stats
    /// accumulate actuals for `explain` — including γ-embedded FLWORs,
    /// whose plan is cached from the constructor body); otherwise lowers
    /// fresh, e.g. for FLWORs nested inside other expressions.
    pub(crate) fn eval_plan_streaming(
        &self,
        plan: &LogicalPlan,
        scope: &Scope<'_>,
    ) -> Result<Val, XqError> {
        if let Some(phys) = &self.physical {
            if phys.source == *plan {
                return execute(phys, self, scope);
            }
        }
        let phys = lower(plan, self.ctx, self.strategy)?;
        execute(&phys, self, scope)
    }

    /// Run a FLWOR plan through the streaming pipeline *into a fold* — the
    /// streaming physical form of `agg(flwor)`. Same plan-cache reuse as
    /// [`Evaluator::eval_plan_streaming`].
    pub(crate) fn fold_plan_streaming(
        &self,
        plan: &LogicalPlan,
        fold: Box<dyn crate::functions::Fold>,
        scope: &Scope<'_>,
    ) -> Result<Val, XqError> {
        if let Some(phys) = &self.physical {
            if phys.source == *plan {
                return fold_execute(phys, self, scope, fold);
            }
        }
        let phys = lower(plan, self.ctx, self.strategy)?;
        fold_execute(&phys, self, scope, fold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExecContext;
    use xqp_algebra::{optimize_expr, RuleSet};
    use xqp_storage::SuccinctDoc;

    const BIB: &str = "<bib>\
        <book year=\"1994\"><title>TCP</title><author>Stevens</author><price>65</price></book>\
        <book year=\"2000\"><title>Data</title><author>Abiteboul</author><author>Buneman</author><price>39</price></book>\
        </bib>";

    fn lowered(query: &str, rules: &RuleSet) -> (SuccinctDoc, LogicalPlan) {
        let sdoc = SuccinctDoc::parse(BIB).unwrap();
        let body = xqp_xquery::parse_query(query).unwrap().body;
        let (body, _) = optimize_expr(body, rules);
        let Expr::Flwor(plan) = body else { panic!("expected a FLWOR body") };
        (sdoc, *plan)
    }

    #[test]
    fn row_binding_and_shadowing() {
        let r = Row::empty();
        assert!(r.get("x").is_none());
        let r1 = r.bind("x", vec![Item::Atom(xqp_xml::Atomic::Integer(1))]);
        let r2 = r1.bind("x", vec![Item::Atom(xqp_xml::Atomic::Integer(2))]);
        assert_eq!(r1.get("x").unwrap().len(), 1);
        match &r2.get("x").unwrap()[0] {
            Item::Atom(xqp_xml::Atomic::Integer(i)) => assert_eq!(*i, 2),
            other => panic!("unexpected {other:?}"),
        }
        let entries = r2.bind("y", vec![]).entries();
        let names: Vec<&str> = entries.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["x", "x", "y"], "outermost first");
    }

    #[test]
    fn lower_annotates_every_clause() {
        let (sdoc, plan) = lowered(
            "for $b in doc()/bib/book where $b/price > 50 return $b/title",
            &RuleSet::none(),
        );
        let ctx = ExecContext::new(&sdoc);
        let phys = lower(&plan, &ctx, Strategy::Auto).unwrap();
        assert!(matches!(phys.root, PhysNode::Construct { .. }));
        let rendering = phys.render(EvalMode::Streaming);
        assert!(rendering.contains("-- physical plan (streaming, batch=64)"), "{rendering}");
        assert!(rendering.contains("construct"), "{rendering}");
        assert!(rendering.contains("filter"), "{rendering}");
        assert!(rendering.contains("for-scan $b"), "{rendering}");
        assert!(rendering.contains("env-root"), "{rendering}");
        assert!(rendering.contains("est "), "{rendering}");
        assert!(phys.est_total_cost > 0.0);
    }

    #[test]
    fn lower_reports_tpm_access_costs() {
        let (sdoc, plan) =
            lowered("for $b in doc()/bib/book let $t := $b/title return $t", &RuleSet::all());
        let ctx = ExecContext::new(&sdoc);
        let phys = lower(&plan, &ctx, Strategy::Auto).unwrap();
        let rendering = phys.render(EvalMode::Streaming);
        assert!(rendering.contains("tpm-scan"), "{rendering}");
        assert!(rendering.contains("access=nok"), "{rendering}");
        assert!(rendering.contains("costs[nok="), "{rendering}");
    }

    #[test]
    fn streaming_execution_matches_materializing() {
        let queries = [
            ("for $b in doc()/bib/book return $b/title", RuleSet::none()),
            ("for $b in doc()/bib/book where $b/price > 50 return $b/title", RuleSet::none()),
            ("for $b in doc()/bib/book order by $b/price return $b/title", RuleSet::none()),
            ("for $b in doc()/bib/book let $a := $b/author return count($a)", RuleSet::all()),
        ];
        let sdoc = SuccinctDoc::parse(BIB).unwrap();
        for (q, rules) in queries {
            let ctx = ExecContext::new(&sdoc);
            let body = xqp_xquery::parse_query(q).unwrap().body;
            let (body, _) = optimize_expr(body, &rules);
            let streaming =
                Evaluator::new(&ctx, Strategy::Auto).eval(&body, &Scope::root()).unwrap();
            let materializing = Evaluator::new(&ctx, Strategy::Auto)
                .with_mode(EvalMode::Materializing)
                .eval(&body, &Scope::root())
                .unwrap();
            assert_eq!(streaming, materializing, "query `{q}`");
        }
    }

    #[test]
    fn errors_propagate_identically() {
        let sdoc = SuccinctDoc::parse(BIB).unwrap();
        let ctx = ExecContext::new(&sdoc);
        let q = "for $b in doc()/bib/book return frobnicate($b)";
        let body = xqp_xquery::parse_query(q).unwrap().body;
        let (body, _) = optimize_expr(body, &RuleSet::none());
        let streaming =
            Evaluator::new(&ctx, Strategy::Auto).eval(&body, &Scope::root()).unwrap_err();
        let materializing = Evaluator::new(&ctx, Strategy::Auto)
            .with_mode(EvalMode::Materializing)
            .eval(&body, &Scope::root())
            .unwrap_err();
        assert_eq!(streaming, materializing);
    }

    #[test]
    fn streaming_keeps_peak_bindings_below_materializing() {
        // A two-level for nest: the materializing Env peaks at the cross
        // product; the streaming pipeline holds only batches.
        let wide: String = {
            let items: String = (0..50).map(|i| format!("<x><y>{i}</y></x>")).collect();
            format!("<r>{items}</r>")
        };
        let q = "for $a in doc()/r/x for $b in doc()/r/x/y return 1";
        let sdoc = SuccinctDoc::parse(&wide).unwrap();
        let body = xqp_xquery::parse_query(q).unwrap().body;
        let (body, _) = optimize_expr(body, &RuleSet::none());

        let ctx = ExecContext::new(&sdoc);
        Evaluator::new(&ctx, Strategy::Auto)
            .with_mode(EvalMode::Materializing)
            .eval(&body, &Scope::root())
            .unwrap();
        let mat_peak = ctx.counters().peak_bindings;

        let ctx = ExecContext::new(&sdoc);
        Evaluator::new(&ctx, Strategy::Auto).eval(&body, &Scope::root()).unwrap();
        let stream_peak = ctx.counters().peak_bindings;

        assert!(mat_peak >= 2500, "materializing peak {mat_peak} covers the cross product");
        assert!(
            stream_peak < mat_peak,
            "streaming peak {stream_peak} must stay below materializing {mat_peak}"
        );
    }

    #[test]
    fn streaming_fold_keeps_peak_bindings_bounded() {
        // The same cross-product nest, but consumed by an aggregate: the
        // streaming path lowers `count(...)` to a fold that drains the
        // pipeline row by row, so its peak stays at batch granularity while
        // the materializing reference still builds the full Env product.
        let wide: String = {
            let items: String = (0..50).map(|i| format!("<x><y>{i}</y></x>")).collect();
            format!("<r>{items}</r>")
        };
        let q = "count(for $a in doc()/r/x for $b in doc()/r/x/y return 1)";
        let sdoc = SuccinctDoc::parse(&wide).unwrap();
        let body = xqp_xquery::parse_query(q).unwrap().body;
        let (body, _) = optimize_expr(body, &RuleSet::none());

        let ctx = ExecContext::new(&sdoc);
        let mat = Evaluator::new(&ctx, Strategy::Auto)
            .with_mode(EvalMode::Materializing)
            .eval(&body, &Scope::root())
            .unwrap();
        let mat_peak = ctx.counters().peak_bindings;

        let ctx = ExecContext::new(&sdoc);
        let stream = Evaluator::new(&ctx, Strategy::Auto).eval(&body, &Scope::root()).unwrap();
        let stream_peak = ctx.counters().peak_bindings;

        assert_eq!(stream, mat, "fold result must match the materializing aggregate");
        assert!(mat_peak >= 2500, "materializing peak {mat_peak} covers the cross product");
        assert!(
            stream_peak < mat_peak,
            "fold peak {stream_peak} must stay below materializing {mat_peak}"
        );
    }

    #[test]
    fn phys_counters_tick() {
        let sdoc = SuccinctDoc::parse(BIB).unwrap();
        let ctx = ExecContext::new(&sdoc);
        let body =
            xqp_xquery::parse_query("for $b in doc()/bib/book return $b/title").unwrap().body;
        let (body, _) = optimize_expr(body, &RuleSet::none());
        Evaluator::new(&ctx, Strategy::Auto).eval(&body, &Scope::root()).unwrap();
        let c = ctx.counters();
        assert!(c.phys_rows > 0, "{c:?}");
        assert!(c.phys_batches > 0, "{c:?}");
    }
}
