//! Differential execution: one query, every engine, one verdict.
//!
//! The engine has three independently implemented evaluation paths (the
//! materializing `Env` interpreter, the streaming physical pipeline, and
//! the per-strategy pattern matchers behind them). The paper's algebra
//! claims they are semantically equivalent; this module checks that claim
//! mechanically by running a query under the full `Strategy × EvalMode`
//! matrix and comparing byte-identical serialized results against the
//! reference configuration (`Naive` + `Materializing` — node-at-a-time
//! navigation through the clause-at-a-time interpreter, the simplest and
//! most thoroughly specified path).
//!
//! Outcomes are three-valued: a serialized [`Outcome::Value`], a typed
//! [`Outcome::Error`] (two engines may word an error differently, so errors
//! agree as a *class*), or a caught [`Outcome::Panic`] — which never agrees
//! with anything, including another panic.

use crate::engine::Executor;
use crate::governor::{QueryLimits, ResourceGovernor};
use crate::physical::EvalMode;
use crate::planner::Strategy;
use crate::XqError;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use xqp_algebra::RuleSet;
use xqp_storage::SuccinctDoc;

/// One engine configuration of the differential matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Pattern-matching strategy.
    pub strategy: Strategy,
    /// FLWOR evaluation mode.
    pub mode: EvalMode,
}

impl EngineConfig {
    /// Short display label, e.g. `twigstack+streaming`.
    pub fn label(&self) -> String {
        let s = match self.strategy {
            Strategy::Parallel { threads } => format!("parallel:{threads}"),
            other => other.name().to_string(),
        };
        format!("{s}+{}", self.mode.name())
    }
}

impl fmt::Display for EngineConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// The reference configuration every other engine is compared against.
pub fn reference() -> EngineConfig {
    EngineConfig { strategy: Strategy::Naive, mode: EvalMode::Materializing }
}

/// The full `Strategy × EvalMode` matrix (reference included).
pub fn full_matrix() -> Vec<EngineConfig> {
    let strategies = [
        Strategy::Naive,
        Strategy::Auto,
        Strategy::NoK,
        Strategy::TwigStack,
        Strategy::BinaryJoin,
        Strategy::Parallel { threads: 2 },
    ];
    let mut out = Vec::with_capacity(strategies.len() * 2);
    for strategy in strategies {
        for mode in [EvalMode::Materializing, EvalMode::Streaming] {
            out.push(EngineConfig { strategy, mode });
        }
    }
    out
}

/// What one engine produced for one query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Serialized result sequence.
    Value(String),
    /// Query evaluation returned an error.
    Error(String),
    /// The engine panicked (message recovered when possible).
    Panic(String),
}

impl Outcome {
    /// Differential agreement: values must be byte-identical; errors agree
    /// with errors regardless of wording (engines traverse in different
    /// orders, so the *first* error reached may legitimately differ); a
    /// panic agrees with nothing.
    pub fn agrees_with(&self, other: &Outcome) -> bool {
        match (self, other) {
            (Outcome::Value(a), Outcome::Value(b)) => a == b,
            (Outcome::Error(_), Outcome::Error(_)) => true,
            _ => false,
        }
    }

    /// One-word class tag for reports.
    pub fn class(&self) -> &'static str {
        match self {
            Outcome::Value(_) => "value",
            Outcome::Error(_) => "error",
            Outcome::Panic(_) => "panic",
        }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Value(v) => write!(f, "value: {v:?}"),
            Outcome::Error(e) => write!(f, "error: {e}"),
            Outcome::Panic(p) => write!(f, "panic: {p}"),
        }
    }
}

/// Recover a printable message from a panic payload.
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Run `query` under one configuration, capturing panics. Each run gets a
/// fresh executor (and so a fresh plan cache): differential runs must not
/// leak compiled state between configurations.
pub fn run_config(doc: &SuccinctDoc, query: &str, cfg: EngineConfig) -> Outcome {
    let res = catch_unwind(AssertUnwindSafe(|| {
        Executor::new(doc).with_strategy(cfg.strategy).with_eval_mode(cfg.mode).query(query)
    }));
    match res {
        Ok(Ok(v)) => Outcome::Value(v),
        Ok(Err(e)) => Outcome::Error(e.to_string()),
        Err(payload) => Outcome::Panic(panic_message(payload)),
    }
}

/// Run `query` under one configuration with resource `limits` attached,
/// capturing panics. The governor (and its deadline clock) is fresh per
/// run, like a per-query limit override in the database layer.
pub fn run_config_limited(
    doc: &SuccinctDoc,
    query: &str,
    cfg: EngineConfig,
    limits: QueryLimits,
) -> Outcome {
    let res = catch_unwind(AssertUnwindSafe(|| {
        Executor::new(doc)
            .with_strategy(cfg.strategy)
            .with_eval_mode(cfg.mode)
            .with_governor(Arc::new(ResourceGovernor::new(limits)))
            .query(query)
    }));
    match res {
        Ok(Ok(v)) => Outcome::Value(v),
        Ok(Err(e)) => Outcome::Error(e.to_string()),
        Err(payload) => Outcome::Panic(panic_message(payload)),
    }
}

/// The deterministic budgets of the differential oracle's governor leg:
/// tight enough that realistic multi-row cases trip, and time-free so
/// replays are exact (a wall-clock deadline would flake under load).
pub fn budget_limits() -> Vec<QueryLimits> {
    vec![QueryLimits::none().with_max_rows(1), QueryLimits::none().with_max_memory(8)]
}

/// Budget leg of the differential oracle: re-run the full matrix under
/// each tight limit from [`budget_limits`]. Every configuration must
/// either return the reference's **full** (unlimited) value — the budget
/// happened to suffice — or fail with a resource-limit-class error. A
/// truncated value, a non-limit error, or a panic is a divergence: no
/// configuration may silently return partial results when over budget.
///
/// A reference that errors or panics without limits is owned by
/// [`check_matrix`]; this leg skips such cases.
pub fn check_budget_matrix(doc: &SuccinctDoc, query: &str) -> Result<(), Divergence> {
    let ref_cfg = reference();
    let want = run_config(doc, query, ref_cfg);
    let Outcome::Value(full) = &want else { return Ok(()) };
    let mut disagreements = Vec::new();
    for limits in budget_limits() {
        for cfg in full_matrix() {
            let got = run_config_limited(doc, query, cfg, limits);
            let ok = match &got {
                Outcome::Value(v) => v == full,
                // Single-source the limit classification through XqError.
                Outcome::Error(e) => XqError::new(e.as_str()).is_resource_limit(),
                Outcome::Panic(_) => false,
            };
            if !ok {
                disagreements.push((cfg, got));
            }
        }
    }
    if disagreements.is_empty() {
        Ok(())
    } else {
        Err(Divergence { reference: (ref_cfg, want), disagreements })
    }
}

/// Run `query` under one configuration with an explicit optimizer rule
/// set, capturing panics. This is [`run_config`] with the rule axis
/// exposed: the ablation leg of the oracle uses it to check that every
/// rewrite is semantics-preserving under every engine configuration.
pub fn run_config_rules(
    doc: &SuccinctDoc,
    query: &str,
    cfg: EngineConfig,
    rules: RuleSet,
) -> Outcome {
    let res = catch_unwind(AssertUnwindSafe(|| {
        Executor::new(doc)
            .with_strategy(cfg.strategy)
            .with_eval_mode(cfg.mode)
            .with_rules(rules)
            .query(query)
    }));
    match res {
        Ok(Ok(v)) => Outcome::Value(v),
        Ok(Err(e)) => Outcome::Error(e.to_string()),
        Err(payload) => Outcome::Panic(panic_message(payload)),
    }
}

/// The named rule ablations of the optimizer leg: everything off (the
/// un-rewritten plan is the semantic baseline), plus each high-level
/// rewrite knocked out of the full set one at a time. Any rewrite that
/// changes a result shows up as a disagreement between an ablation and
/// the all-rules reference.
pub fn rule_ablations() -> Vec<(&'static str, RuleSet)> {
    vec![
        ("rules:none", RuleSet::none()),
        ("no-flwor-to-tpm", RuleSet { flwor_to_tpm: false, ..RuleSet::all() }),
        ("no-predicate-pushdown", RuleSet { predicate_pushdown: false, ..RuleSet::all() }),
        ("no-projection-pushdown", RuleSet { projection_pushdown: false, ..RuleSet::all() }),
        ("no-join-isolation", RuleSet { join_isolation: false, ..RuleSet::all() }),
        ("no-agg-orderby-prune", RuleSet { agg_orderby_prune: false, ..RuleSet::all() }),
    ]
}

/// Optimizer-rule leg of the differential oracle: the all-rules reference
/// configuration versus every [`rule_ablations`] entry under the full
/// `Strategy × EvalMode` matrix. Values must be byte-identical and errors
/// must agree as a class across rule sets — an optimizer rewrite may never
/// change what a query *means*, only how it runs. `Err` carries a
/// human-readable report naming the ablation and configuration.
pub fn check_rules_matrix(doc: &SuccinctDoc, query: &str) -> Result<(), String> {
    let ref_cfg = reference();
    let want = run_config(doc, query, ref_cfg);
    if matches!(want, Outcome::Panic(_)) {
        return Err(format!("reference {ref_cfg} [rules:all]: {want}"));
    }
    let mut report = String::new();
    for (name, rules) in rule_ablations() {
        for cfg in full_matrix() {
            let got = run_config_rules(doc, query, cfg, rules);
            if !got.agrees_with(&want) {
                report.push_str(&format!("  {cfg} [{name}]: {got}\n"));
            }
        }
    }
    if report.is_empty() {
        Ok(())
    } else {
        Err(format!("reference {ref_cfg} [rules:all]: {want}\n{report}"))
    }
}

/// The strategy axis for bare-path (`select`) evaluation. Paths bypass the
/// FLWOR evaluation modes entirely — `eval_path_str` dispatches straight to
/// the per-strategy pattern matchers — so this matrix is one-dimensional,
/// with `Naive` as the reference.
pub fn select_strategies() -> Vec<Strategy> {
    vec![
        Strategy::Naive,
        Strategy::Auto,
        Strategy::NoK,
        Strategy::TwigStack,
        Strategy::BinaryJoin,
        Strategy::Parallel { threads: 2 },
    ]
}

/// Run one bare path under one strategy, capturing panics. The value is the
/// space-joined node-id list — ids are stable per document, so byte equality
/// is exactly "same nodes in the same order".
pub fn run_select(doc: &SuccinctDoc, path: &str, strategy: Strategy) -> Outcome {
    let res = catch_unwind(AssertUnwindSafe(|| {
        Executor::new(doc)
            .with_strategy(strategy)
            .eval_path_str(path)
            .map(|ids| ids.iter().map(|n| n.to_string()).collect::<Vec<_>>().join(" "))
    }));
    match res {
        Ok(Ok(v)) => Outcome::Value(v),
        Ok(Err(e)) => Outcome::Error(e.to_string()),
        Err(payload) => Outcome::Panic(panic_message(payload)),
    }
}

/// Run a bare path under every strategy and compare against `Naive`. This is
/// the select-plane counterpart of [`check_matrix`]: the two planes share
/// pattern compilation but diverge in how they root paths and dispatch
/// matches, so both need independent differential coverage.
pub fn check_select_matrix(doc: &SuccinctDoc, path: &str) -> Result<Outcome, Divergence> {
    let ref_strategy = Strategy::Naive;
    let ref_cfg = EngineConfig { strategy: ref_strategy, mode: EvalMode::Materializing };
    let want = run_select(doc, path, ref_strategy);
    let mut disagreements = Vec::new();
    if matches!(want, Outcome::Panic(_)) {
        disagreements.push((ref_cfg, want.clone()));
    }
    for strategy in select_strategies() {
        if strategy == ref_strategy {
            continue;
        }
        let got = run_select(doc, path, strategy);
        if !got.agrees_with(&want) {
            disagreements.push((EngineConfig { strategy, mode: EvalMode::Materializing }, got));
        }
    }
    if disagreements.is_empty() {
        Ok(want)
    } else {
        Err(Divergence { reference: (ref_cfg, want), disagreements })
    }
}

/// A matrix disagreement: the reference outcome plus every configuration
/// that failed to reproduce it.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// The reference configuration's outcome.
    pub reference: (EngineConfig, Outcome),
    /// Configurations whose outcome disagreed with the reference.
    pub disagreements: Vec<(EngineConfig, Outcome)>,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "reference {}: {}", self.reference.0, self.reference.1)?;
        for (cfg, outcome) in &self.disagreements {
            writeln!(f, "  {cfg}: {outcome}")?;
        }
        Ok(())
    }
}

/// Run the full matrix over `doc`; `Ok` carries the agreed reference
/// outcome, `Err` the divergence report. A panic anywhere — including in
/// the reference itself — is always a divergence.
pub fn check_matrix(doc: &SuccinctDoc, query: &str) -> Result<Outcome, Divergence> {
    let ref_cfg = reference();
    let want = run_config(doc, query, ref_cfg);
    let mut disagreements = Vec::new();
    if matches!(want, Outcome::Panic(_)) {
        disagreements.push((ref_cfg, want.clone()));
    }
    for cfg in full_matrix() {
        if cfg == ref_cfg {
            continue;
        }
        let got = run_config(doc, query, cfg);
        if !got.agrees_with(&want) {
            disagreements.push((cfg, got));
        }
    }
    if disagreements.is_empty() {
        Ok(want)
    } else {
        Err(Divergence { reference: (ref_cfg, want), disagreements })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = "<r><a k=\"1\"><b>2</b></a><a><b>3</b><c>x</c></a></r>";

    fn sdoc() -> SuccinctDoc {
        SuccinctDoc::parse(DOC).unwrap()
    }

    #[test]
    fn matrix_covers_all_strategies_and_modes() {
        let m = full_matrix();
        assert_eq!(m.len(), 12);
        assert!(m.contains(&reference()));
        let labels: Vec<String> = m.iter().map(EngineConfig::label).collect();
        assert!(labels.contains(&"parallel:2+streaming".to_string()), "{labels:?}");
    }

    #[test]
    fn agreeing_query_reports_reference_value() {
        let d = sdoc();
        let out = check_matrix(&d, "for $x in doc()//a/b order by $x return $x").unwrap();
        assert_eq!(out, Outcome::Value("<b>2</b><b>3</b>".into()));
    }

    #[test]
    fn errors_agree_as_a_class() {
        let d = sdoc();
        // Division by zero errors in every engine; wording may differ.
        let out = check_matrix(&d, "for $x in doc()/a let $y := 1 div 0 return $y");
        match out {
            Ok(Outcome::Error(_)) | Ok(Outcome::Value(_)) => {}
            other => panic!("expected agreement, got {other:?}"),
        }
    }

    #[test]
    fn outcome_agreement_rules() {
        let v1 = Outcome::Value("a".into());
        let v2 = Outcome::Value("b".into());
        let e1 = Outcome::Error("x".into());
        let e2 = Outcome::Error("y".into());
        let p = Outcome::Panic("boom".into());
        assert!(v1.agrees_with(&v1.clone()));
        assert!(!v1.agrees_with(&v2));
        assert!(e1.agrees_with(&e2));
        assert!(!v1.agrees_with(&e1));
        assert!(!p.agrees_with(&p.clone()));
    }

    #[test]
    fn run_config_captures_panics() {
        // A hand-rolled panic inside serialization is not reachable from
        // here; instead check the plumbing via panic_message directly.
        assert_eq!(panic_message(Box::new("boom")), "boom");
        assert_eq!(panic_message(Box::new("boom".to_string())), "boom");
        assert_eq!(panic_message(Box::new(42u32)), "<non-string panic payload>");
    }

    #[test]
    fn budget_matrix_trips_as_a_class_on_multi_row_results() {
        let d = sdoc();
        // Two result rows against a one-row cap: every configuration must
        // fail with a governor error — none may return one row and call it
        // a value.
        check_budget_matrix(&d, "for $x in doc()//a/b order by $x return $x")
            .unwrap_or_else(|div| panic!("budget leg diverged:\n{div}"));
    }

    #[test]
    fn budget_matrix_is_ok_when_reference_errors() {
        let d = sdoc();
        // The unlimited reference errors; the plain matrix owns that case.
        check_budget_matrix(&d, "for $x in doc()/a let $y := 1 div 0 return $y").unwrap();
    }

    #[test]
    fn limited_run_with_roomy_budget_matches_unlimited() {
        let d = sdoc();
        let q = "for $x in doc()//c return $x";
        let want = run_config(&d, q, reference());
        let got = run_config_limited(
            &d,
            q,
            reference(),
            QueryLimits::none().with_max_rows(1000).with_max_memory(100_000),
        );
        assert_eq!(got, want);
    }

    #[test]
    fn rules_matrix_agrees_on_join_query() {
        let d = SuccinctDoc::parse(
            "<r><a k=\"1\">x</a><a k=\"2\">y</a><b k=\"2\">z</b><b k=\"1\">w</b></r>",
        )
        .unwrap();
        let q = "for $x in doc()/r/a for $y in doc()/r/b \
                 where $x/@k = $y/@k return <p>{$x}{$y}</p>";
        check_rules_matrix(&d, q).unwrap_or_else(|report| panic!("rule leg diverged:\n{report}"));
    }

    #[test]
    fn rules_matrix_agrees_when_reference_errors() {
        let d = sdoc();
        // Errors agree as a class across rule sets too.
        check_rules_matrix(&d, "for $x in doc()/a let $y := 1 div 0 return $y").unwrap();
    }

    #[test]
    fn rule_ablations_cover_the_new_rules() {
        let names: Vec<&str> = rule_ablations().iter().map(|(n, _)| *n).collect();
        for needle in [
            "rules:none",
            "no-predicate-pushdown",
            "no-projection-pushdown",
            "no-join-isolation",
            "no-agg-orderby-prune",
        ] {
            assert!(names.contains(&needle), "{names:?} misses {needle}");
        }
    }

    #[test]
    fn select_matrix_agrees_on_absolute_and_relative_paths() {
        let d = sdoc();
        for p in ["/r/a/b", "//b", "//a[@k]/b", "descendant::b", "b/c", "//zzz"] {
            let out = check_select_matrix(&d, p)
                .unwrap_or_else(|div| panic!("select plane diverged on `{p}`:\n{div}"));
            assert!(matches!(out, Outcome::Value(_)), "{p}: {out}");
        }
        // Relative paths have no context at the select plane: empty result.
        assert_eq!(
            check_select_matrix(&d, "descendant::b").unwrap(),
            Outcome::Value(String::new())
        );
    }

    #[test]
    fn select_matrix_reports_parse_errors_as_agreeing_class() {
        let d = sdoc();
        match check_select_matrix(&d, "///") {
            Ok(Outcome::Error(_)) => {}
            other => panic!("expected agreeing error class, got {other:?}"),
        }
    }

    #[test]
    fn divergence_renders_reference_and_disagreements() {
        let d = Divergence {
            reference: (reference(), Outcome::Value("ok".into())),
            disagreements: vec![(
                EngineConfig { strategy: Strategy::TwigStack, mode: EvalMode::Streaming },
                Outcome::Value("bad".into()),
            )],
        };
        let s = d.to_string();
        assert!(s.contains("naive+materializing"), "{s}");
        assert!(s.contains("twigstack+streaming"), "{s}");
    }
}
