//! The materializing FLWOR interpreter: the reference semantics.
//!
//! This is the original clause-at-a-time evaluation over the layered
//! [`Env`] sort (Definition 3): each clause fully materializes its output
//! environment before the next clause runs. The streaming physical pipeline
//! ([`crate::physical`]) must agree with it byte-for-byte; it stays
//! selectable (`EvalMode::Materializing`) both as the semantic oracle for
//! the equivalence suite and as the baseline of experiment E16, which
//! measures the peak intermediate binding count the pipeline avoids.
//!
//! The interpreter reports that peak through
//! [`crate::context::ExecContext::bindings_pulse`] after every clause.

use crate::context::{NodeRef, Val, XqError};
use crate::eval::{scope_from_bindings, Evaluator, Scope, SortKey};
use crate::naive;
use crate::nok;
use crate::planner;
use std::cell::RefCell;
use xqp_algebra::env::{Bindings, Env};
use xqp_algebra::plan::TpmVar;
use xqp_algebra::{Expr, Item, JoinEdge, JoinSideDef, LogicalPlan};
use xqp_storage::SNodeId;
use xqp_xpath::PatternGraph;

/// The conjunction of a join graph's edges as one boolean expression
/// (`None` when there are no edges — a bare cross product).
pub(crate) fn join_edge_condition(sides: &[JoinSideDef], edges: &[JoinEdge]) -> Option<Expr> {
    edges
        .iter()
        .map(|e| e.as_expr(sides))
        .reduce(|acc, next| Expr::And(Box::new(acc), Box::new(next)))
}

impl Evaluator<'_, '_> {
    /// Evaluate a FLWOR plan to its result sequence by materializing the
    /// full environment, then mapping the return clause over its total
    /// bindings.
    pub fn eval_plan(&self, plan: &LogicalPlan, scope: &Scope<'_>) -> Result<Val, XqError> {
        // Mirror of the streaming pipeline's focus decision: one whole-plan
        // check, and every `for` layer threads the hidden bindings when set.
        let focus = plan.uses_focus();
        match plan {
            LogicalPlan::ReturnClause { input, expr } => {
                let env = self.build_env(input, scope, focus)?;
                let err: RefCell<Option<XqError>> = RefCell::new(None);
                let results: Vec<Val> = env.map_bindings(|b| {
                    let s = scope_from_bindings(scope, b);
                    match self.eval(expr, &s) {
                        Ok(v) => v,
                        Err(e) => {
                            err.borrow_mut().get_or_insert(e);
                            Vec::new()
                        }
                    }
                });
                if let Some(e) = err.into_inner() {
                    return Err(e);
                }
                let flat: Val = results.into_iter().flatten().collect();
                self.ctx.governor_note_rows(flat.len() as u64)?;
                Ok(flat)
            }
            other => {
                // A FLWOR without return is not producible by the parser;
                // evaluate as if `return ()`-less: error clearly.
                Err(XqError::new(format!("plan must end in a return clause, found {other:?}")))
            }
        }
    }

    /// Build the environment for the clause pipeline below a return. With
    /// `focus` set, every `for` layer also binds the hidden `#pos`/`#last`
    /// variables per emitted item.
    fn build_env(
        &self,
        plan: &LogicalPlan,
        scope: &Scope<'_>,
        focus: bool,
    ) -> Result<Env<NodeRef>, XqError> {
        let env = match plan {
            LogicalPlan::EnvRoot => Env::new(),
            LogicalPlan::ForBind { input, var, source } => {
                let mut env = self.build_env(input, scope, focus)?;
                self.extend(&mut env, var, source, scope, true, focus)?;
                env
            }
            LogicalPlan::LetBind { input, var, source } => {
                let mut env = self.build_env(input, scope, focus)?;
                self.extend(&mut env, var, source, scope, false, focus)?;
                env
            }
            LogicalPlan::Where { input, cond } => {
                let mut env = self.build_env(input, scope, focus)?;
                let err: RefCell<Option<XqError>> = RefCell::new(None);
                env.filter(|b| {
                    let s = scope_from_bindings(scope, b);
                    match self.eval(cond, &s) {
                        Ok(v) => naive::ebv(&v),
                        Err(e) => {
                            err.borrow_mut().get_or_insert(e);
                            false
                        }
                    }
                });
                if let Some(e) = err.into_inner() {
                    return Err(e);
                }
                env
            }
            LogicalPlan::OrderBy { input, keys } => {
                let mut env = self.build_env(input, scope, focus)?;
                let err: RefCell<Option<XqError>> = RefCell::new(None);
                env.sort_bindings_by(|b| {
                    let s = scope_from_bindings(scope, b);
                    match self.order_key(keys, &s) {
                        Ok(k) => k,
                        Err(e) => {
                            err.borrow_mut().get_or_insert(e);
                            SortKey(Vec::new())
                        }
                    }
                });
                if let Some(e) = err.into_inner() {
                    return Err(e);
                }
                env
            }
            LogicalPlan::TpmBind { input, pattern, vars } => {
                let mut env = self.build_env(input, scope, focus)?;
                self.tpm_bind(&mut env, pattern, vars)?;
                env
            }
            LogicalPlan::JoinGraph { input, sides, edges } => {
                // Reference semantics for the hash join: the plain nested
                // loop — one for-layer per side, then filter by the edge
                // conjunction. Join graphs never carry focus (R12 stands
                // down on focus plans), so the sides bind without it.
                let mut env = self.build_env(input, scope, focus)?;
                for s in sides {
                    self.extend(&mut env, &s.var, &s.source, scope, true, false)?;
                }
                if let Some(cond) = join_edge_condition(sides, edges) {
                    let err: RefCell<Option<XqError>> = RefCell::new(None);
                    env.filter(|b| {
                        let s = scope_from_bindings(scope, b);
                        match self.eval(&cond, &s) {
                            Ok(v) => naive::ebv(&v),
                            Err(e) => {
                                err.borrow_mut().get_or_insert(e);
                                false
                            }
                        }
                    });
                    if let Some(e) = err.into_inner() {
                        return Err(e);
                    }
                }
                env
            }
            LogicalPlan::ReturnClause { .. } => {
                return Err(XqError::new("nested return clause in binding pipeline"))
            }
        };
        // The whole clause output is live at once — that is the point of
        // comparison with the streaming pipeline (experiment E16), and the
        // quantity the governor's memory budget is charged for here.
        self.ctx.bindings_pulse(env.total_binding_count() as u64);
        self.ctx.governor_check_mem(env.total_binding_count() as u64)?;
        Ok(env)
    }

    fn extend(
        &self,
        env: &mut Env<NodeRef>,
        var: &str,
        source: &Expr,
        scope: &Scope<'_>,
        one_to_many: bool,
        focus: bool,
    ) -> Result<(), XqError> {
        let err: RefCell<Option<XqError>> = RefCell::new(None);
        // (position, size) per emitted item, in frontier order — collected
        // during the `for` extension and replayed as hidden `let` layers.
        let pairs: RefCell<Vec<(i64, i64)>> = RefCell::new(Vec::new());
        let eval_source = |b: &Bindings<'_, NodeRef>| {
            let s = scope_from_bindings(scope, b);
            match self.eval(source, &s) {
                Ok(v) => {
                    if one_to_many && focus {
                        let n = v.len() as i64;
                        let mut p = pairs.borrow_mut();
                        for i in 0..n {
                            p.push((i + 1, n));
                        }
                    }
                    v
                }
                Err(e) => {
                    err.borrow_mut().get_or_insert(e);
                    Vec::new()
                }
            }
        };
        if one_to_many {
            env.extend_for(var, eval_source);
        } else {
            env.extend_let(var, eval_source);
        }
        if let Some(e) = err.into_inner() {
            return Err(e);
        }
        if one_to_many && focus {
            // extend_let visits the frontier in exactly the order extend_for
            // emitted it, so draining the pair list index-wise lines each
            // leaf up with its own (position, size).
            let pairs = pairs.into_inner();
            let mut i = 0;
            env.extend_let(crate::functions::FOCUS_POS, |_| {
                let p = pairs[i].0;
                i += 1;
                vec![Item::Atom(xqp_xml::Atomic::Integer(p))]
            });
            let mut i = 0;
            env.extend_let(crate::functions::FOCUS_LAST, |_| {
                let n = pairs[i].1;
                i += 1;
                vec![Item::Atom(xqp_xml::Atomic::Integer(n))]
            });
        }
        Ok(())
    }

    /// Execute a TpmBind: one pattern match, then one Env layer per bound
    /// variable, reading the confirmed match sets.
    fn tpm_bind(
        &self,
        env: &mut Env<NodeRef>,
        pattern: &PatternGraph,
        vars: &[TpmVar],
    ) -> Result<(), XqError> {
        let result = nok::match_pattern(self.ctx, pattern, None);
        let anchors = planner::tpm_anchor_chain(pattern, vars);
        for (tv, (anchor_vertex, anchor_var)) in vars.iter().zip(&anchors) {
            let source = |b: &Bindings<'_, NodeRef>| -> Val {
                let anchor_nodes: Vec<Option<SNodeId>> = match anchor_var {
                    None => vec![None],
                    Some(name) => match b.get(name) {
                        Some(val) => val
                            .iter()
                            .filter_map(|i| match i {
                                Item::Node(NodeRef::Stored(s)) => Some(Some(*s)),
                                _ => None,
                            })
                            .collect(),
                        None => Vec::new(),
                    },
                };
                let mut nodes: Vec<SNodeId> = Vec::new();
                for a in anchor_nodes {
                    nodes.extend(nok::matches_between(
                        self.ctx,
                        pattern,
                        &result,
                        *anchor_vertex,
                        tv.vertex,
                        a,
                    ));
                }
                nodes.sort_unstable();
                nodes.dedup();
                nodes.into_iter().map(|n| Item::Node(NodeRef::Stored(n))).collect()
            };
            if tv.one_to_many {
                env.extend_for(&tv.var, source);
            } else {
                env.extend_let(&tv.var, source);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExecContext;
    use crate::planner::Strategy;
    use xqp_algebra::{optimize_expr, RuleSet};
    use xqp_storage::SuccinctDoc;

    #[test]
    fn materializing_mode_reports_peak_bindings() {
        let xml = "<r><x>1</x><x>2</x><x>3</x></r>";
        let sdoc = SuccinctDoc::parse(xml).unwrap();
        let ctx = ExecContext::new(&sdoc);
        let body = xqp_xquery::parse_query("for $x in doc()/r/x return $x").unwrap().body;
        let (body, _) = optimize_expr(body, &RuleSet::none());
        Evaluator::new(&ctx, Strategy::Auto)
            .with_mode(crate::physical::EvalMode::Materializing)
            .eval(&body, &Scope::root())
            .unwrap();
        assert!(ctx.counters().peak_bindings >= 3);
    }
}
