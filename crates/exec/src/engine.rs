//! The executor — parse → optimize → evaluate → serialize.

use crate::cache::{CompiledPlan, PlanCache};
use crate::context::{ExecContext, ExecCounters, NodeRef, Val, XqError};
use crate::eval::{Evaluator, Scope};
use crate::governor::ResourceGovernor;
use crate::physical::{self, EvalMode};
use crate::planner::Strategy;
use std::sync::Arc;
use std::time::Instant;
use xqp_algebra::{optimize_expr, Expr, Item, LogicalPlan, RewriteReport, RuleSet};
use xqp_algebra::{SchemaNode, SchemaTree};
use xqp_storage::{BufferStats, SKind, SNodeId, StoreCounters, SuccinctDoc, ValueIndex};
use xqp_xml::serialize::{escape_attr, escape_text};

/// A configured query executor over one stored document.
///
/// `Send + Sync`: one executor can serve queries from many threads at once
/// (see `tests/concurrency.rs`), and `Strategy::Parallel` fans single
/// queries out over scoped worker threads.
pub struct Executor<'a> {
    ctx: ExecContext<'a>,
    strategy: Strategy,
    rules: RuleSet,
    mode: EvalMode,
    plan_cache: Arc<PlanCache>,
    cache_scope: Option<String>,
    persist: Option<StoreCounters>,
    buffer: Option<BufferStats>,
}

const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Executor<'_>>();
};

impl<'a> Executor<'a> {
    /// An executor with the default (all rules, auto strategy) configuration
    /// and a private plan cache.
    pub fn new(doc: &'a SuccinctDoc) -> Self {
        Executor {
            ctx: ExecContext::new(doc),
            strategy: Strategy::Auto,
            rules: RuleSet::all(),
            mode: EvalMode::default(),
            plan_cache: Arc::new(PlanCache::default()),
            cache_scope: None,
            persist: None,
            buffer: None,
        }
    }

    /// Attach a value index (σv probes).
    pub fn with_index(mut self, index: &'a ValueIndex) -> Self {
        self.ctx = self.ctx.with_index(index);
        self
    }

    /// Inject pre-computed document statistics (e.g. a cached-by-the-
    /// database snapshot) so the planner does not re-derive them per query.
    /// Callers must invalidate their snapshot when the document changes.
    pub fn with_statistics(mut self, stats: Arc<xqp_algebra::DocStatistics>) -> Self {
        self.ctx = self.ctx.with_stats(stats);
        self
    }

    /// Fix the physical strategy.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Fix the rewrite-rule set.
    pub fn with_rules(mut self, rules: RuleSet) -> Self {
        self.rules = rules;
        self
    }

    /// Select how FLWOR plans execute: streamed through the physical
    /// pipeline (default) or materialized clause-at-a-time.
    pub fn with_eval_mode(mut self, mode: EvalMode) -> Self {
        self.mode = mode;
        self
    }

    /// Share a plan cache with this executor. `xqp::Database` keeps one
    /// cache per stored document so compiled plans survive across the
    /// short-lived executors it builds per query.
    pub fn with_plan_cache(mut self, cache: Arc<PlanCache>) -> Self {
        self.plan_cache = cache;
        self
    }

    /// The plan cache in use.
    pub fn plan_cache(&self) -> &Arc<PlanCache> {
        &self.plan_cache
    }

    /// Scope the plan-cache keys this executor produces. MVCC snapshots
    /// share one cache per document across versions and fold the snapshot's
    /// generation (and, in the server, the document name) into the scope:
    /// installing a new version *logically* invalidates every cached plan —
    /// old-generation entries stop matching and age out via LRU — without
    /// clearing the cache, so a slow reader still holding the old snapshot
    /// can keep inserting plans under its own generation's keys without
    /// racing fresh entries. Counters (hits/misses/evictions) accumulate
    /// across scopes, preserving cache-traffic continuity over updates.
    pub fn with_cache_scope(mut self, scope: impl Into<String>) -> Self {
        self.cache_scope = Some(scope.into());
        self
    }

    /// Attach a per-query resource governor (deadline, memory budget, row
    /// cap, cancellation). The governor's deadline clock starts when the
    /// governor was created, so build it just before running the query.
    pub fn with_governor(mut self, governor: Arc<ResourceGovernor>) -> Self {
        self.ctx = self.ctx.with_governor(governor);
        self
    }

    /// Attach persistence-traffic counters (from the document's durable
    /// store) so they surface through [`Executor::counters`] and the
    /// `explain` rendering next to the plan-cache line.
    pub fn with_persist_stats(mut self, counters: StoreCounters) -> Self {
        self.persist = Some(counters);
        self
    }

    /// Attach buffer-pool statistics (from the database's page pool) so
    /// they surface through [`Executor::counters`] and the `explain`
    /// rendering next to the persistence line.
    pub fn with_buffer_stats(mut self, stats: BufferStats) -> Self {
        self.buffer = Some(stats);
        self
    }

    /// The execution context (counters, statistics).
    pub fn context(&self) -> &ExecContext<'a> {
        &self.ctx
    }

    /// Work counters accumulated so far (evaluation work from the context,
    /// plan-cache traffic from the cache).
    pub fn counters(&self) -> ExecCounters {
        let mut c = self.ctx.counters();
        let (hits, misses, evictions) = self.plan_cache.stats();
        c.plan_hits = hits;
        c.plan_misses = misses;
        c.plan_evictions = evictions;
        if let Some(p) = self.persist {
            c.persist_bytes_written = p.bytes_written;
            c.persist_records_replayed = p.records_replayed;
            c.persist_compactions = p.compactions;
            c.persist_group_commits = p.group_commits;
            c.persist_group_records = p.group_records;
            c.persist_group_max_batch = p.group_max_batch;
        }
        if let Some(b) = self.buffer {
            c.buffer_hits = b.hits;
            c.buffer_misses = b.misses;
            c.buffer_evictions = b.evictions;
            c.buffer_pinned_peak = b.pinned_peak;
        }
        c
    }

    /// Reset work counters.
    pub fn reset_counters(&self) {
        self.ctx.reset_counters()
    }

    /// The plan-cache variant tag: the strategy, with the worker count kept
    /// for `Parallel` since it changes the lowered plan's annotations, and
    /// the cache scope (document generation under MVCC) prefixed when set.
    fn variant(&self) -> String {
        let base = match self.strategy {
            Strategy::Parallel { threads } => format!("parallel:{threads}"),
            s => s.name().to_string(),
        };
        match &self.cache_scope {
            Some(scope) => format!("{scope}#{base}"),
            None => base,
        }
    }

    /// Front end: parse + rewrite `query` and lower its FLWOR (if any) to
    /// the physical pipeline, consulting the plan cache.
    fn compile(&self, query: &str) -> Result<CompiledPlan, XqError> {
        self.plan_cache.get_or_compile(query, &self.variant(), &self.rules, || {
            let body =
                xqp_xquery::parse_query(query).map_err(|e| XqError::new(e.to_string()))?.body;
            let (body, report) = optimize_expr(body, &self.rules);
            let physical = flwor_of(&body)
                .and_then(|plan| physical::lower(plan, &self.ctx, self.strategy).ok())
                .map(Arc::new);
            Ok(CompiledPlan { body, report, physical })
        })
    }

    /// Run a query, returning the result sequence as items.
    ///
    /// Errors — including governor limit trips — come back decorated with
    /// the query text and the elapsed wall-clock time, so a CLI user can
    /// tell *which* query hit *what* after how long. The decoration keeps
    /// the stable `"resource governor"` class marker intact
    /// ([`XqError::is_resource_limit`] still classifies correctly).
    pub fn query_items(&self, query: &str) -> Result<Val, XqError> {
        let started = Instant::now();
        self.query_items_inner(query).map_err(|e| decorate_error(e, query, started))
    }

    fn query_items_inner(&self, query: &str) -> Result<Val, XqError> {
        let plan = self.compile(query)?;
        let ev = Evaluator::new(&self.ctx, self.strategy)
            .with_mode(self.mode)
            .with_physical(plan.physical.clone());
        let items = ev.eval(&plan.body, &Scope::root())?;
        // Backstop: sweep loops that cannot return `Result` bail out early
        // on a trip, so the sticky trip must resurface here — a truncated
        // result never escapes. The absolute row-cap check covers paths
        // that do not stream their output through `note_rows`.
        self.ctx.governor_check()?;
        self.ctx.governor_check_total_rows(items.len() as u64)?;
        Ok(items)
    }

    /// Run a query, returning serialized XML (items separated per XQuery
    /// serialization: adjacent atoms space-joined, nodes concatenated).
    pub fn query(&self, query: &str) -> Result<String, XqError> {
        let items = self.query_items(query)?;
        Ok(self.serialize_items(&items))
    }

    /// Optimize without executing; returns the plan rendering (including a
    /// plan-cache traffic line) and which rules fired.
    pub fn explain(&self, query: &str) -> Result<(String, RewriteReport), XqError> {
        let plan = self.compile(query)?;
        let mut rendering = render_plan(&plan.body);
        if !rendering.ends_with('\n') {
            rendering.push('\n');
        }
        rendering.push_str(&render_optimizer(&plan.report));
        if let Some(phys) = &plan.physical {
            rendering.push_str(&phys.render(self.mode));
        }
        let (hits, misses, evictions) = self.plan_cache.stats();
        rendering.push_str(&format!(
            "-- plan cache: hits={hits} misses={misses} evictions={evictions} entries={}/{}\n",
            self.plan_cache.len(),
            self.plan_cache.capacity(),
        ));
        let c = self.ctx.counters();
        rendering.push_str(&format!(
            "-- governor: checks={} trips={}\n",
            c.governor_checks, c.governor_trips,
        ));
        if let Some(p) = self.persist {
            rendering.push_str(&format!(
                "-- persistence: bytes_written={} records_replayed={} compactions={} \
                 group_commits={} group_records={} group_max_batch={}\n",
                p.bytes_written,
                p.records_replayed,
                p.compactions,
                p.group_commits,
                p.group_records,
                p.group_max_batch,
            ));
        }
        if let Some(b) = self.buffer {
            rendering.push_str(&format!(
                "-- buffer pool: capacity={} resident={} hits={} misses={} evictions={} \
                 pinned_peak={} overcommits={}\n",
                b.capacity, b.resident, b.hits, b.misses, b.evictions, b.pinned_peak, b.overcommits,
            ));
        }
        Ok((rendering, plan.report))
    }

    /// Evaluate a bare path expression to node ids (strategy-dispatched).
    pub fn eval_path_str(&self, path: &str) -> Result<Vec<SNodeId>, XqError> {
        let parsed = xqp_xpath::parse_path(path).map_err(|e| XqError::new(e.to_string()))?;
        // Relative paths have no context here, so they select nothing (the
        // naive cascade's semantics). Compiling one to a pattern would
        // silently root it at the document instead — the pattern graph has
        // no way to say "relative" — so only absolute paths take the TPM
        // fast path. Found by the differential strategy sweep: `select
        // descendant::b` returned every `b` under NoK/TwigStack/BinaryJoin
        // but nothing under Naive.
        if parsed.absolute && self.strategy != Strategy::Naive && self.rules.fuse_tpm {
            let (op, _) = xqp_algebra::optimize_path(&parsed, &self.rules);
            if let xqp_algebra::PathOp::TpmFrom { pattern, .. } = &op {
                let hits = crate::planner::eval_pattern(&self.ctx, pattern, None, self.strategy);
                self.ctx.governor_check()?;
                return Ok(hits);
            }
        }
        let out = crate::naive::eval_path(&self.ctx, &[], &parsed)?;
        // Same backstop as `query_items`: poll-based sweep bail-outs must
        // not pass off a partial node set as the answer.
        self.ctx.governor_check()?;
        Ok(out
            .into_iter()
            .map(|n| match n {
                NodeRef::Stored(s) => s,
                NodeRef::Built(_) => unreachable!("paths over the stored document"),
            })
            .collect())
    }

    /// Serialize a result sequence.
    pub fn serialize_items(&self, items: &Val) -> String {
        let mut out = String::new();
        let mut prev_atom = false;
        for item in items {
            match item {
                Item::Atom(a) => {
                    if prev_atom {
                        out.push(' ');
                    }
                    out.push_str(&a.as_string());
                    prev_atom = true;
                }
                Item::Node(n) => {
                    out.push_str(&self.serialize_node(*n));
                    prev_atom = false;
                }
            }
        }
        out
    }

    /// Serialize one node (stored or constructed).
    pub fn serialize_node(&self, n: NodeRef) -> String {
        match n {
            NodeRef::Stored(s) => serialize_stored(self.ctx.sdoc, s),
            NodeRef::Built(b) => self.ctx.with_built(|d| xqp_xml::serialize_node(d, b)),
        }
    }
}

/// Attach the query text (trimmed and truncated) and the elapsed wall-clock
/// time to an error — actionable diagnostics for CLI users, most useful for
/// governor deadline trips ("what ran too long, and for how long").
fn decorate_error(e: XqError, query: &str, started: Instant) -> XqError {
    let elapsed = started.elapsed().as_millis();
    let trimmed = query.trim();
    let mut q: String = trimmed.chars().take(80).collect();
    if trimmed.chars().count() > 80 {
        q.push('…');
    }
    XqError::new(format!("{} (query `{q}`, after {elapsed} ms)", e.0))
}

/// Render the optimizer trace: one line per attempted rule pass in pipeline
/// order, with the plan diff of every firing indented beneath it. Empty for
/// non-FLWOR queries (no pipeline ran).
fn render_optimizer(report: &RewriteReport) -> String {
    if report.passes.is_empty() {
        return String::new();
    }
    let fired = report.passes.iter().filter(|p| p.fired).count();
    let mut out = format!(
        "-- optimizer: {} passes, {} fired (budget {})\n",
        report.passes.len(),
        fired,
        xqp_algebra::REWRITE_BUDGET,
    );
    for p in &report.passes {
        out.push_str(&format!("   {}: {}\n", p.rule, if p.fired { "fired" } else { "no match" }));
        for d in &p.diff {
            out.push_str(&format!("     {d}\n"));
        }
    }
    out
}

/// The first FLWOR pipeline embedded in a constructor's schema tree — the
/// paper's Fig. 1 γ-over-pipeline shape.
fn first_flwor(tree: &SchemaTree) -> Option<&LogicalPlan> {
    fn rec(n: &SchemaNode) -> Option<&LogicalPlan> {
        match n {
            SchemaNode::Placeholder(Expr::Flwor(p)) => Some(p),
            SchemaNode::Element { children, .. } => children.iter().find_map(rec),
            SchemaNode::If { then_children, else_children, .. } => {
                then_children.iter().chain(else_children).find_map(rec)
            }
            _ => None,
        }
    }
    rec(&tree.root)
}

/// The FLWOR pipeline a query body runs — direct, or embedded in a γ.
fn flwor_of(body: &Expr) -> Option<&LogicalPlan> {
    match body {
        Expr::Flwor(plan) => Some(plan),
        Expr::Construct(tree) => first_flwor(tree),
        _ => None,
    }
}

/// Render an optimized query body: FLWOR pipelines expand to their plan,
/// and a constructor-topped query (γ over a FLWOR placeholder, the paper's
/// Fig. 1 shape) shows the γ line above the embedded pipeline.
fn render_plan(body: &Expr) -> String {
    match body {
        Expr::Flwor(plan) => plan.explain(),
        Expr::Construct(tree) => match first_flwor(tree) {
            Some(plan) => {
                let mut out = format!("γ[{}]\n", tree.root_name());
                for line in plan.explain().lines() {
                    out.push_str("  ");
                    out.push_str(line);
                    out.push('\n');
                }
                out
            }
            None => format!("γ[{}]\n", tree.root_name()),
        },
        other => format!("{other}\n"),
    }
}

/// Serialize a stored subtree without materializing a DOM.
pub fn serialize_stored(sdoc: &SuccinctDoc, n: SNodeId) -> String {
    let mut out = String::new();
    write_stored(sdoc, n, &mut out);
    out
}

fn write_stored(sdoc: &SuccinctDoc, n: SNodeId, out: &mut String) {
    match sdoc.kind(n) {
        SKind::Text => out.push_str(&escape_text(sdoc.content(n).as_deref().unwrap_or_default())),
        SKind::Attribute => {
            // A bare attribute serializes as name="value".
            out.push_str(sdoc.name(n));
            out.push_str("=\"");
            out.push_str(&escape_attr(sdoc.content(n).as_deref().unwrap_or_default()));
            out.push('"');
        }
        SKind::Element => {
            out.push('<');
            out.push_str(sdoc.name(n));
            let mut has_children = false;
            let kids: Vec<SNodeId> = sdoc.children(n).collect();
            for &c in &kids {
                if sdoc.is_attribute(c) {
                    out.push(' ');
                    out.push_str(sdoc.name(c));
                    out.push_str("=\"");
                    out.push_str(&escape_attr(sdoc.content(c).as_deref().unwrap_or_default()));
                    out.push('"');
                } else {
                    has_children = true;
                }
            }
            if !has_children {
                out.push_str("/>");
                return;
            }
            out.push('>');
            for &c in &kids {
                if !sdoc.is_attribute(c) {
                    write_stored(sdoc, c, out);
                }
            }
            out.push_str("</");
            out.push_str(sdoc.name(n));
            out.push('>');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BIB: &str = "<bib>\
        <book year=\"1994\"><title>TCP</title><author>Stevens</author><price>65</price></book>\
        <book year=\"2000\"><title>Data</title><author>Abiteboul</author><author>Buneman</author><price>39</price></book>\
        </bib>";

    fn exec(doc: &SuccinctDoc) -> Executor<'_> {
        Executor::new(doc)
    }

    #[test]
    fn fig1_use_case_end_to_end() {
        let d = SuccinctDoc::parse(BIB).unwrap();
        let out = exec(&d)
            .query(
                "<results> { for $b in doc(\"bib.xml\")/bib/book \
                 let $t := $b/title let $a := $b/author \
                 return <result> {$t} {$a} </result> } </results>",
            )
            .unwrap();
        assert_eq!(
            out,
            "<results><result><title>TCP</title><author>Stevens</author></result>\
             <result><title>Data</title><author>Abiteboul</author><author>Buneman</author></result></results>"
                .replace("</result>\\\n             <result>", "</result><result>")
        );
    }

    #[test]
    fn path_query_serialization() {
        let d = SuccinctDoc::parse(BIB).unwrap();
        let out = exec(&d).query("/bib/book/title").unwrap();
        assert_eq!(out, "<title>TCP</title><title>Data</title>");
    }

    #[test]
    fn attribute_results_serialize_as_pairs() {
        let d = SuccinctDoc::parse(BIB).unwrap();
        let out = exec(&d).query("/bib/book/@year").unwrap();
        assert_eq!(out, "year=\"1994\"year=\"2000\"");
    }

    #[test]
    fn atom_results_space_joined() {
        let d = SuccinctDoc::parse(BIB).unwrap();
        let out = exec(&d).query("(1, 2, \"x\")").unwrap();
        assert_eq!(out, "1 2 x");
    }

    #[test]
    fn eval_path_str_matches_across_strategies() {
        let d = SuccinctDoc::parse(BIB).unwrap();
        for s in [
            Strategy::Auto,
            Strategy::NoK,
            Strategy::TwigStack,
            Strategy::BinaryJoin,
            Strategy::Naive,
        ] {
            let e = Executor::new(&d).with_strategy(s);
            let hits = e.eval_path_str("//book[price > 50]/title").unwrap();
            assert_eq!(hits.len(), 1, "strategy {s:?}");
            assert_eq!(d.string_value(hits[0]), "TCP");
        }
    }

    #[test]
    fn explain_reports_rules() {
        let d = SuccinctDoc::parse(BIB).unwrap();
        let (plan, report) =
            exec(&d).explain("for $b in doc()/bib/book let $t := $b/title return $t").unwrap();
        assert!(plan.contains("tpm-bind"), "{plan}");
        assert_eq!(report.count("R5"), 1);
    }

    #[test]
    fn explain_without_rules_shows_plain_pipeline() {
        let d = SuccinctDoc::parse(BIB).unwrap();
        let e = Executor::new(&d).with_rules(RuleSet::none());
        let (plan, report) =
            e.explain("for $b in doc()/bib/book let $t := $b/title return $t").unwrap();
        assert!(plan.contains("for $b"), "{plan}");
        assert!(plan.contains("let $t"), "{plan}");
        assert!(report.applied.is_empty());
    }

    #[test]
    fn serialize_stored_escapes() {
        let d = SuccinctDoc::parse("<a x=\"&quot;&amp;\">a&lt;b</a>").unwrap();
        let s = serialize_stored(&d, d.root().unwrap());
        assert_eq!(s, "<a x=\"&quot;&amp;\">a&lt;b</a>");
    }

    #[test]
    fn parse_errors_surface() {
        let d = SuccinctDoc::parse(BIB).unwrap();
        assert!(exec(&d).query("for $x in").is_err());
        assert!(exec(&d).eval_path_str("//a[").is_err());
    }

    #[test]
    fn repeated_queries_hit_the_plan_cache() {
        let d = SuccinctDoc::parse(BIB).unwrap();
        let e = exec(&d);
        let a = e.query("/bib/book/title").unwrap();
        let b = e.query("/bib/book/title").unwrap();
        let c = e.query("  /bib/book/title  ").unwrap();
        assert_eq!(a, b);
        assert_eq!(a, c);
        let counters = e.counters();
        assert_eq!(counters.plan_misses, 1);
        assert_eq!(counters.plan_hits, 2);
    }

    #[test]
    fn explain_shows_physical_plan_with_actuals_after_execution() {
        let d = SuccinctDoc::parse(BIB).unwrap();
        let e = exec(&d);
        let q = "for $b in doc()/bib/book where $b/price > 50 return $b/title";
        let (plan, _) = e.explain(q).unwrap();
        assert!(plan.contains("-- physical plan (streaming, batch=64)"), "{plan}");
        assert!(plan.contains("construct"), "{plan}");
        assert!(plan.contains("actual 0 rows"), "explain alone must not execute: {plan}");
        e.query(q).unwrap();
        let (plan, _) = e.explain(q).unwrap();
        assert!(plan.contains("actual 1 rows"), "{plan}");
    }

    #[test]
    fn materializing_mode_matches_streaming() {
        let d = SuccinctDoc::parse(BIB).unwrap();
        let q = "for $b in doc()/bib/book order by $b/price return $b/title";
        let streaming = exec(&d).query(q).unwrap();
        let materializing = exec(&d).with_eval_mode(EvalMode::Materializing).query(q).unwrap();
        assert_eq!(streaming, materializing);
        let (plan, _) = exec(&d).with_eval_mode(EvalMode::Materializing).explain(q).unwrap();
        assert!(plan.contains("(materializing, batch=64)"), "{plan}");
    }

    #[test]
    fn explain_shows_plan_cache_line() {
        let d = SuccinctDoc::parse(BIB).unwrap();
        let e = exec(&d);
        let (plan, _) = e.explain("/bib/book/title").unwrap();
        assert!(plan.contains("-- plan cache: hits=0 misses=1"), "{plan}");
        let (plan, _) = e.explain("/bib/book/title").unwrap();
        assert!(plan.contains("hits=1"), "{plan}");
        assert!(plan.contains("entries=1/"), "{plan}");
    }

    #[test]
    fn counters_accessible() {
        let d = SuccinctDoc::parse(BIB).unwrap();
        let e = exec(&d);
        e.reset_counters();
        let _ = e.query("/bib/book/title").unwrap();
        assert!(e.counters().nodes_visited > 0 || e.counters().stream_items > 0);
    }
}
