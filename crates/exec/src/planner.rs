//! Physical access-method selection for tree patterns.
//!
//! One logical τ, four physical operators (§2: "for each logical operator,
//! many physical operators that implement the same functionalities could be
//! defined … a cost model is needed as a basis of choosing the optimal
//! physical query plan"):
//!
//! | strategy | operator | module |
//! |----------|----------|--------|
//! | `NoK` | single-scan navigational matcher (hybrid with R3 partitioning) | [`crate::nok`] |
//! | `TwigStack` | holistic twig join over tag streams | [`crate::twig`] |
//! | `BinaryJoin` | per-arc stack-tree structural joins | [`crate::structural`] |
//! | `Naive` | node-at-a-time navigation of the surface path | [`crate::naive`] |
//! | `Auto` | cost-model choice among the above | here |

use crate::context::ExecContext;
use crate::{nok, structural, twig};
use xqp_algebra::plan::TpmVar;
use xqp_algebra::{CostModel, TpmAccess};
use xqp_storage::SNodeId;
use xqp_xpath::PatternGraph;

/// Which physical operator evaluates tree patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Cost-based choice.
    #[default]
    Auto,
    /// NoK navigational matching (the paper's approach).
    NoK,
    /// Holistic twig join.
    TwigStack,
    /// Binary structural-join pipeline.
    BinaryJoin,
    /// Surface-path navigation (set on the Executor, resolved before
    /// pattern evaluation — patterns reaching this module fall back to NoK).
    Naive,
    /// Partitioned parallel join-based evaluation over scoped threads
    /// (`threads == 0` means one worker per hardware thread).
    Parallel {
        /// Worker-thread count; `0` = auto.
        threads: usize,
    },
}

impl Strategy {
    /// Parse from a CLI-ish name. `parallel` takes an optional worker count
    /// after a colon: `parallel:4` (bare `parallel` = auto).
    pub fn from_name(name: &str) -> Option<Strategy> {
        let lower = name.to_ascii_lowercase();
        if let Some(n) = lower.strip_prefix("parallel:") {
            return n.parse().ok().map(|threads| Strategy::Parallel { threads });
        }
        match lower.as_str() {
            "auto" => Some(Strategy::Auto),
            "nok" => Some(Strategy::NoK),
            "twigstack" | "twig" => Some(Strategy::TwigStack),
            "binaryjoin" | "binary" | "join" => Some(Strategy::BinaryJoin),
            "naive" => Some(Strategy::Naive),
            "parallel" => Some(Strategy::Parallel { threads: 0 }),
            _ => None,
        }
    }

    /// Display name (the worker count of `Parallel` is not rendered).
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Auto => "auto",
            Strategy::NoK => "nok",
            Strategy::TwigStack => "twigstack",
            Strategy::BinaryJoin => "binaryjoin",
            Strategy::Naive => "naive",
            Strategy::Parallel { .. } => "parallel",
        }
    }
}

/// Cost-model choice for one pattern (the `Auto` policy): a pure NoK
/// pattern takes the single scan; otherwise the cheaper of the NoK hybrid
/// scan and the holistic twig join by estimated work.
pub fn choose(ctx: &ExecContext<'_>, g: &PatternGraph) -> Strategy {
    let stats = ctx.stats();
    let cm = CostModel::new(stats);
    match cm.choose_access(g) {
        (TpmAccess::TwigStack, _) => Strategy::TwigStack,
        (TpmAccess::BinaryJoin, _) => Strategy::BinaryJoin,
        (TpmAccess::NokScan, _) => Strategy::NoK,
    }
}

/// Resolve, for each τ output variable, the vertex it anchors under and the
/// previously-bound variable naming that vertex (`None` ⇒ anchored at the
/// pattern root). Shared by the materializing `TpmBind` interpreter and the
/// streaming `TpmScan` operator so both derive identical binding layers.
pub(crate) fn tpm_anchor_chain(
    pattern: &PatternGraph,
    vars: &[TpmVar],
) -> Vec<(usize, Option<String>)> {
    let mut vertex_var: Vec<(usize, String)> = Vec::new();
    let mut out = Vec::with_capacity(vars.len());
    for tv in vars {
        // Find the nearest ancestor vertex already bound to a variable.
        let mut cur = tv.vertex;
        let mut found: Option<(usize, String)> = None;
        while let Some(arc) = pattern.incoming(cur) {
            cur = arc.from;
            if let Some((_, name)) = vertex_var.iter().find(|(vx, _)| *vx == cur) {
                found = Some((cur, name.clone()));
                break;
            }
        }
        out.push(match found {
            Some((vx, name)) => (vx, Some(name)),
            None => (pattern.root(), None),
        });
        vertex_var.push((tv.vertex, tv.var.clone()));
    }
    out
}

/// Evaluate a single-output pattern with the given strategy.
pub fn eval_pattern(
    ctx: &ExecContext<'_>,
    g: &PatternGraph,
    context: Option<SNodeId>,
    strategy: Strategy,
) -> Vec<SNodeId> {
    match strategy {
        Strategy::Auto => {
            let s = choose(ctx, g);
            eval_pattern(ctx, g, context, s)
        }
        Strategy::NoK | Strategy::Naive => nok::eval_single_output(ctx, g, context),
        Strategy::TwigStack => twig::eval_pattern_holistic(ctx, g, context),
        Strategy::BinaryJoin => structural::eval_pattern_binary(ctx, g, context),
        Strategy::Parallel { threads } => {
            crate::parallel::eval_pattern_parallel(ctx, g, context, threads)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqp_storage::SuccinctDoc;
    use xqp_xpath::parse_path;

    const DOC: &str = "<r><a><b>1</b></a><a><b>2</b><c/></a><d/></r>";

    #[test]
    fn strategy_names_roundtrip() {
        for s in [
            Strategy::Auto,
            Strategy::NoK,
            Strategy::TwigStack,
            Strategy::BinaryJoin,
            Strategy::Naive,
            Strategy::Parallel { threads: 0 },
        ] {
            assert_eq!(Strategy::from_name(s.name()), Some(s));
        }
        assert_eq!(Strategy::from_name("parallel:4"), Some(Strategy::Parallel { threads: 4 }));
        assert_eq!(Strategy::from_name("bogus"), None);
        assert_eq!(Strategy::from_name("parallel:x"), None);
    }

    #[test]
    fn auto_prefers_nok_for_pure_nok_patterns() {
        let d = SuccinctDoc::parse(DOC).unwrap();
        let ctx = ExecContext::new(&d);
        let g = PatternGraph::from_path(&parse_path("/r/a[b]/c").unwrap()).unwrap();
        assert_eq!(choose(&ctx, &g), Strategy::NoK);
    }

    #[test]
    fn all_strategies_agree() {
        let d = SuccinctDoc::parse(DOC).unwrap();
        let ctx = ExecContext::new(&d);
        for path in ["/r/a/b", "//a[c]/b", "//b", "/r//c"] {
            let g = PatternGraph::from_path(&parse_path(path).unwrap()).unwrap();
            let nok = eval_pattern(&ctx, &g, None, Strategy::NoK);
            let twig = eval_pattern(&ctx, &g, None, Strategy::TwigStack);
            let joins = eval_pattern(&ctx, &g, None, Strategy::BinaryJoin);
            let auto = eval_pattern(&ctx, &g, None, Strategy::Auto);
            let par = eval_pattern(&ctx, &g, None, Strategy::Parallel { threads: 4 });
            assert_eq!(nok, twig, "{path}");
            assert_eq!(nok, joins, "{path}");
            assert_eq!(nok, auto, "{path}");
            assert_eq!(nok, par, "{path}");
        }
    }
}
