//! The γ operator — tree construction (Definition 2 applied).
//!
//! γ takes the intermediate results (variable bindings / nested lists) and
//! the SchemaTree extracted from the constructor expression, and produces a
//! labeled output tree (§3.2: "the γ operator takes the intermediate results
//! together with the output schema, and produces the resulting XML
//! document"). Placeholders are replaced by their expressions' values:
//! node items are **copied** into the output arena (XQuery constructor
//! semantics), adjacent atomic values are joined with single spaces, and
//! if-nodes materialize the branch their condition selects.

use crate::context::{ExecContext, NodeRef, Val, XqError};
use xqp_algebra::{Item, SchemaNode, SchemaTree};
use xqp_storage::{SKind, SNodeId};
use xqp_xml::NodeId;

/// Evaluate placeholder expressions through this callback.
pub type EvalFn<'f> = dyn FnMut(&xqp_algebra::Expr) -> Result<Val, XqError> + 'f;

/// Build the tree for `schema`, returning the root of the constructed
/// subtree in the output arena.
pub fn build(
    ctx: &ExecContext<'_>,
    schema: &SchemaTree,
    eval: &mut EvalFn<'_>,
) -> Result<NodeRef, XqError> {
    match &schema.root {
        SchemaNode::Element { .. } => {
            let arena_root = ctx.with_built_mut(|d| d.root());
            let id = build_node(ctx, &schema.root, arena_root, eval)?
                .expect("element constructor builds a node");
            Ok(NodeRef::Built(id))
        }
        other => {
            Err(XqError::new(format!("top-level constructor must be an element, found {other:?}")))
        }
    }
}

/// Build one schema node under `parent`; returns the created node id for
/// elements (content nodes return `None`).
fn build_node(
    ctx: &ExecContext<'_>,
    node: &SchemaNode,
    parent: NodeId,
    eval: &mut EvalFn<'_>,
) -> Result<Option<NodeId>, XqError> {
    // γ construction can copy arbitrarily large subtrees per placeholder;
    // one governor check per constructed schema node bounds the interval
    // between cancellation points.
    ctx.governor_check()?;
    match node {
        SchemaNode::Element { name, attributes, children } => {
            let el = ctx.with_built_mut(|d| d.append_element(parent, name.clone()));
            for (attr, expr) in attributes {
                let v = eval(expr)?;
                let s = space_joined(ctx, &v);
                ctx.with_built_mut(|d| d.set_attribute(el, attr.clone(), s));
            }
            for c in children {
                build_node(ctx, c, el, eval)?;
            }
            Ok(Some(el))
        }
        SchemaNode::Text(t) => {
            ctx.with_built_mut(|d| d.append_text(parent, t.clone()));
            Ok(None)
        }
        SchemaNode::Placeholder(expr) => {
            let v = eval(expr)?;
            insert_value(ctx, parent, &v)?;
            Ok(None)
        }
        SchemaNode::If { cond, then_children, else_children } => {
            let c = eval(cond)?;
            let branch = if crate::naive::ebv(&c) { then_children } else { else_children };
            for b in branch {
                build_node(ctx, b, parent, eval)?;
            }
            Ok(None)
        }
    }
}

/// Attribute-value rendering: atomize everything, join with single spaces
/// (nodes contribute their string values).
fn space_joined(ctx: &ExecContext<'_>, v: &Val) -> String {
    ctx.atomize(v).iter().map(|a| a.as_string()).collect::<Vec<_>>().join(" ")
}

/// Insert a placeholder's value: nodes are deep-copied, runs of atoms become
/// one space-separated text node.
fn insert_value(ctx: &ExecContext<'_>, parent: NodeId, v: &Val) -> Result<(), XqError> {
    let mut atom_run: Vec<String> = Vec::new();
    let flush = |run: &mut Vec<String>, ctx: &ExecContext<'_>| {
        if !run.is_empty() {
            let text = run.join(" ");
            ctx.with_built_mut(|d| d.append_text(parent, text));
            run.clear();
        }
    };
    for item in v {
        match item {
            Item::Atom(a) => atom_run.push(a.as_string()),
            Item::Node(n) => {
                flush(&mut atom_run, ctx);
                copy_node(ctx, *n, parent)?;
            }
        }
    }
    flush(&mut atom_run, ctx);
    Ok(())
}

/// Deep-copy any node into the output arena under `parent`.
pub fn copy_node(ctx: &ExecContext<'_>, n: NodeRef, parent: NodeId) -> Result<(), XqError> {
    match n {
        NodeRef::Stored(s) => copy_stored(ctx, s, parent),
        NodeRef::Built(b) => {
            // Copy within the arena: snapshot the source subtree first (the
            // arena grows while we write).
            let snapshot = ctx.with_built(|d| d.clone());
            copy_built(ctx, &snapshot, b, parent);
            Ok(())
        }
    }
}

fn copy_stored(ctx: &ExecContext<'_>, s: SNodeId, parent: NodeId) -> Result<(), XqError> {
    match ctx.sdoc.kind(s) {
        SKind::Element => {
            let name = ctx.sdoc.name(s).to_string();
            let el = ctx.with_built_mut(|d| d.append_element(parent, name));
            let kids: Vec<SNodeId> = ctx.sdoc.children(s).collect();
            for c in kids {
                if ctx.sdoc.is_attribute(c) {
                    let an = ctx.sdoc.name(c).to_string();
                    let av = ctx.sdoc.content(c).unwrap_or_default().to_string();
                    ctx.with_built_mut(|d| d.set_attribute(el, an, av));
                } else {
                    copy_stored(ctx, c, el)?;
                }
            }
            Ok(())
        }
        SKind::Text => {
            let t = ctx.sdoc.content(s).unwrap_or_default().to_string();
            ctx.with_built_mut(|d| d.append_text(parent, t));
            Ok(())
        }
        SKind::Attribute => {
            // An attribute item in element content attaches to the element.
            let an = ctx.sdoc.name(s).to_string();
            let av = ctx.sdoc.content(s).unwrap_or_default().to_string();
            ctx.with_built_mut(|d| {
                if d.is_element(parent) {
                    d.set_attribute(parent, an, av);
                }
            });
            Ok(())
        }
    }
}

fn copy_built(ctx: &ExecContext<'_>, src: &xqp_xml::Document, b: NodeId, parent: NodeId) {
    use xqp_xml::NodeKind;
    match &src.node(b).kind {
        NodeKind::Element { name, attributes } => {
            let el = ctx.with_built_mut(|d| d.append_element(parent, name.as_lexical()));
            for &aid in attributes {
                if let NodeKind::Attribute { name, value } = &src.node(aid).kind {
                    let (an, av) = (name.as_lexical(), value.clone());
                    ctx.with_built_mut(|d| d.set_attribute(el, an, av));
                }
            }
            for c in src.children(b) {
                copy_built(ctx, src, c, el);
            }
        }
        NodeKind::Text(t) => {
            let t = t.clone();
            ctx.with_built_mut(|d| d.append_text(parent, t));
        }
        NodeKind::Attribute { name, value } => {
            let (an, av) = (name.as_lexical(), value.clone());
            ctx.with_built_mut(|d| {
                if d.is_element(parent) {
                    d.set_attribute(parent, an, av);
                }
            });
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqp_algebra::Expr;
    use xqp_storage::SuccinctDoc;
    use xqp_xml::{serialize_node, Atomic};

    fn render(ctx: &ExecContext<'_>, n: NodeRef) -> String {
        match n {
            NodeRef::Built(b) => ctx.with_built(|d| serialize_node(d, b)),
            NodeRef::Stored(_) => unreachable!("construction builds arena nodes"),
        }
    }

    fn schema(src: &str) -> SchemaTree {
        match xqp_xquery::parse_query(src).unwrap().body {
            Expr::Construct(t) => *t,
            other => panic!("expected constructor, got {other:?}"),
        }
    }

    #[test]
    fn static_construction() {
        let sdoc = SuccinctDoc::parse("<unused/>").unwrap();
        let ctx = ExecContext::new(&sdoc);
        let t = schema("<a x=\"1\"><b>hi</b></a>");
        // The eval callback must at least handle literals (attribute
        // templates are expressions).
        let n = build(&ctx, &t, &mut |e| match e {
            Expr::Literal(a) => Ok(vec![Item::Atom(a.clone())]),
            _ => Ok(vec![]),
        })
        .unwrap();
        assert_eq!(render(&ctx, n), "<a x=\"1\"><b>hi</b></a>");
    }

    #[test]
    fn placeholder_atoms_join_with_spaces() {
        let sdoc = SuccinctDoc::parse("<unused/>").unwrap();
        let ctx = ExecContext::new(&sdoc);
        let t = schema("<n>{$x}</n>");
        let n = build(&ctx, &t, &mut |_| {
            Ok(vec![
                Item::Atom(Atomic::Integer(1)),
                Item::Atom(Atomic::Integer(2)),
                Item::Atom(Atomic::Str("three".into())),
            ])
        })
        .unwrap();
        assert_eq!(render(&ctx, n), "<n>1 2 three</n>");
    }

    #[test]
    fn placeholder_copies_stored_subtrees() {
        let sdoc = SuccinctDoc::parse("<bib><book y=\"1\"><t>A</t></book></bib>").unwrap();
        let ctx = ExecContext::new(&sdoc);
        let book = sdoc.child_elements(sdoc.root().unwrap()).next().unwrap();
        let t = schema("<out>{$b}</out>");
        let n = build(&ctx, &t, &mut |_| Ok(vec![Item::Node(NodeRef::Stored(book))])).unwrap();
        assert_eq!(render(&ctx, n), "<out><book y=\"1\"><t>A</t></book></out>");
    }

    #[test]
    fn attribute_templates_evaluate() {
        let sdoc = SuccinctDoc::parse("<u/>").unwrap();
        let ctx = ExecContext::new(&sdoc);
        let t = schema("<r id=\"{$i}\"/>");
        let n = build(&ctx, &t, &mut |_| Ok(vec![Item::Atom(Atomic::Integer(9))])).unwrap();
        assert_eq!(render(&ctx, n), "<r id=\"9\"/>");
    }

    #[test]
    fn if_nodes_choose_branch() {
        let sdoc = SuccinctDoc::parse("<u/>").unwrap();
        let ctx = ExecContext::new(&sdoc);
        let t = schema("<r>{ if ($c) then <yes/> else () }</r>");
        let n = build(&ctx, &t, &mut |e| match e {
            Expr::Var(v) if v == "c" => Ok(vec![Item::Atom(Atomic::Boolean(true))]),
            _ => Ok(vec![]),
        })
        .unwrap();
        assert_eq!(render(&ctx, n), "<r><yes/></r>");
        let n2 = build(&ctx, &t, &mut |e| match e {
            Expr::Var(v) if v == "c" => Ok(vec![Item::Atom(Atomic::Boolean(false))]),
            _ => Ok(vec![]),
        })
        .unwrap();
        assert_eq!(render(&ctx, n2), "<r/>");
    }

    #[test]
    fn copying_built_nodes() {
        let sdoc = SuccinctDoc::parse("<u/>").unwrap();
        let ctx = ExecContext::new(&sdoc);
        // Build an inner node first, then embed it in an outer constructor.
        let inner = build(&ctx, &schema("<inner>x</inner>"), &mut |_| Ok(vec![])).unwrap();
        let outer =
            build(&ctx, &schema("<outer>{$i}</outer>"), &mut |_| Ok(vec![Item::Node(inner)]))
                .unwrap();
        assert_eq!(render(&ctx, outer), "<outer><inner>x</inner></outer>");
    }

    #[test]
    fn nested_constructor_roundtrip_via_parser() {
        let sdoc = SuccinctDoc::parse("<u/>").unwrap();
        let ctx = ExecContext::new(&sdoc);
        let t = schema("<results><result><title>T</title></result></results>");
        let n = build(&ctx, &t, &mut |_| Ok(vec![])).unwrap();
        assert_eq!(render(&ctx, n), "<results><result><title>T</title></result></results>");
    }
}
