//! Compiled-plan cache: memoizes the parse → rewrite pipeline.
//!
//! Under steady traffic the same query texts recur (dashboards, stored
//! reports, API endpoints), and for small documents the parse + rewrite
//! front end dominates evaluation. The cache keys on *normalized* query
//! text — whitespace runs outside string literals collapse to one space, so
//! reformatting a query does not defeat the cache — plus a fingerprint of
//! the active rewrite-rule set (the same text optimizes differently under
//! different rules) and the executor's strategy variant (a cached physical
//! plan embeds strategy-dependent access-method annotations).
//!
//! Concurrency: an `RwLock`-guarded map, sized by an LRU cap. Hits take
//! only the read lock (the recency stamp is a per-entry atomic, writable
//! through a shared reference), so concurrent readers never serialize;
//! inserts and evictions take the write lock. Counters are atomics and are
//! surfaced through [`crate::ExecCounters`] and `Executor::explain`.

use crate::physical::PhysicalPlan;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};
use xqp_algebra::{Expr, RewriteReport, RuleSet};

/// A fully front-ended query: the optimized body, the rewrite report (which
/// `explain` surfaces), and the lowered physical pipeline for the top-level
/// FLWOR, if the body has one. Cloned out of the cache per execution; `Expr`
/// is a plain tree and the physical plan is shared behind an `Arc`, so a
/// clone is cheap relative to parse + rewrite + lowering.
#[derive(Debug, Clone)]
pub struct CompiledPlan {
    /// Optimized query body, ready for the evaluator.
    pub body: Expr,
    /// Which rewrite rules fired during optimization.
    pub report: RewriteReport,
    /// Physical pipeline lowered from the body's FLWOR, if any. Shared so
    /// repeated executions accumulate actual row counts for `explain`.
    pub physical: Option<Arc<PhysicalPlan>>,
}

struct Entry {
    plan: CompiledPlan,
    /// Logical timestamp of the last hit (for LRU eviction). An atomic so
    /// the read-lock path can refresh it.
    last_used: AtomicU64,
}

/// Default number of compiled plans kept per document.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 64;

/// An LRU cache of compiled plans, safe to share across threads.
pub struct PlanCache {
    map: RwLock<HashMap<String, Entry>>,
    capacity: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

// A serving process shares one cache across every connection thread.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PlanCache>();
};

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new(DEFAULT_PLAN_CACHE_CAPACITY)
    }
}

impl PlanCache {
    /// A cache holding at most `capacity` plans (minimum 1).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            map: RwLock::new(HashMap::new()),
            capacity: capacity.max(1),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Read the map, recovering from poison. A panicking query thread (e.g.
    /// a worker unwinding mid-evaluation in a serving process) must not
    /// poison the shared cache for every other session: the map's entries
    /// are only ever whole, committed plans — insertion is a single
    /// `HashMap::insert` after compilation finished — so the data is valid
    /// even if some thread died while holding the guard.
    fn read_map(&self) -> RwLockReadGuard<'_, HashMap<String, Entry>> {
        self.map.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Write-lock the map, recovering from poison (see [`Self::read_map`]).
    fn write_map(&self) -> RwLockWriteGuard<'_, HashMap<String, Entry>> {
        self.map.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Look up the plan for `query` under `rules` and the planning
    /// `variant` (the executor's strategy tag — lowered physical plans
    /// embed strategy-dependent access annotations, so different strategies
    /// must not share a slot). Compiles and inserts on a miss. Compilation
    /// runs outside any lock; if two threads miss on the same key
    /// simultaneously, both compile and one insert wins — duplicated work,
    /// never a wrong result.
    pub fn get_or_compile<E>(
        &self,
        query: &str,
        variant: &str,
        rules: &RuleSet,
        compile: impl FnOnce() -> Result<CompiledPlan, E>,
    ) -> Result<CompiledPlan, E> {
        let key = cache_key(query, variant, rules);
        {
            let map = self.read_map();
            if let Some(entry) = map.get(&key) {
                let now = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
                entry.last_used.store(now, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(entry.plan.clone());
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let plan = compile()?;
        let mut map = self.write_map();
        if !map.contains_key(&key) && map.len() >= self.capacity {
            // Evict the stalest entry. O(n) over a small, capped map.
            if let Some(victim) = map
                .iter()
                .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| k.clone())
            {
                map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        let now = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        map.insert(key, Entry { plan: plan.clone(), last_used: AtomicU64::new(now) });
        Ok(plan)
    }

    /// Drop every cached plan. Called after the underlying document changes
    /// (a cached plan may embed document-dependent planning decisions, and
    /// keeping stale entries would charge hits against the wrong document
    /// generation).
    pub fn invalidate(&self) {
        self.write_map().clear();
    }

    /// Number of plans currently cached.
    pub fn len(&self) -> usize {
        self.read_map().len()
    }

    /// True if no plans are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The LRU capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Snapshot of (hits, misses, evictions).
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.evictions.load(Ordering::Relaxed),
        )
    }
}

/// The cache key: rule fingerprint, planning variant, normalized query text.
fn cache_key(query: &str, variant: &str, rules: &RuleSet) -> String {
    format!("{:03x}|{variant}|{}", rules_fingerprint(rules), normalize_query(query))
}

/// One bit per rewrite rule, R1 lowest.
fn rules_fingerprint(r: &RuleSet) -> u32 {
    [
        r.fuse_tpm,
        r.pushdown_values,
        r.nok_partition,
        r.join_order,
        r.flwor_to_tpm,
        r.prune_outputs,
        r.dead_let,
        r.const_fold,
        r.where_pushdown,
        r.predicate_pushdown,
        r.projection_pushdown,
        r.join_isolation,
    ]
    .iter()
    .enumerate()
    .fold(0u32, |acc, (i, &on)| acc | ((on as u32) << i))
}

/// Collapse whitespace runs outside string literals to a single space and
/// trim the ends, so `for $x in //a return $x` and its pretty-printed
/// variants share a cache slot. Whitespace inside quotes is semantic
/// (string content) and is preserved verbatim; both quote styles and
/// XQuery's doubled-quote escapes (`""` inside `"…"`) are honoured.
pub fn normalize_query(q: &str) -> String {
    let mut out = String::with_capacity(q.len());
    let mut chars = q.chars().peekable();
    let mut pending_space = false;
    while let Some(c) = chars.next() {
        match c {
            '"' | '\'' => {
                if pending_space && !out.is_empty() {
                    out.push(' ');
                }
                pending_space = false;
                let quote = c;
                out.push(quote);
                while let Some(&n) = chars.peek() {
                    chars.next();
                    out.push(n);
                    if n == quote {
                        // XQuery escapes a quote by doubling it.
                        if chars.peek() == Some(&quote) {
                            chars.next();
                            out.push(quote);
                        } else {
                            break;
                        }
                    }
                }
            }
            c if c.is_whitespace() => pending_space = true,
            c => {
                if pending_space && !out.is_empty() {
                    out.push(' ');
                }
                pending_space = false;
                out.push(c);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan_named(tag: &str) -> CompiledPlan {
        CompiledPlan {
            body: Expr::Literal(xqp_xml::Atomic::Str(tag.into())),
            report: RewriteReport::default(),
            physical: None,
        }
    }

    fn plan_tag(p: &CompiledPlan) -> String {
        match &p.body {
            Expr::Literal(xqp_xml::Atomic::Str(s)) => s.clone(),
            other => panic!("unexpected plan body {other:?}"),
        }
    }

    #[test]
    fn normalization_collapses_outer_whitespace_only() {
        assert_eq!(normalize_query("  //a  /  b  "), "//a / b");
        assert_eq!(normalize_query("for   $x\n\tin //a\nreturn $x"), "for $x in //a return $x");
        assert_eq!(normalize_query("//a[. = \"x  y\"]"), "//a[. = \"x  y\"]");
        assert_eq!(normalize_query("//a[. = 'p  q']"), "//a[. = 'p  q']");
        // Doubled-quote escape: the literal continues past the "" pair.
        assert_eq!(
            normalize_query("\"he said \"\"hi   there\"\"\"   //a"),
            "\"he said \"\"hi   there\"\"\" //a"
        );
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let cache = PlanCache::new(4);
        let rules = RuleSet::all();
        let mut compiled = 0;
        for _ in 0..3 {
            let p = cache
                .get_or_compile::<()>("//a", "auto", &rules, || {
                    compiled += 1;
                    Ok(plan_named("p1"))
                })
                .unwrap();
            assert_eq!(plan_tag(&p), "p1");
        }
        assert_eq!(compiled, 1);
        assert_eq!(cache.stats(), (2, 1, 0));
        // Reformatted text hits the same slot.
        let p =
            cache.get_or_compile::<()>("  //a  ", "auto", &rules, || panic!("should hit")).unwrap();
        assert_eq!(plan_tag(&p), "p1");
        assert_eq!(cache.stats(), (3, 1, 0));
    }

    #[test]
    fn different_rules_do_not_share_plans() {
        let cache = PlanCache::new(4);
        cache
            .get_or_compile::<()>("//a", "auto", &RuleSet::all(), || Ok(plan_named("all")))
            .unwrap();
        let p = cache
            .get_or_compile::<()>("//a", "auto", &RuleSet::none(), || Ok(plan_named("none")))
            .unwrap();
        assert_eq!(plan_tag(&p), "none");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn different_variants_do_not_share_plans() {
        let cache = PlanCache::new(4);
        let rules = RuleSet::all();
        cache.get_or_compile::<()>("//a", "auto", &rules, || Ok(plan_named("auto"))).unwrap();
        let p = cache
            .get_or_compile::<()>("//a", "parallel:4", &rules, || Ok(plan_named("par")))
            .unwrap();
        assert_eq!(plan_tag(&p), "par");
        assert_eq!(cache.len(), 2);
        // Same variant still hits.
        let p = cache
            .get_or_compile::<()>("//a", "parallel:4", &rules, || panic!("should hit"))
            .unwrap();
        assert_eq!(plan_tag(&p), "par");
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let cache = PlanCache::new(2);
        let rules = RuleSet::all();
        cache.get_or_compile::<()>("//a", "auto", &rules, || Ok(plan_named("a"))).unwrap();
        cache.get_or_compile::<()>("//b", "auto", &rules, || Ok(plan_named("b"))).unwrap();
        // Touch //a so //b is the LRU victim.
        cache.get_or_compile::<()>("//a", "auto", &rules, || panic!("hit")).unwrap();
        cache.get_or_compile::<()>("//c", "auto", &rules, || Ok(plan_named("c"))).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().2, 1, "one eviction");
        // //a survived, //b was evicted.
        cache.get_or_compile::<()>("//a", "auto", &rules, || panic!("hit")).unwrap();
        let mut recompiled = false;
        cache
            .get_or_compile::<()>("//b", "auto", &rules, || {
                recompiled = true;
                Ok(plan_named("b"))
            })
            .unwrap();
        assert!(recompiled, "//b must have been evicted");
    }

    #[test]
    fn compile_errors_are_not_cached() {
        let cache = PlanCache::new(4);
        let rules = RuleSet::all();
        let r: Result<_, String> =
            cache.get_or_compile("//bad", "auto", &rules, || Err("syntax".to_string()));
        assert!(r.is_err());
        assert_eq!(cache.len(), 0);
        // The next attempt compiles again (and may succeed).
        let r: Result<_, String> =
            cache.get_or_compile("//bad", "auto", &rules, || Ok(plan_named("ok")));
        assert!(r.is_ok());
        assert_eq!(cache.stats().1, 2, "both attempts were misses");
    }

    #[test]
    fn invalidate_clears_entries_but_keeps_counters() {
        let cache = PlanCache::new(4);
        let rules = RuleSet::all();
        cache.get_or_compile::<()>("//a", "auto", &rules, || Ok(plan_named("a"))).unwrap();
        cache.get_or_compile::<()>("//a", "auto", &rules, || panic!("hit")).unwrap();
        cache.invalidate();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), (1, 1, 0));
        let mut recompiled = false;
        cache
            .get_or_compile::<()>("//a", "auto", &rules, || {
                recompiled = true;
                Ok(plan_named("a"))
            })
            .unwrap();
        assert!(recompiled);
    }
}
