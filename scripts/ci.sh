#!/usr/bin/env bash
# CI gate for the repo. Everything runs fully offline — the workspace has no
# registry dependencies by default (see the `proptest` feature note in the
# root Cargo.toml), so `--offline` must always succeed.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== format gate =="
cargo fmt --check

echo "== lint gate: clippy, warnings are errors =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tier-1 gate: release build + test =="
cargo build --release
cargo test -q

echo "== full workspace, offline =="
cargo test --workspace --offline

echo "== crash-recovery suite =="
cargo test --offline --test recovery --test persistence

echo "== release CLI builds =="
cargo build --release --offline -p xqp --bin xqp

echo "== benches compile (std harness, no criterion) =="
cargo build --offline --benches -p xqp-bench

echo "== E16 smoke: streaming vs materializing pipeline (release) =="
cargo bench --offline -p xqp-bench --bench exp_flwor_pipeline

echo "CI gate passed."
