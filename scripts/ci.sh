#!/usr/bin/env bash
# CI gate for the repo. Everything runs fully offline — the workspace has no
# registry dependencies by default (see the `proptest` feature note in the
# root Cargo.toml), so `--offline` must always succeed.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== format gate =="
cargo fmt --check

echo "== lint gate: clippy, warnings are errors =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tier-1 gate: release build + test =="
cargo build --release
cargo test -q

echo "== full workspace, offline =="
cargo test --workspace --offline

echo "== crash-recovery suite =="
cargo test --offline --test recovery --test persistence

echo "== release CLI builds =="
cargo build --release --offline -p xqp --bin xqp

echo "== differential regression corpus =="
cargo test --offline --test differential -q

echo "== differential fuzz smoke: 200 fresh cases across the engine matrix =="
# Seed from the commit so every CI run explores a different slice of the
# case space while staying reproducible from the log line it prints.
FUZZ_SEED=$((16#$(git rev-parse --short=8 HEAD 2>/dev/null || echo 1)))
./target/release/xqp fuzz --seed "$FUZZ_SEED" --iters 200

echo "== optimizer-rule fuzz smoke: 200 join-shaped cases across every rule ablation =="
# Join-shaped generator + the rule leg: every case is additionally checked
# with all rules / no rules / each of R10-R12 disabled against the
# all-rules reference, under all 12 Strategy x EvalMode configurations.
./target/release/xqp fuzz --joins --seed "$FUZZ_SEED" --iters 200

echo "== fault-injection torture smoke: 300 seeded I/O fault points =="
# Same commit-derived seed: reproducible from the log, different slice of
# the fault space per commit. Any recovery-invariant violation fails CI.
./target/release/xqp torture --seed "$FUZZ_SEED" --iters 300

echo "== governor smoke: limits trip as typed errors on the CLI =="
GOV_DOC=$(mktemp /tmp/xqp-ci-gov-XXXXXX.xml)
printf '<r>%s</r>' "$(printf '<x><y>1</y></x>%.0s' {1..50})" > "$GOV_DOC"
if ./target/release/xqp query "$GOV_DOC" \
    "for \$a in doc()/r/x for \$b in doc()/r/x/y return \$b" \
    --max-rows 3 2>/tmp/xqp-ci-gov-err; then
  echo "governor smoke FAILED: row cap did not trip" >&2; exit 1
fi
grep -q "resource governor" /tmp/xqp-ci-gov-err \
  || { echo "governor smoke FAILED: error not governor-classed" >&2; exit 1; }
rm -f "$GOV_DOC" /tmp/xqp-ci-gov-err

echo "== benches compile (std harness, no criterion) =="
cargo build --offline --benches -p xqp-bench

echo "== E16 smoke: streaming vs materializing pipeline (release) =="
cargo bench --offline -p xqp-bench --bench exp_flwor_pipeline

echo "== T17 smoke: governor overhead on E16 workloads (release) =="
# Overhead numbers land in the log; the ≤5% acceptance bar is tracked in
# EXPERIMENTS.md (in-container runs are too noisy for a hard CI gate).
cargo bench --offline -p xqp-bench --bench exp_governor

echo "CI gate passed."
