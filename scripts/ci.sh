#!/usr/bin/env bash
# CI gate for the repo. Everything runs fully offline — the workspace has no
# registry dependencies by default (see the `proptest` feature note in the
# root Cargo.toml), so `--offline` must always succeed.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== format gate =="
cargo fmt --check

echo "== lint gate: clippy, warnings are errors =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tier-1 gate: release build + test =="
cargo build --release
cargo test -q

echo "== full workspace, offline =="
cargo test --workspace --offline

echo "== crash-recovery suite =="
cargo test --offline --test recovery --test persistence

echo "== release CLI builds =="
cargo build --release --offline -p xqp --bin xqp

echo "== differential regression corpus =="
cargo test --offline --test differential -q

echo "== differential fuzz smoke: 200 fresh cases across the engine matrix =="
# Seed from the commit so every CI run explores a different slice of the
# case space while staying reproducible from the log line it prints.
FUZZ_SEED=$((16#$(git rev-parse --short=8 HEAD 2>/dev/null || echo 1)))
./target/release/xqp fuzz --seed "$FUZZ_SEED" --iters 200

echo "== benches compile (std harness, no criterion) =="
cargo build --offline --benches -p xqp-bench

echo "== E16 smoke: streaming vs materializing pipeline (release) =="
cargo bench --offline -p xqp-bench --bench exp_flwor_pipeline

echo "CI gate passed."
