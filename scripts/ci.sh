#!/usr/bin/env bash
# CI gate for the repo. Everything runs fully offline — the workspace has no
# registry dependencies by default (see the `proptest` feature note in the
# root Cargo.toml), so `--offline` must always succeed.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== format gate =="
cargo fmt --check

echo "== lint gate: clippy, warnings are errors =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tier-1 gate: release build + test =="
cargo build --release
cargo test -q

echo "== full workspace, offline =="
cargo test --workspace --offline

echo "== crash-recovery suite =="
cargo test --offline --test recovery --test persistence

echo "== release CLI builds =="
cargo build --release --offline -p xqp-serve --bin xqp

echo "== differential regression corpus =="
cargo test --offline --test differential -q

echo "== differential fuzz smoke: 200 fresh cases across the engine matrix =="
# Seed from the commit so every CI run explores a different slice of the
# case space while staying reproducible from the log line it prints.
FUZZ_SEED=$((16#$(git rev-parse --short=8 HEAD 2>/dev/null || echo 1)))
./target/release/xqp fuzz --seed "$FUZZ_SEED" --iters 200

echo "== optimizer-rule fuzz smoke: 200 join-shaped cases across every rule ablation =="
# Join-shaped generator + the rule leg: every case is additionally checked
# with all rules / no rules / each of R10-R12 disabled against the
# all-rules reference, under all 12 Strategy x EvalMode configurations.
./target/release/xqp fuzz --joins --seed "$FUZZ_SEED" --iters 200

echo "== function-surface fuzz smoke: 200 cases over aggregates, focus and quantifiers =="
# Function-shaped generator + the same rule-ablation leg: aggregates over
# nested FLWORs, position()/last() windows, some/every quantifiers and
# typed-error hazards (multi-item string(), mixed-type min/max).
./target/release/xqp fuzz --functions --seed "$FUZZ_SEED" --iters 200

echo "== loopback fuzz smoke: 100 cases through a real client session =="
# The serving leg: every case runs through a TCP client session against a
# live server AND in-process; values must be byte-identical, errors
# class-compatible, and governor trips must agree as a class.
./target/release/xqp fuzz --server --seed "$FUZZ_SEED" --iters 100

echo "== fault-injection torture smoke: 300 seeded I/O fault points =="
# Same commit-derived seed: reproducible from the log, different slice of
# the fault space per commit. Any recovery-invariant violation fails CI.
./target/release/xqp torture --seed "$FUZZ_SEED" --iters 300

echo "== tiny-pool fuzz smoke: 100 cases with every paged leg behind a 4-page pool =="
# Each case's full engine matrix re-runs over the document spilled to paged
# storage behind a starved pool, plus pooled durable round trips — paged
# rank/select and content access must agree byte-for-byte while evicting.
./target/release/xqp fuzz --tiny-pool --seed "$FUZZ_SEED" --iters 100

echo "== paged torture smoke: 200 seeded I/O fault points over the paged store format =="
# The same recovery invariants with every database behind an 8-page pool:
# faults now land on page writes, paged opens, group-committed WAL batches
# and the snapshot->paged conversion paths.
./target/release/xqp torture --buffer-pages 8 --seed "$FUZZ_SEED" --iters 200

echo "== network torture smoke: 200 seeded wire fault points over a live server =="
# The wire twin of the disk sweep: one fault (error, short read/write,
# truncation, delay, mid-frame disconnect) per replay at every socket I/O
# point, asserting no panic, no slot leak, no wrong answer, convergence on
# retry. Commit-seeded like the rest; reproducible from the log line.
./target/release/xqp torture --net --seed "$FUZZ_SEED" --iters 200

echo "== buffer-pool smoke: XMark-shaped doc through an 8-page pool on the CLI =="
POOL_DOC=$(mktemp /tmp/xqp-ci-pool-XXXXXX.xml)
printf '<site><regions><africa>%s</africa></regions></site>' \
  "$(printf '<item id="i%d"><name>widget</name><payload>some moderately long padding text to spread the arena over many pages</payload></item>' {1..400})" > "$POOL_DOC"
./target/release/xqp query "$POOL_DOC" 'count(//item)' --buffer-pages 8 \
  2>/tmp/xqp-ci-pool-err | grep -qx '400' \
  || { echo "buffer-pool smoke FAILED: wrong count through the pool" >&2; exit 1; }
grep -q "buffer pool: " /tmp/xqp-ci-pool-err \
  || { echo "buffer-pool smoke FAILED: no pool counters on stderr" >&2; exit 1; }
XQP_BUFFER_PAGES=8 ./target/release/xqp query "$POOL_DOC" 'count(//item)' \
  2>/dev/null | grep -qx '400' \
  || { echo "buffer-pool smoke FAILED: XQP_BUFFER_PAGES env path broken" >&2; exit 1; }
rm -f "$POOL_DOC" /tmp/xqp-ci-pool-err

echo "== governor smoke: limits trip as typed errors on the CLI =="
GOV_DOC=$(mktemp /tmp/xqp-ci-gov-XXXXXX.xml)
printf '<r>%s</r>' "$(printf '<x><y>1</y></x>%.0s' {1..50})" > "$GOV_DOC"
if ./target/release/xqp query "$GOV_DOC" \
    "for \$a in doc()/r/x for \$b in doc()/r/x/y return \$b" \
    --max-rows 3 2>/tmp/xqp-ci-gov-err; then
  echo "governor smoke FAILED: row cap did not trip" >&2; exit 1
fi
grep -q "resource governor" /tmp/xqp-ci-gov-err \
  || { echo "governor smoke FAILED: error not governor-classed" >&2; exit 1; }
rm -f "$GOV_DOC" /tmp/xqp-ci-gov-err

echo "== server smoke: concurrent clients, mid-flight disconnect, writer, clean shutdown =="
SRV_DOC=$(mktemp /tmp/xqp-ci-srv-XXXXXX.xml)
printf '<bib>%s</bib>' "$(printf '<book year="1990"><title>t</title></book>%.0s' {1..200})" > "$SRV_DOC"
SRV_OUT=$(mktemp /tmp/xqp-ci-srv-out-XXXXXX)
SRV_IN=$(mktemp -u /tmp/xqp-ci-srv-in-XXXXXX); mkfifo "$SRV_IN"
./target/release/xqp serve "$SRV_DOC" --addr 127.0.0.1:0 > "$SRV_OUT" 2>/dev/null < "$SRV_IN" &
SRV_PID=$!
exec 9>"$SRV_IN"   # hold the server's stdin open; closing fd 9 stops it
ADDR=""
for _ in $(seq 1 100); do
  ADDR=$(head -n1 "$SRV_OUT"); [ -n "$ADDR" ] && break; sleep 0.1
done
[ -n "$ADDR" ] || { echo "server smoke FAILED: no bound address on stdout" >&2; exit 1; }
CLI="./target/release/xqp client $ADDR"
# Concurrent reader sessions racing a writer session.
READERS=()
for _ in 1 2 3 4; do
  (for _ in $(seq 1 5); do $CLI query doc 'count(//book)' >/dev/null 2>&1 || exit 1; done) &
  READERS+=($!)
done
$CLI insert doc /bib '<book year="2024"><title>new</title></book>' 2>/dev/null
$CLI delete doc '//book[@year="2024"]' 2>/dev/null
# A client killed mid-query must not wedge the server: the disconnect
# watcher cancels the abandoned query server-side.
timeout -s KILL 1 $CLI query doc \
  'for $a in //book for $b in //book for $c in //book return <p/>' >/dev/null 2>&1 || true
for pid in "${READERS[@]}"; do
  wait "$pid" || { echo "server smoke FAILED: a reader session errored" >&2; exit 1; }
done
$CLI query doc 'count(//book)' 2>/dev/null | grep -qx '200' \
  || { echo "server smoke FAILED: final count wrong after insert+delete" >&2; exit 1; }
exec 9>&-   # EOF on the server's stdin: deterministic clean shutdown
wait "$SRV_PID" || { echo "server smoke FAILED: unclean server exit" >&2; exit 1; }
rm -f "$SRV_DOC" "$SRV_OUT" "$SRV_IN"

echo "== drain smoke: SIGTERM under client load drains and exits clean =="
DRN_DOC=$(mktemp /tmp/xqp-ci-drn-XXXXXX.xml)
printf '<bib>%s</bib>' "$(printf '<book year="1990"><title>t</title></book>%.0s' {1..200})" > "$DRN_DOC"
DRN_OUT=$(mktemp /tmp/xqp-ci-drn-out-XXXXXX)
DRN_ERR=$(mktemp /tmp/xqp-ci-drn-err-XXXXXX)
DRN_IN=$(mktemp -u /tmp/xqp-ci-drn-in-XXXXXX); mkfifo "$DRN_IN"
./target/release/xqp serve "$DRN_DOC" --addr 127.0.0.1:0 --drain-ms 2000 \
  > "$DRN_OUT" 2>"$DRN_ERR" < "$DRN_IN" &
DRN_PID=$!
exec 8>"$DRN_IN"
DADDR=""
for _ in $(seq 1 100); do
  DADDR=$(head -n1 "$DRN_OUT"); [ -n "$DADDR" ] && break; sleep 0.1
done
[ -n "$DADDR" ] || { echo "drain smoke FAILED: no bound address" >&2; exit 1; }
# Clients hammering the server (with retries) when the SIGTERM lands.
# Sessions caught by the drain get a typed Draining refusal — an expected
# outcome here, not a failure.
for _ in 1 2 3; do
  (for _ in $(seq 1 40); do
     ./target/release/xqp client "$DADDR" query doc 'count(//book)' --retry 3 \
       >/dev/null 2>&1 || exit 0
   done) &
done
sleep 0.3
kill -TERM "$DRN_PID"
wait "$DRN_PID" || { echo "drain smoke FAILED: unclean exit after SIGTERM" >&2; exit 1; }
wait
grep -q -- "-- draining" "$DRN_ERR" \
  || { echo "drain smoke FAILED: no drain announcement on stderr" >&2; exit 1; }
grep -q -- "-- shutting down" "$DRN_ERR" \
  || { echo "drain smoke FAILED: no final stats line (orphan sessions?)" >&2; exit 1; }
exec 8>&-
rm -f "$DRN_DOC" "$DRN_OUT" "$DRN_ERR" "$DRN_IN"

echo "== benches compile (std harness, no criterion) =="
cargo build --offline --benches -p xqp-bench

echo "== E16 smoke: streaming vs materializing pipeline (release) =="
cargo bench --offline -p xqp-bench --bench exp_flwor_pipeline

echo "== T17 smoke: governor overhead on E16 workloads (release) =="
# Overhead numbers land in the log; the ≤5% acceptance bar is tracked in
# EXPERIMENTS.md (in-container runs are too noisy for a hard CI gate).
cargo bench --offline -p xqp-bench --bench exp_governor

echo "== T19 smoke: concurrent serving QPS under a streaming writer (release) =="
# Gates on served-equals-in-process soundness before timing; QPS medians
# land in BENCH_serve.json (single-core containers: flat scaling expected,
# see EXPERIMENTS.md T19).
cargo bench --offline -p xqp-bench --bench exp_serve

echo "== T20 smoke: paged-storage latency at 10%/50%/100% pool residency (release) =="
# Gates on paged-equals-resident answers before timing; medians land in
# BENCH_paged.json and the table is tracked in EXPERIMENTS.md T20.
cargo bench --offline -p xqp-bench --bench exp_paged

echo "== T21 smoke: streaming aggregate folds vs materializing (release) =="
# Gates on mode-equivalent answers before timing; peak-bindings and medians
# land in BENCH_functions.json and the table is tracked in EXPERIMENTS.md T21.
cargo bench --offline -p xqp-bench --bench exp_functions

echo "== T22 smoke: serving resilience under injected wire faults (release) =="
# Gates on served-equals-in-process soundness, zero lost requests for the
# retrying client at 0%/1%/5% fault rates, and ≤5% retry-layer overhead on
# the clean path; medians land in BENCH_resilience.json (EXPERIMENTS.md T22).
cargo bench --offline -p xqp-bench --bench exp_resilience

echo "CI gate passed."
