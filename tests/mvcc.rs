//! Snapshot isolation under concurrency: MVCC reads while a writer
//! streams structural updates.
//!
//! The contract these tests pin (tentpole of the serving subsystem):
//!
//! * every read runs against exactly one committed generation — the
//!   result is byte-identical to what a *serial* database that stopped at
//!   that generation would produce; a half-applied update is unobservable;
//! * readers never block writers and writers never block readers — an old
//!   snapshot stays fully queryable while newer generations are installed;
//! * retired versions are reclaimed once their last reader drops, and are
//!   kept alive exactly as long as one holds them.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use xqp::{Database, SessionOptions};

/// The update stream both the shadow (serial) and the stressed
/// (concurrent) database apply: alternating inserts and deletes, all
/// distinguishable in the serialized output.
fn update_step(db: &Database, step: usize) -> usize {
    if step % 3 == 2 {
        db.delete_matching("doc", &format!("//mark[@step=\"{}\"]", step - 1)).expect("delete step")
    } else {
        db.insert_into("doc", "/r", &format!("<mark step=\"{step}\"/>")).expect("insert step")
    }
}

const SEED_XML: &str = r#"<r><a key="1"><b>alpha</b></a><a key="2"><b>beta</b></a></r>"#;
const PROBE: &str = "/r";

/// Serial replay: what the document must look like at every generation.
fn expected_by_generation(steps: usize) -> HashMap<u64, String> {
    let shadow = Database::new();
    shadow.load_str("doc", SEED_XML).unwrap();
    let mut expected = HashMap::new();
    let (g0, out0) = shadow.query_session("doc", PROBE, &SessionOptions::default()).unwrap();
    expected.insert(g0, out0);
    for step in 0..steps {
        update_step(&shadow, step);
        let (g, out) = shadow.query_session("doc", PROBE, &SessionOptions::default()).unwrap();
        expected.insert(g, out);
    }
    expected
}

#[test]
fn readers_always_see_a_committed_generation() {
    const STEPS: usize = 60;
    const READERS: usize = 8;

    let expected = Arc::new(expected_by_generation(STEPS));
    let db = Arc::new(Database::new());
    db.load_str("doc", SEED_XML).unwrap();

    let done = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let db = Arc::clone(&db);
            let done = Arc::clone(&done);
            let expected = Arc::clone(&expected);
            std::thread::spawn(move || {
                let mut reads = 0u64;
                let mut last_gen = 0u64;
                while !done.load(Ordering::Relaxed) || reads == 0 {
                    let (generation, out) = db
                        .query_session("doc", PROBE, &SessionOptions::default())
                        .expect("concurrent read failed");
                    // Byte-identical to the serial database at that
                    // generation: no torn or blended state is observable.
                    let want = expected
                        .get(&generation)
                        .unwrap_or_else(|| panic!("read at unknown generation {generation}"));
                    assert_eq!(
                        &out, want,
                        "generation {generation}: concurrent read diverged from serial replay"
                    );
                    // Each session's view moves monotonically forward.
                    assert!(
                        generation >= last_gen,
                        "generation went backwards: {last_gen} -> {generation}"
                    );
                    last_gen = generation;
                    reads += 1;
                }
                reads
            })
        })
        .collect();

    for step in 0..STEPS {
        update_step(&db, step);
    }
    done.store(true, Ordering::Relaxed);
    let total: u64 = readers.into_iter().map(|h| h.join().expect("reader panicked")).sum();
    assert!(total >= READERS as u64, "every reader must complete at least one read");
    assert_eq!(db.generation("doc").unwrap(), STEPS as u64);
}

#[test]
fn old_snapshot_survives_updates_unchanged() {
    let db = Database::new();
    db.load_str("doc", SEED_XML).unwrap();

    // Capture the generation-0 snapshot the way the engine does.
    let before = db.document("doc").unwrap();
    let root = before.root().expect("seed document has a root");
    let before_bytes = xqp::exec::engine::serialize_stored(&before, root);
    assert_eq!(before.generation(), 0);

    for step in 0..5 {
        update_step(&db, step);
    }
    assert_eq!(db.generation("doc").unwrap(), 5);

    // The held snapshot is still fully queryable and byte-identical:
    // installs never mutate a published version.
    let after_bytes = xqp::exec::engine::serialize_stored(&before, root);
    assert_eq!(before_bytes, after_bytes);
    assert_eq!(before.generation(), 0);

    // A fresh read sees the newest generation, not the held one.
    let (generation, _) = db.query_session("doc", PROBE, &SessionOptions::default()).unwrap();
    assert_eq!(generation, 5);
}

#[test]
fn retired_versions_are_reclaimed_when_last_reader_drops() {
    let db = Database::new();
    db.load_str("doc", SEED_XML).unwrap();

    // No reader holds anything: each install retires the predecessor and
    // its weak ref dies immediately.
    for step in 0..4 {
        update_step(&db, step);
    }
    assert_eq!(
        db.live_versions("doc").unwrap(),
        1,
        "with no readers, only the current version may stay alive"
    );

    // A held snapshot pins exactly its own version across installs…
    let pinned = db.document("doc").unwrap();
    let pinned_gen = pinned.generation();
    for step in 4..8 {
        update_step(&db, step);
    }
    assert_eq!(db.live_versions("doc").unwrap(), 2, "held snapshot must stay alive");
    assert_eq!(pinned.generation(), pinned_gen);

    // …and is reclaimed as soon as the reader drops it.
    drop(pinned);
    assert_eq!(
        db.live_versions("doc").unwrap(),
        1,
        "dropping the last reader must release the retired version"
    );
}

#[test]
fn index_toggles_are_versioned_too() {
    let db = Arc::new(Database::new());
    db.load_str("doc", SEED_XML).unwrap();
    let g0 = db.generation("doc").unwrap();
    db.create_index("doc").unwrap();
    assert!(db.generation("doc").unwrap() > g0, "index build must install a new version");
    // Queries agree before/after: the index is an access-path change only.
    let with_index = db.query("doc", "//a[@key=\"2\"]/b").unwrap();
    db.drop_index("doc").unwrap();
    let without_index = db.query("doc", "//a[@key=\"2\"]/b").unwrap();
    assert_eq!(with_index, without_index);
    assert_eq!(with_index, "<b>beta</b>");
}

/// Regression guard for the writer path: a mid-stream failure must leave
/// the database on a committed generation whose WAL replay matches the
/// in-memory state (partial application is committed, not rolled back —
/// but *atomically*).
#[test]
fn failed_update_still_leaves_a_committed_generation() {
    let db = Database::new();
    db.load_str("doc", "<r><x/><x/></r>").unwrap();
    let before_gen = db.generation("doc").unwrap();
    // `//*` matches the root too; descending rank order deletes the two
    // x's first, then fails on the root. The two successful splices
    // commit as one new generation.
    let err = db.delete_matching("doc", "//*").unwrap_err();
    assert!(matches!(err, xqp::Error::Update(_)), "root deletion must be rejected: {err}");
    let after_gen = db.generation("doc").unwrap();
    assert!(after_gen > before_gen, "partial progress commits as a generation");
    assert_eq!(db.serialize("doc").unwrap(), "<r/>");
}
