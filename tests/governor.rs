//! Resource-governor acceptance tests: every engine configuration must
//! honor deadlines, memory budgets, row caps, and cooperative cancellation
//! by failing with a typed `resource governor` error — never by panicking,
//! hanging, or silently truncating — and the engine must stay fully usable
//! after every kind of abort.

use std::sync::Arc;
use std::time::{Duration, Instant};
use xqp::{Database, QueryLimits};
use xqp_exec::differential::{full_matrix, run_config_limited, Outcome};
use xqp_exec::engine::Executor;
use xqp_exec::{CancelToken, ResourceGovernor};
use xqp_storage::SuccinctDoc;

/// A document wide enough that the nested-FLWOR cross product below is
/// pathological: `width²` result rows through every pipeline.
fn wide_doc(width: usize) -> String {
    let items: String = (0..width).map(|i| format!("<x><y>{i}</y></x>")).collect();
    format!("<r>{items}</r>")
}

const CROSS: &str = "for $a in doc()/r/x for $b in doc()/r/x/y return $b";

fn assert_limit_error(outcome: &Outcome, what: &str, label: &str) {
    match outcome {
        Outcome::Error(e) => assert!(
            e.contains("resource governor"),
            "{label}: expected a governor error for {what}, got: {e}"
        ),
        other => panic!("{label}: expected a governor error for {what}, got {other}"),
    }
}

/// An already-expired deadline trips deterministically in all 12
/// Strategy × EvalMode configurations.
#[test]
fn expired_deadline_trips_in_every_config() {
    let doc = SuccinctDoc::parse(&wide_doc(8)).unwrap();
    let limits = QueryLimits::none().with_timeout(Duration::ZERO);
    for cfg in full_matrix() {
        let out = run_config_limited(&doc, CROSS, cfg, limits);
        assert_limit_error(&out, "an expired deadline", &cfg.label());
        if let Outcome::Error(e) = &out {
            assert!(e.contains("deadline"), "{}: wrong trip class: {e}", cfg.label());
        }
    }
}

/// The headline acceptance case: a 50 ms deadline on a pathological
/// cross product returns `DeadlineExceeded` in bounded time under every
/// configuration — no config runs the query to completion or hangs.
#[test]
fn fifty_ms_deadline_bounds_pathological_cross_product() {
    // 300² = 90 000 rows: far past 50 ms in every engine (debug builds
    // included), so the deadline always fires.
    let doc = SuccinctDoc::parse(&wide_doc(300)).unwrap();
    let limits = QueryLimits::none().with_timeout(Duration::from_millis(50));
    for cfg in full_matrix() {
        let t = Instant::now();
        let out = run_config_limited(&doc, CROSS, cfg, limits);
        let dt = t.elapsed();
        assert_limit_error(&out, "the 50 ms deadline", &cfg.label());
        // "Bounded" leaves slack for debug-build check granularity, but a
        // config that ran the whole cross product would blow well past it.
        assert!(dt < Duration::from_secs(10), "{}: took {dt:.2?} to trip", cfg.label());
    }
}

/// Memory budgets and row caps trip as governor errors in every config.
#[test]
fn memory_and_row_budgets_trip_in_every_config() {
    let doc = SuccinctDoc::parse(&wide_doc(40)).unwrap();
    for (limits, what) in [
        (QueryLimits::none().with_max_rows(3), "a 3-row cap"),
        (QueryLimits::none().with_max_memory(8), "an 8-cell memory budget"),
    ] {
        for cfg in full_matrix() {
            let out = run_config_limited(&doc, CROSS, cfg, limits);
            assert_limit_error(&out, what, &cfg.label());
        }
    }
}

/// The hash join charges its build-side sequences against the memory
/// budget: an equi-join whose sides outgrow `max_memory` trips with a
/// governor error in every configuration, and never silently truncates.
#[test]
fn hash_join_build_respects_memory_budget() {
    let doc = SuccinctDoc::parse(&wide_doc(40)).unwrap();
    let join = "for $a in doc()/r/x/y for $b in doc()/r/x/y where $a = $b return $b";

    // The join plan really is the hash join (not a nested-loop fallback):
    // the isolation rule fired and the physical tree carries the operator.
    let db = Database::new();
    db.load_str("doc", &wide_doc(40)).unwrap();
    let (plan, _) = db.explain("doc", join).unwrap();
    assert!(plan.contains("hash-join"), "join not lowered to hash-join:\n{plan}");
    assert!(plan.contains("join-graph-isolation: fired"), "{plan}");

    // Unlimited, the self-join matches each of the 40 distinct keys once.
    let full = db.query("doc", join).unwrap();
    assert_eq!(full.matches("<y>").count(), 40, "{full}");

    // An 8-cell budget is smaller than either 40-item side: the build
    // trips before any row is emitted, in all 12 configurations.
    let limits = QueryLimits::none().with_max_memory(8);
    for cfg in full_matrix() {
        let out = run_config_limited(&doc, join, cfg, limits);
        assert_limit_error(&out, "the hash-join build budget", &cfg.label());
        if let Outcome::Error(e) = &out {
            assert!(e.contains("memory"), "{}: wrong trip class: {e}", cfg.label());
        }
    }
}

/// A cancelled token aborts the query with the `Cancelled` class.
#[test]
fn cancellation_aborts_with_typed_error() {
    let doc = SuccinctDoc::parse(&wide_doc(20)).unwrap();
    let token = CancelToken::new();
    let governor = Arc::new(ResourceGovernor::with_cancel(QueryLimits::none(), token.clone()));
    token.cancel();
    let err = Executor::new(&doc).with_governor(governor).query(CROSS).unwrap_err();
    assert!(err.is_resource_limit(), "not a limit class: {err}");
    assert!(err.to_string().contains("cancelled"), "wrong class: {err}");
}

/// Governor errors carry the query text and elapsed time for diagnostics.
#[test]
fn governor_errors_are_decorated_with_query_context() {
    let doc = SuccinctDoc::parse(&wide_doc(10)).unwrap();
    let governor =
        Arc::new(ResourceGovernor::new(QueryLimits::none().with_timeout(Duration::ZERO)));
    let err = Executor::new(&doc).with_governor(governor).query(CROSS).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("resource governor: deadline exceeded"), "{msg}");
    assert!(msg.contains("for $a in doc()/r/x"), "query text missing: {msg}");
    assert!(msg.contains(" ms)"), "elapsed time missing: {msg}");
}

/// Post-abort reuse (satellite): after each limit variant trips, the same
/// `Database` answers the same query correctly once limits are lifted, and
/// its plan cache matches a fresh engine's — an aborted execution must not
/// poison cached plans or document state.
#[test]
fn database_is_reusable_after_every_limit_variant() {
    let xml = wide_doc(12);
    let q = CROSS;

    let fresh = Database::new();
    fresh.load_str("doc", &xml).unwrap();
    let want = fresh.query("doc", q).unwrap();
    let fresh_stats = fresh.plan_cache_stats("doc").unwrap();

    let variants: Vec<(QueryLimits, &str)> = vec![
        (QueryLimits::none().with_timeout(Duration::ZERO), "deadline"),
        (QueryLimits::none().with_max_memory(4), "memory"),
        (QueryLimits::none().with_max_rows(1), "rows"),
    ];
    for (limits, what) in variants {
        let mut db = Database::new();
        db.load_str("doc", &xml).unwrap();
        db.set_limits(limits);
        let err = db.query("doc", q).unwrap_err().to_string();
        assert!(err.contains("resource governor"), "{what}: {err}");

        db.set_limits(QueryLimits::none());
        assert_eq!(db.query("doc", q).unwrap(), want, "{what}: wrong value after abort");

        // The aborted run compiled the plan once; the successful re-run
        // hits the cache. Same number of misses as a fresh engine that ran
        // twice — aborts must not evict or poison entries.
        let (hits, misses, evictions) = db.plan_cache_stats("doc").unwrap();
        assert_eq!(misses, fresh_stats.1, "{what}: plan recompiled after abort");
        assert!(hits >= 1, "{what}: successful re-run missed the cache");
        assert_eq!(evictions, 0, "{what}: abort evicted cache entries");
    }

    // Cancellation, via a per-query override on a shared database.
    let db = Database::new();
    db.load_str("doc", &xml).unwrap();
    let err = db
        .query_with_limits("doc", q, QueryLimits::none().with_timeout(Duration::ZERO))
        .unwrap_err()
        .to_string();
    assert!(err.contains("resource governor"), "{err}");
    assert_eq!(db.query("doc", q).unwrap(), want, "override: wrong value after abort");
}

/// Per-query overrides replace the database-wide default in both
/// directions: tightening an unlimited database and lifting a limited one.
#[test]
fn per_query_overrides_replace_defaults() {
    let mut db = Database::new();
    db.load_str("doc", &wide_doc(12)).unwrap();

    // Unlimited database, tight override: trips.
    let err = db
        .query_with_limits("doc", CROSS, QueryLimits::none().with_max_rows(1))
        .unwrap_err()
        .to_string();
    assert!(err.contains("result limit"), "{err}");

    // Limited database, unlimited override: runs to completion.
    db.set_limits(QueryLimits::none().with_max_rows(1));
    assert!(db.query("doc", CROSS).is_err());
    let full = db.query_with_limits("doc", CROSS, QueryLimits::none()).unwrap();
    assert!(full.contains("<y>0</y>"), "{full}");
}

/// Statistics and explain survive an abort: the governor's trip shows up
/// in the counters, and the document's cost statistics match a fresh
/// engine's (aborts must not leave half-built statistics behind).
#[test]
fn statistics_match_fresh_engine_after_abort() {
    let xml = wide_doc(12);
    let mut db = Database::new();
    db.load_str("doc", &xml).unwrap();
    db.set_limits(QueryLimits::none().with_max_rows(1));
    let _ = db.query("doc", CROSS).unwrap_err();
    db.set_limits(QueryLimits::none());

    let fresh = Database::new();
    fresh.load_str("doc", &xml).unwrap();

    let a = db.statistics("doc").unwrap();
    let b = fresh.statistics("doc").unwrap();
    assert_eq!(a.node_count, b.node_count, "node count diverged after abort");
    assert_eq!(a.element_count, b.element_count, "element count diverged after abort");
    assert_eq!(a.max_depth, b.max_depth, "max depth diverged after abort");
    assert_eq!(a.tag_counts, b.tag_counts, "tag counts diverged after abort");

    let (plan, _) = db.explain("doc", CROSS).unwrap();
    assert!(plan.contains("-- governor:"), "explain lost the governor line:\n{plan}");
}
