//! Property tests over query evaluation: randomly generated documents and
//! randomly generated downward path expressions give identical results under
//! every physical strategy — and streaming agrees with stored evaluation.

use proptest::prelude::*;
use xqp_exec::{streaming, Executor, Strategy as ExecStrategy};
use xqp_storage::{SNodeId, SuccinctDoc};
use xqp_xml::{Document, NodeId};
use xqp_xpath::{parse_path, PatternGraph};

// ---- random documents (small tag alphabet so paths actually match) -----------

fn arb_doc() -> impl Strategy<Value = Document> {
    #[derive(Debug, Clone)]
    enum T {
        El(u8, Vec<T>),
        Txt(u8),
    }
    let leaf = prop_oneof![any::<u8>().prop_map(T::Txt), any::<u8>().prop_map(|t| T::El(t, vec![]))];
    let tree = leaf.prop_recursive(5, 80, 6, |inner| {
        (any::<u8>(), prop::collection::vec(inner, 0..6)).prop_map(|(t, c)| T::El(t, c))
    });
    tree.prop_map(|t| {
        fn rec(doc: &mut Document, parent: NodeId, t: &T) {
            match t {
                T::El(tag, children) => {
                    let el = doc.append_element(parent, format!("t{}", tag % 4));
                    if tag % 3 == 0 {
                        doc.set_attribute(el, "k", (tag % 7).to_string());
                    }
                    for c in children {
                        rec(doc, el, c);
                    }
                }
                T::Txt(v) => {
                    let needs = match doc.node(parent).last_child {
                        Some(last) => !doc.is_text(last),
                        None => true,
                    };
                    if needs {
                        doc.append_text(parent, (v % 50).to_string());
                    }
                }
            }
        }
        let mut doc = Document::new();
        let root = doc.root();
        match &t {
            T::El(..) => rec(&mut doc, root, &t),
            T::Txt(_) => {
                doc.append_element(root, "t0");
            }
        }
        doc
    })
}

// ---- random downward paths ------------------------------------------------------

fn arb_path() -> impl Strategy<Value = String> {
    let tag = prop_oneof![
        Just("t0".to_string()),
        Just("t1".to_string()),
        Just("t2".to_string()),
        Just("t3".to_string()),
        Just("*".to_string()),
    ];
    let pred = prop_oneof![
        Just(String::new()),
        tag.clone().prop_map(|t| format!("[{t}]")),
        Just("[@k]".to_string()),
        (0u8..7).prop_map(|v| format!("[@k = {v}]")),
        (0u8..50).prop_map(|v| format!("[. = {v}]")),
        (0u8..50).prop_map(|v| format!("[. > {v}]")),
    ];
    let step = (prop_oneof![Just("/"), Just("//")], tag, pred)
        .prop_map(|(sep, t, p)| format!("{sep}{t}{p}"));
    prop::collection::vec(step, 1..4).prop_map(|steps| steps.concat())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn all_strategies_agree_on_random_inputs(doc in arb_doc(), path in arb_path()) {
        let sdoc = SuccinctDoc::from_document(&doc);
        let reference: Vec<SNodeId> = Executor::new(&sdoc)
            .with_strategy(ExecStrategy::Naive)
            .eval_path_str(&path)
            .unwrap();
        for strat in [ExecStrategy::NoK, ExecStrategy::TwigStack, ExecStrategy::BinaryJoin, ExecStrategy::Auto] {
            let got = Executor::new(&sdoc).with_strategy(strat).eval_path_str(&path).unwrap();
            prop_assert_eq!(
                &got, &reference,
                "doc `{}` path `{}` strategy {:?}",
                xqp_xml::serialize(&doc), path, strat
            );
        }
    }

    #[test]
    fn streaming_agrees_with_stored(doc in arb_doc(), path in arb_path()) {
        let xml = xqp_xml::serialize(&doc);
        let sdoc = SuccinctDoc::from_document(&doc);
        let pattern = PatternGraph::from_path(&parse_path(&path).unwrap()).unwrap();
        let events: Vec<xqp_xml::Event> =
            xqp_xml::Parser::new(&xml).collect::<Result<_, _>>().unwrap();
        let streamed = streaming::match_stream(events.iter(), &pattern);
        let ctx = xqp_exec::ExecContext::new(&sdoc);
        let stored = xqp_exec::nok::eval_single_output(&ctx, &pattern, None);
        prop_assert_eq!(streamed, stored, "doc `{}` path `{}`", xml, path);
    }

    #[test]
    fn documents_roundtrip_through_queries(doc in arb_doc()) {
        // `//*` must return every element, `//text()` every text node.
        let sdoc = SuccinctDoc::from_document(&doc);
        let ex = Executor::new(&sdoc);
        let elements = ex.eval_path_str("//*").unwrap();
        prop_assert_eq!(elements.len(), doc.element_count());
        let texts = ex.eval_path_str("//text()").unwrap();
        let dom_texts = doc
            .descendants_or_self(doc.root())
            .filter(|&n| doc.is_text(n))
            .count();
        prop_assert_eq!(texts.len(), dom_texts);
    }
}
