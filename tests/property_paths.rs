//! Randomized tests over query evaluation: randomly generated documents and
//! randomly generated downward path expressions give identical results under
//! every physical strategy (serial and parallel) — and streaming agrees with
//! stored evaluation.
//!
//! The generators are driven by the repo's own deterministic [`xqp_gen::Prng`]
//! (SplitMix64) so the suite runs fully offline with no `proptest` dependency;
//! fixed seeds make every run reproduce the same case set. The original
//! proptest version of this suite is preserved behind the opt-in `proptest`
//! cargo feature (see the root `Cargo.toml` for how to re-enable it).

use xqp_exec::{streaming, Executor, Strategy as ExecStrategy};
use xqp_gen::Prng;
use xqp_storage::{SNodeId, SuccinctDoc};
use xqp_xml::{Document, NodeId};
use xqp_xpath::{parse_path, PatternGraph};

const CASES: u64 = 96;

// ---- random documents (small tag alphabet so paths actually match) -----------

/// Append a random subtree under `parent`: tags `t0`–`t3`, an occasional
/// `k` attribute, text values `0..50` with no two adjacent text siblings.
fn gen_subtree(rng: &mut Prng, doc: &mut Document, parent: NodeId, depth: u32) {
    let tag = rng.gen_range(0u16..256) as u8; // full byte, mirrors any::<u8>()
    let el = doc.append_element(parent, format!("t{}", tag % 4));
    if tag.is_multiple_of(3) {
        doc.set_attribute(el, "k", (tag % 7).to_string());
    }
    if depth == 0 {
        return;
    }
    let children = rng.gen_range(0usize..6);
    for _ in 0..children {
        if rng.gen_bool(0.25) {
            // Text child, respecting the merge-adjacent-text invariant.
            let needs = match doc.node(el).last_child {
                Some(last) => !doc.is_text(last),
                None => true,
            };
            if needs {
                let v: u8 = rng.gen_range(0u8..50);
                doc.append_text(el, v.to_string());
            }
        } else {
            gen_subtree(rng, doc, el, depth - 1);
        }
    }
}

fn gen_doc(rng: &mut Prng) -> Document {
    let mut doc = Document::new();
    let root = doc.root();
    gen_subtree(rng, &mut doc, root, 5);
    doc
}

// ---- random downward paths ------------------------------------------------------

fn gen_tag(rng: &mut Prng) -> String {
    (*rng.choose(&["t0", "t1", "t2", "t3", "*"])).to_string()
}

fn gen_pred(rng: &mut Prng) -> String {
    match rng.gen_range(0u8..6) {
        0 => String::new(),
        1 => format!("[{}]", gen_tag(rng)),
        2 => "[@k]".to_string(),
        3 => format!("[@k = {}]", rng.gen_range(0u8..7)),
        4 => format!("[. = {}]", rng.gen_range(0u8..50)),
        _ => format!("[. > {}]", rng.gen_range(0u8..50)),
    }
}

fn gen_path(rng: &mut Prng) -> String {
    let steps = rng.gen_range(1usize..4);
    let mut path = String::new();
    for _ in 0..steps {
        let sep = if rng.gen_bool(0.5) { "/" } else { "//" };
        path.push_str(sep);
        path.push_str(&gen_tag(rng));
        path.push_str(&gen_pred(rng));
    }
    path
}

// ---- properties -----------------------------------------------------------------

#[test]
fn all_strategies_agree_on_random_inputs() {
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(0xA11_5EED ^ case);
        let doc = gen_doc(&mut rng);
        let path = gen_path(&mut rng);
        let sdoc = SuccinctDoc::from_document(&doc);
        let reference: Vec<SNodeId> =
            Executor::new(&sdoc).with_strategy(ExecStrategy::Naive).eval_path_str(&path).unwrap();
        for strat in [
            ExecStrategy::NoK,
            ExecStrategy::TwigStack,
            ExecStrategy::BinaryJoin,
            ExecStrategy::Auto,
            ExecStrategy::Parallel { threads: 2 },
            ExecStrategy::Parallel { threads: 8 },
        ] {
            let got = Executor::new(&sdoc).with_strategy(strat).eval_path_str(&path).unwrap();
            assert_eq!(
                got,
                reference,
                "case {case}: doc `{}` path `{}` strategy {:?}",
                xqp_xml::serialize(&doc),
                path,
                strat
            );
        }
    }
}

#[test]
fn streaming_agrees_with_stored() {
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(0x057E_4A11 ^ case);
        let doc = gen_doc(&mut rng);
        let path = gen_path(&mut rng);
        let xml = xqp_xml::serialize(&doc);
        let sdoc = SuccinctDoc::from_document(&doc);
        let pattern = PatternGraph::from_path(&parse_path(&path).unwrap()).unwrap();
        let events: Vec<xqp_xml::Event> =
            xqp_xml::Parser::new(&xml).collect::<Result<_, _>>().unwrap();
        let streamed = streaming::match_stream(events.iter(), &pattern);
        let ctx = xqp_exec::ExecContext::new(&sdoc);
        let stored = xqp_exec::nok::eval_single_output(&ctx, &pattern, None);
        assert_eq!(streamed, stored, "case {case}: doc `{xml}` path `{path}`");
    }
}

#[test]
fn documents_roundtrip_through_queries() {
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(0xD0C_5EED ^ case);
        let doc = gen_doc(&mut rng);
        // `//*` must return every element, `//text()` every text node.
        let sdoc = SuccinctDoc::from_document(&doc);
        let ex = Executor::new(&sdoc);
        let elements = ex.eval_path_str("//*").unwrap();
        assert_eq!(elements.len(), doc.element_count(), "case {case}");
        let texts = ex.eval_path_str("//text()").unwrap();
        let dom_texts = doc.descendants_or_self(doc.root()).filter(|&n| doc.is_text(n)).count();
        assert_eq!(texts.len(), dom_texts, "case {case}");
    }
}

// ---- original proptest suite (opt-in; needs the `proptest` dependency) ----------

#[cfg(feature = "proptest")]
mod proptest_suite {
    use proptest::prelude::*;
    use xqp_exec::{streaming, Executor, Strategy as ExecStrategy};
    use xqp_storage::{SNodeId, SuccinctDoc};
    use xqp_xml::{Document, NodeId};
    use xqp_xpath::{parse_path, PatternGraph};

    fn arb_doc() -> impl Strategy<Value = Document> {
        #[derive(Debug, Clone)]
        enum T {
            El(u8, Vec<T>),
            Txt(u8),
        }
        let leaf =
            prop_oneof![any::<u8>().prop_map(T::Txt), any::<u8>().prop_map(|t| T::El(t, vec![]))];
        let tree = leaf.prop_recursive(5, 80, 6, |inner| {
            (any::<u8>(), prop::collection::vec(inner, 0..6)).prop_map(|(t, c)| T::El(t, c))
        });
        tree.prop_map(|t| {
            fn rec(doc: &mut Document, parent: NodeId, t: &T) {
                match t {
                    T::El(tag, children) => {
                        let el = doc.append_element(parent, format!("t{}", tag % 4));
                        if tag.is_multiple_of(3) {
                            doc.set_attribute(el, "k", (tag % 7).to_string());
                        }
                        for c in children {
                            rec(doc, el, c);
                        }
                    }
                    T::Txt(v) => {
                        let needs = match doc.node(parent).last_child {
                            Some(last) => !doc.is_text(last),
                            None => true,
                        };
                        if needs {
                            doc.append_text(parent, (v % 50).to_string());
                        }
                    }
                }
            }
            let mut doc = Document::new();
            let root = doc.root();
            match &t {
                T::El(..) => rec(&mut doc, root, &t),
                T::Txt(_) => {
                    doc.append_element(root, "t0");
                }
            }
            doc
        })
    }

    fn arb_path() -> impl Strategy<Value = String> {
        let tag = prop_oneof![
            Just("t0".to_string()),
            Just("t1".to_string()),
            Just("t2".to_string()),
            Just("t3".to_string()),
            Just("*".to_string()),
        ];
        let pred = prop_oneof![
            Just(String::new()),
            tag.clone().prop_map(|t| format!("[{t}]")),
            Just("[@k]".to_string()),
            (0u8..7).prop_map(|v| format!("[@k = {v}]")),
            (0u8..50).prop_map(|v| format!("[. = {v}]")),
            (0u8..50).prop_map(|v| format!("[. > {v}]")),
        ];
        let step = (prop_oneof![Just("/"), Just("//")], tag, pred)
            .prop_map(|(sep, t, p)| format!("{sep}{t}{p}"));
        prop::collection::vec(step, 1..4).prop_map(|steps| steps.concat())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        #[test]
        fn all_strategies_agree_on_random_inputs(doc in arb_doc(), path in arb_path()) {
            let sdoc = SuccinctDoc::from_document(&doc);
            let reference: Vec<SNodeId> = Executor::new(&sdoc)
                .with_strategy(ExecStrategy::Naive)
                .eval_path_str(&path)
                .unwrap();
            for strat in [ExecStrategy::NoK, ExecStrategy::TwigStack, ExecStrategy::BinaryJoin, ExecStrategy::Auto] {
                let got = Executor::new(&sdoc).with_strategy(strat).eval_path_str(&path).unwrap();
                prop_assert_eq!(
                    &got, &reference,
                    "doc `{}` path `{}` strategy {:?}",
                    xqp_xml::serialize(&doc), path, strat
                );
            }
        }

        #[test]
        fn streaming_agrees_with_stored(doc in arb_doc(), path in arb_path()) {
            let xml = xqp_xml::serialize(&doc);
            let sdoc = SuccinctDoc::from_document(&doc);
            let pattern = PatternGraph::from_path(&parse_path(&path).unwrap()).unwrap();
            let events: Vec<xqp_xml::Event> =
                xqp_xml::Parser::new(&xml).collect::<Result<_, _>>().unwrap();
            let streamed = streaming::match_stream(events.iter(), &pattern);
            let ctx = xqp_exec::ExecContext::new(&sdoc);
            let stored = xqp_exec::nok::eval_single_output(&ctx, &pattern, None);
            prop_assert_eq!(streamed, stored, "doc `{}` path `{}`", xml, path);
        }

        #[test]
        fn documents_roundtrip_through_queries(doc in arb_doc()) {
            // `//*` must return every element, `//text()` every text node.
            let sdoc = SuccinctDoc::from_document(&doc);
            let ex = Executor::new(&sdoc);
            let elements = ex.eval_path_str("//*").unwrap();
            prop_assert_eq!(elements.len(), doc.element_count());
            let texts = ex.eval_path_str("//text()").unwrap();
            let dom_texts = doc
                .descendants_or_self(doc.root())
                .filter(|&n| doc.is_text(n))
                .count();
            prop_assert_eq!(texts.len(), dom_texts);
        }
    }
}
