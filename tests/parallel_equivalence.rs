//! Strategy-equivalence matrix: every query in the end-to-end corpus
//! (`tests/engine_queries.rs`) must serialize byte-identically under every
//! physical strategy — Auto, NoK, TwigStack, BinaryJoin, Naive and Parallel
//! (at 1, 2 and 8 threads) — and under both FLWOR evaluation modes (the
//! streaming physical pipeline and the materializing `Env` interpreter).
//! Document order of results is part of the contract — the k-way merge in
//! `xqp_exec::parallel` has to reconstruct exactly what the serial sweep
//! would have produced, and the batch pipeline exactly what the
//! materializing reference produces.
//!
//! The matrix itself is [`xqp::fuzz::assert_all_engines_agree`] — the same
//! oracle the differential fuzzer uses (`tests/differential.rs` replays its
//! found seeds through it), so this corpus also rides through the
//! durable-store round trip and catches panics as first-class failures. The
//! remaining hand-rolled loops cover what the fixed matrix does not: the
//! parallel strategy at 1, 8, and hardware-sized thread counts.

use xqp::fuzz::{assert_all_engines_agree, assert_all_strategies_select};
use xqp::{Database, EvalMode, Strategy};

const STORE: &str = r#"<store>
<inventory>
<item sku="A1"><name>bolt</name><price>10</price><qty>500</qty></item>
<item sku="A2"><name>nut</name><price>5</price><qty>800</qty></item>
<item sku="B1"><name>washer</name><price>2</price><qty>50</qty></item>
<item sku="B2"><name>gear</name><price>120</price><qty>7</qty></item>
</inventory>
<orders>
<order id="o1" sku="A1" units="20"/>
<order id="o2" sku="B2" units="2"/>
<order id="o3" sku="A1" units="5"/>
</orders>
</store>"#;

const MULTI: &str =
    "<r><p a=\"2\" b=\"1\"/><p a=\"1\" b=\"2\"/><p a=\"2\" b=\"0\"/><p a=\"1\" b=\"1\"/></r>";

/// Every (document, query) pair from the engine corpus that produces output.
const QUERIES: &[(&str, &str)] = &[
    (
        "store",
        "for $i in doc()/store/inventory/item \
         where $i/price >= 10 \
         return <line sku=\"{$i/@sku}\" cost=\"{$i/price}\">{$i/name}</line>",
    ),
    (
        "store",
        "for $o in doc()/store/orders/order \
         for $i in doc()/store/inventory/item \
         where $i/@sku = $o/@sku \
         return <fulfilled order=\"{$o/@id}\">{$i/name}</fulfilled>",
    ),
    (
        "store",
        "sum(for $o in doc()/store/orders/order \
         for $i in doc()/store/inventory/item \
         where $i/@sku = $o/@sku \
         return $o/@units * $i/price)",
    ),
    (
        "store",
        "sum(for $o in doc()/store/orders/order \
         for $i in doc()/store/inventory/item[@sku = $o/@sku] \
         return $o/@units * $i/price)",
    ),
    (
        "store",
        "let $limit := sum(doc()/store/inventory/item[name = \"bolt\"]/price) + 0 \
         return doc()/store/inventory/item[price > $limit]/name",
    ),
    (
        "store",
        "for $i in doc()/store/inventory/item order by $i/name \
         return <stock name=\"{$i/name}\">{ \
            if ($i/qty < 100) then <low/> else <ok/> }</stock>",
    ),
    (
        "store",
        "for $i in doc()/store/inventory/item \
         let $os := (for $o in doc()/store/orders/order \
                     where $o/@sku = $i/@sku return $o) \
         where exists($os) \
         return <demand sku=\"{$i/@sku}\" orders=\"{count($os)}\"/>",
    ),
    (
        "store",
        "for $i in doc()/store/inventory/item \
         where starts-with($i/name, \"b\") or contains($i/name, \"ash\") \
         return string($i/name)",
    ),
    (
        "x",
        "for $p in doc()/r/p order by $p/@a, $p/@b descending \
         return concat($p/@a, $p/@b, \" \")",
    ),
    (
        "store",
        "<report><summary><total>{count(doc()//item)}</total>\
         <value>{sum(doc()//item/price)}</value></summary></report>",
    ),
    ("store", "count(doc()//item[price > 200]) = 0"),
    ("store", "exists(doc()//item[qty < 10])"),
    ("store", "distinct-values(doc()/store/orders/order/@sku)"),
    ("store", "let $x := <wrap><inner>deep</inner></wrap> return $x/inner"),
    ("store", "(7 div 2)"),
    ("store", "(7 mod 2)"),
];

/// Queries that must fail identically (same error class, no panic).
const ERROR_QUERIES: &[(&str, &str)] = &[
    ("store", "/store/inventory/item[@sku = $ghost]"),
    ("store", "frobnicate(1)"),
    ("store", "for $x in"),
    ("store", "$undefined"),
];

/// Bare paths, compared through `select` (node ids, so ordering is explicit).
const PATHS: &[(&str, &str)] = &[
    ("store", "//item"),
    ("store", "//item[price > 10]/name"),
    ("store", "/store/orders/order"),
    ("store", "//item[name]/qty"),
    ("store", "//nothing"),
    ("x", "//p[@a = 1]"),
    // Relative and axis-prefixed paths have no context at the select plane
    // and must come back empty under every strategy — the pattern matchers
    // used to root them at the document and return every match.
    ("store", "item"),
    ("store", "descendant::item"),
    ("store", "descendant-or-self::order"),
    ("store", "child::inventory"),
];

fn doc_xml(name: &str) -> String {
    match name {
        "store" => STORE.lines().collect(),
        "x" => MULTI.to_string(),
        other => panic!("unknown corpus document `{other}`"),
    }
}

fn db() -> Database {
    let d = Database::new();
    d.load_str("store", &doc_xml("store")).unwrap();
    d.load_str("x", MULTI).unwrap();
    d
}

#[test]
fn parallel_matches_serial_on_engine_corpus() {
    let serial = db();
    for threads in [1usize, 2, 8] {
        let mut par = db();
        par.set_strategy(Strategy::Parallel { threads });
        for (doc, q) in QUERIES {
            let want = serial.query(doc, q).unwrap();
            let got = par.query(doc, q).unwrap();
            assert_eq!(got, want, "threads={threads} doc={doc} query=`{q}`");
        }
    }
}

#[test]
fn parallel_matches_serial_on_bare_paths() {
    let serial = db();
    for threads in [1usize, 2, 8] {
        let mut par = db();
        par.set_strategy(Strategy::Parallel { threads });
        for (doc, p) in PATHS {
            let want = serial.select(doc, p).unwrap();
            let got = par.select(doc, p).unwrap();
            assert_eq!(got, want, "threads={threads} doc={doc} path=`{p}`");
        }
    }
}

#[test]
fn parallel_reports_the_same_errors() {
    for threads in [1usize, 2, 8] {
        let mut par = db();
        par.set_strategy(Strategy::Parallel { threads });
        for (doc, q) in ERROR_QUERIES {
            assert!(
                par.query(doc, q).is_err(),
                "threads={threads} doc={doc} query=`{q}` should fail"
            );
        }
    }
}

#[test]
fn strategy_matrix_serializes_identically() {
    // The full Strategy × EvalMode matrix plus the durable-store round
    // trip, against the naive+materializing reference.
    for (doc, q) in QUERIES {
        assert_all_engines_agree(&doc_xml(doc), q);
    }
}

#[test]
fn strategy_matrix_agrees_on_bare_paths() {
    // Bare paths bypass FLWOR evaluation modes; the select-plane matrix is
    // strategy-only.
    for (doc, p) in PATHS {
        assert_all_strategies_select(&doc_xml(doc), p);
    }
}

#[test]
fn error_queries_fail_under_every_strategy_and_mode() {
    // The oracle requires errors to agree as a *class* across the whole
    // matrix — a strategy that succeeded (or panicked) where the reference
    // errored would be a divergence.
    for (doc, q) in ERROR_QUERIES {
        assert_all_engines_agree(&doc_xml(doc), q);
    }
}

/// Every registry built-in × every argument cardinality shape. The first
/// argument cycles through {empty, singleton, multi-item, mixed-type}
/// sequences; remaining required arguments are filled with a string
/// literal. Many cells are typed errors by design (multi-item `string()`,
/// mixed-type `min()`, a string where `substring` wants a number) — the
/// oracle requires those to agree across the matrix *as a class*, so a
/// strategy or mode that silently succeeds where the reference errors is a
/// failure, and vice versa.
#[test]
fn function_conformance_table() {
    const SHAPES: &[(&str, &str)] = &[
        ("empty", "doc()//zzz"),
        ("singleton", "doc()//name[1]"),
        ("multi-item", "doc()//name"),
        ("mixed-type", "(1, \"a\")"),
    ];
    let xml = doc_xml("store");
    for entry in xqp::exec::functions::registry() {
        if entry.max_args == Some(0) {
            // Nullary focus functions: exercised inside (valid) and
            // outside (typed error) a `for` clause.
            for q in [
                format!("for $v0 in doc()//name return {}()", entry.name),
                format!("{}()", entry.name),
            ] {
                assert_all_engines_agree(&xml, &q);
            }
            continue;
        }
        for (shape, arg) in SHAPES {
            let mut args = vec![(*arg).to_string()];
            while args.len() < entry.min_args {
                args.push("\"x\"".to_string());
            }
            let q = format!("{}({})", entry.name, args.join(", "));
            // The assertion message from the oracle carries the query; the
            // shape label is implicit in the argument text.
            let _ = shape;
            assert_all_engines_agree(&xml, &q);
        }
    }
}

/// Queries from this round's language surface — streaming aggregate folds,
/// positional windows, quantifiers — compared *directly* between the two
/// evaluation modes (and then through the full oracle, which also covers
/// the strategy axis and the durable round trip).
#[test]
fn streaming_and_materializing_agree_on_function_surface() {
    const FN_QUERIES: &[&str] = &[
        "count(for $i in doc()/store/inventory/item return $i/price)",
        "sum(for $i in doc()/store/inventory/item return $i/price * $i/qty)",
        "min(for $i in doc()/store/inventory/item return $i/price)",
        "max(for $o in doc()/store/orders/order return $o/@units)",
        "exists(for $i in doc()//item where $i/qty < 10 return $i)",
        "empty(for $i in doc()//item where $i/price > 500 return $i)",
        "for $i in doc()/store/inventory/item where position() > 2 return $i/name",
        "for $i in doc()/store/inventory/item where position() = last() return $i/@sku",
        "for $i in doc()/store/inventory/item order by $i/price descending \
         return <rank p=\"{position()}\" of=\"{last()}\">{$i/name}</rank>",
        "some $i in doc()//item satisfies $i/price > 100",
        "every $i in doc()//item satisfies $i/qty > 5",
        "for $i in doc()//item \
         where some $o in doc()//order satisfies $o/@sku = $i/@sku \
         return $i/name",
        "count(for $o in doc()//order for $i in doc()//item return 1)",
    ];
    let xml = doc_xml("store");
    let streaming = db();
    let mut materializing = db();
    materializing.set_eval_mode(EvalMode::Materializing);
    for q in FN_QUERIES {
        let want = materializing.query("store", q).unwrap();
        let got = streaming.query("store", q).unwrap();
        assert_eq!(got, want, "streaming vs materializing on `{q}`");
        assert_all_engines_agree(&xml, q);
    }
}

#[test]
fn auto_threads_matches_serial_too() {
    // threads: 0 resolves to available_parallelism at run time.
    let serial = db();
    let mut par = db();
    par.set_strategy(Strategy::Parallel { threads: 0 });
    for (doc, q) in QUERIES {
        assert_eq!(par.query(doc, q).unwrap(), serial.query(doc, q).unwrap(), "query=`{q}`");
    }
}
