//! Paged storage behind the pinning buffer pool, end to end: an XMark
//! document many times the pool's size must answer the T5 path suite and
//! the T16 FLWOR legs exactly like its fully-resident twin while the pool
//! cap bounds resident memory; MVCC reader snapshots pinned across
//! commits and compactions must stay byte-identical under a pool small
//! enough to evict constantly; and the durable paged format must survive
//! save → open → update → reopen round trips with and without a pool.

use std::path::PathBuf;
use std::sync::Arc;
use xqp::{Database, EvalMode};
use xqp_gen::{gen_xmark, xmark_queries, XmarkConfig};
use xqp_xml::serialize;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xqp-paged-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn xmark_xml(scale: f64) -> String {
    serialize(&gen_xmark(&XmarkConfig::scale(scale)))
}

/// The T16 experiment's query shape: a FLWOR with a predicate, run in both
/// evaluation modes (materializing `Env` and the streaming pipeline).
const FLWOR: &str = "for $a in doc()//open_auction where $a/bidder/increase > 20 \
                     return $a/reserve";

#[test]
fn xmark_many_times_the_pool_answers_the_query_suite() {
    const POOL_PAGES: usize = 8;
    let xml = xmark_xml(0.5);

    // Reference: the same document fully resident, no pool.
    let mut reference = Database::new();
    reference.load_str("doc", &xml).unwrap();

    let mut paged = Database::new();
    paged.set_buffer_pool(POOL_PAGES);
    paged.load_str("doc", &xml).unwrap();

    // The acceptance bar: the document dwarfs the pool by >= 10x, so
    // answering anything forces sustained eviction traffic.
    let stats = reference.storage_stats("doc").unwrap();
    assert!(
        stats.succinct_total() >= 10 * POOL_PAGES * 4096,
        "document too small to stress the pool: {} B resident vs a {} B pool",
        stats.succinct_total(),
        POOL_PAGES * 4096
    );

    // T5: the six XMark path queries, node-for-node.
    for q in xmark_queries() {
        let want = reference.select("doc", q.path).unwrap();
        let got = paged.select("doc", q.path).unwrap();
        assert_eq!(got, want, "{} diverged on the paged document", q.id);
        assert!(!want.is_empty(), "{} selected nothing — not a real check", q.id);
    }

    // T16: the FLWOR legs, in both evaluation modes.
    for mode in [EvalMode::Streaming, EvalMode::Materializing] {
        reference.set_eval_mode(mode);
        paged.set_eval_mode(mode);
        let want = reference.query("doc", FLWOR).unwrap();
        let got = paged.query("doc", FLWOR).unwrap();
        assert_eq!(got, want, "FLWOR diverged on the paged document in {mode:?} mode");
        assert!(!want.is_empty());
    }

    // Bounded residency: the pool never held more than its cap and never
    // had to overcommit, while the document cycled through it many times.
    let pool = paged.buffer_stats().unwrap();
    assert_eq!(pool.capacity, POOL_PAGES as u64);
    assert!(pool.resident <= pool.capacity, "{pool:?}");
    assert!(pool.resident_peak <= pool.capacity, "{pool:?}");
    assert_eq!(pool.overcommits, 0, "{pool:?}");
    assert!(
        pool.evictions >= 10 * pool.capacity,
        "pool never thrashed — evictions {} with capacity {}",
        pool.evictions,
        pool.capacity
    );
    assert!(pool.misses > pool.capacity, "{pool:?}");
}

#[test]
fn pinned_snapshots_survive_eviction_across_commits_and_compactions() {
    const POOL_PAGES: usize = 4;
    let dir = tmp("mvcc");
    let mut db = Database::new();
    db.set_buffer_pool(POOL_PAGES);
    db.load_str("doc", &xmark_xml(0.05)).unwrap();
    db.persist_to(&dir).unwrap();
    let db = Arc::new(db);

    // Pin a snapshot of generation 0 and remember its serialization.
    let pinned = db.document("doc").unwrap();
    let root = pinned.sdoc().root().unwrap();
    let frozen = xqp::exec::engine::serialize_stored(&pinned, root);

    // Readers hammer the pinned snapshot while the writer commits updates
    // and compacts — each compaction rewrites pages.xqp under a NEW
    // generation and swaps the serving document, so the pool is juggling
    // two generations' pages through 4 frames the whole time.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let stop = Arc::clone(&stop);
            let snap = Arc::clone(&pinned);
            let frozen = frozen.clone();
            std::thread::spawn(move || {
                let mut reads = 0u64;
                let root = snap.sdoc().root().unwrap();
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let now = xqp::exec::engine::serialize_stored(&snap, root);
                    assert_eq!(now, frozen, "pinned snapshot changed under eviction");
                    reads += 1;
                }
                reads
            })
        })
        .collect();

    for round in 0..6 {
        db.insert_into(
            "doc",
            "/site/regions/africa",
            &format!("<item id=\"r{round}\"><name>round {round}</name></item>"),
        )
        .unwrap();
        db.delete_matching("doc", "/site/regions/africa/item[1]").unwrap();
        db.compact("doc").unwrap();
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for r in readers {
        let reads = r.join().unwrap();
        assert!(reads > 0, "reader never got a look in");
    }

    // The pinned snapshot still reads back identically after everything
    // it referenced has been evicted and its generation retired...
    let after = xqp::exec::engine::serialize_stored(&pinned, root);
    assert_eq!(after, frozen);
    drop(pinned);

    // ...and the live document reflects all six rounds, both in memory and
    // after a fresh paged recovery.
    let live = db.query("doc", "/site/regions/africa").unwrap();
    assert!(live.contains("round 5"));
    drop(db);
    let reopened = Database::open_with_buffer(&dir, POOL_PAGES).unwrap();
    assert_eq!(reopened.query("doc", "/site/regions/africa").unwrap(), live);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn durable_paged_store_round_trips_with_and_without_a_pool() {
    let dir = tmp("roundtrip");
    let xml = xmark_xml(0.05);

    let mut db = Database::new();
    db.set_buffer_pool(16);
    db.load_str("doc", &xml).unwrap();
    db.persist_to(&dir).unwrap();
    let want_keywords = db.select("doc", "//keyword").unwrap();
    db.insert_into("doc", "/site", "<extra><keyword>paged</keyword></extra>").unwrap();
    let want_after = db.select("doc", "//keyword").unwrap();
    assert_eq!(want_after.len(), want_keywords.len() + 1);
    let want_serialized = db.serialize("doc").unwrap();
    drop(db);

    // Reopen behind a pool: WAL replays over the paged snapshot.
    let pooled = Database::open_with_buffer(&dir, 16).unwrap();
    assert!(pooled.is_durable("doc").unwrap());
    assert_eq!(pooled.serialize("doc").unwrap(), want_serialized);
    assert_eq!(pooled.select("doc", "//keyword").unwrap().len(), want_after.len());
    drop(pooled);

    // Reopen without a pool: the same paged file read fully resident.
    let resident = Database::open(&dir).unwrap();
    assert_eq!(resident.serialize("doc").unwrap(), want_serialized);
    drop(resident);
    let _ = std::fs::remove_dir_all(&dir);
}
