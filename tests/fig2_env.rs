//! E2 — the paper's Fig. 2: the layered environment built by Example 1's
//! FLWOR, driven end-to-end by a real document shaped like the figure.

use xqp::Database;

/// A document whose structure mirrors Fig. 2's value assignments:
/// 3 `a` roots; their `b` fan-outs are (2, 1, 3); each `b` carries `c` and
/// `d` values and an `e` fan-out of (3, 2 | 2 | 2, 3, 1).
fn fig2_doc() -> String {
    let b = |name: &str, es: usize| {
        let e_elems: String = (1..=es).map(|i| format!("<e>{name}e{i}</e>")).collect();
        format!("<b><c>c{name}</c><d>d{name}</d>{e_elems}</b>")
    };
    format!(
        "<r>\
         <a>{}{}</a>\
         <a>{}</a>\
         <a>{}{}{}</a>\
         </r>",
        b("11", 3),
        b("12", 2),
        b("21", 2),
        b("31", 2),
        b("32", 3),
        b("33", 1)
    )
}

const EXAMPLE1: &str = "for $a in doc()/r/a \
     for $b in $a/b \
     let $c := $b/c \
     let $d := $b/d \
     for $e in $b/e \
     return <t>{$e}</t>";

#[test]
fn example1_environment_yields_13_total_bindings() {
    let db = Database::new();
    db.load_str("fig2", &fig2_doc()).unwrap();
    // E6 (the return) is evaluated once per total binding and concatenated:
    // the paper counts 13 root-to-leaf paths.
    let out = db.query("fig2", EXAMPLE1).unwrap();
    assert_eq!(out.matches("<t>").count(), 13);
}

#[test]
fn bindings_follow_nested_loop_order() {
    let db = Database::new();
    db.load_str("fig2", &fig2_doc()).unwrap();
    let out = db
        .query("fig2", "for $a in doc()/r/a for $b in $a/b for $e in $b/e return concat($e, \";\")")
        .unwrap();
    let order: Vec<&str> = out.split_whitespace().collect();
    assert_eq!(
        order,
        [
            "11e1;", "11e2;", "11e3;", "12e1;", "12e2;", "21e1;", "21e2;", "31e1;", "31e2;",
            "32e1;", "32e2;", "32e3;", "33e1;"
        ]
    );
}

#[test]
fn let_layers_are_one_to_one() {
    let db = Database::new();
    db.load_str("fig2", &fig2_doc()).unwrap();
    // $c and $d never multiply bindings: binding count is driven by the
    // for-clauses alone (3 a's × their b's = 6 before $e).
    let out = db
        .query(
            "fig2",
            "for $a in doc()/r/a for $b in $a/b let $c := $b/c let $d := $b/d \
             return concat($c, \"/\", $d, \" \")",
        )
        .unwrap();
    assert_eq!(out.split_whitespace().count(), 6);
    assert!(out.contains("c11/d11"));
    assert!(out.contains("c33/d33"));
}

#[test]
fn where_is_a_boolean_layer() {
    let db = Database::new();
    db.load_str("fig2", &fig2_doc()).unwrap();
    // Keep only bindings whose $b has 3 e-children: b11 and b32 ⇒ 6 paths.
    let out = db
        .query(
            "fig2",
            "for $a in doc()/r/a for $b in $a/b for $e in $b/e \
             where count($b/e) = 3 return <t>{$e}</t>",
        )
        .unwrap();
    assert_eq!(out.matches("<t>").count(), 6);
}

#[test]
fn fused_and_unfused_plans_agree_on_example1() {
    use xqp::{RuleSet, Strategy};
    let a = Database::new();
    a.load_str("fig2", &fig2_doc()).unwrap();
    let reference = a.query("fig2", EXAMPLE1).unwrap();
    let mut b = Database::new();
    b.load_str("fig2", &fig2_doc()).unwrap();
    b.set_rules(RuleSet::none());
    b.set_strategy(Strategy::Naive);
    assert_eq!(b.query("fig2", EXAMPLE1).unwrap(), reference);
}
