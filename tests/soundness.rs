//! E10 — soundness: every access method and every rule set computes the
//! same answers as the naive reference, across documents of very different
//! shapes.

use xqp_exec::{ExecContext, Executor, Strategy};
use xqp_gen::{blowup_doc, deep_chain, gen_bib, gen_xmark, wide_flat, XmarkConfig};
use xqp_storage::{SNodeId, SuccinctDoc};
use xqp_xml::Document;

const STRATEGIES: [Strategy; 5] =
    [Strategy::Auto, Strategy::NoK, Strategy::TwigStack, Strategy::BinaryJoin, Strategy::Naive];

fn check_paths(doc: &Document, paths: &[&str]) {
    let sdoc = SuccinctDoc::from_document(doc);
    for path in paths {
        let reference: Vec<SNodeId> =
            Executor::new(&sdoc).with_strategy(Strategy::Naive).eval_path_str(path).unwrap();
        for strat in STRATEGIES {
            let got = Executor::new(&sdoc).with_strategy(strat).eval_path_str(path).unwrap();
            assert_eq!(got, reference, "path `{path}` strategy {strat:?}");
        }
    }
}

#[test]
fn xmark_document_all_strategies() {
    let doc = gen_xmark(&XmarkConfig::scale(0.08));
    check_paths(
        &doc,
        &[
            "/site/regions/africa/item/name",
            "//keyword",
            "/site/people/person[profile/age > 30]/name",
            "//open_auction[bidder/increase > 20]/reserve",
            "/site/closed_auctions/closed_auction[price > 40]/date",
            "//item[mailbox/mail]//keyword",
            "//person[@id = \"person3\"]/name",
            "/site/*/item",
            "//bidder/personref",
            "//interest",
            "//text/keyword",
            "//nothing//here",
        ],
    );
}

#[test]
fn bibliography_document_all_strategies() {
    let doc = gen_bib(60, 11);
    check_paths(
        &doc,
        &[
            "/bib/book/title",
            "/bib/book[author]/title",
            "//author/last",
            "/bib/book[@year > 1995][price < 100]/title",
            "//book[publisher = \"Springer\"]/@year",
        ],
    );
}

#[test]
fn extreme_shapes_all_strategies() {
    check_paths(&deep_chain(200, &["x", "y", "z"]), &["//z", "/x/y/z", "//x//z", "//y[z]"]);
    check_paths(&wide_flat(500, &["a", "b", "c"]), &["//b", "/root/a", "/root/*[. > 250]"]);
    check_paths(&blowup_doc(12), &["//a[b]", "//a//b", "//a[b and .//a[b]]"]);
}

#[test]
fn queries_with_fallback_axes_still_work() {
    // Upward/sideways axes force the navigational fallback in every
    // strategy; answers must be identical (and non-trivial).
    let doc = gen_bib(20, 5);
    let sdoc = SuccinctDoc::from_document(&doc);
    for path in [
        "//last/parent::author",
        "//title/following-sibling::price",
        "//price/ancestor::book/@year",
        "//author[1]/last",
    ] {
        let reference =
            Executor::new(&sdoc).with_strategy(Strategy::Naive).eval_path_str(path).unwrap();
        assert!(!reference.is_empty(), "`{path}` found nothing");
        for strat in STRATEGIES {
            let got = Executor::new(&sdoc).with_strategy(strat).eval_path_str(path).unwrap();
            assert_eq!(got, reference, "path `{path}` strategy {strat:?}");
        }
    }
}

#[test]
fn counters_confirm_the_methods_differ() {
    // Not just same answers — genuinely different physical work profiles.
    let doc = gen_xmark(&XmarkConfig::scale(0.1));
    let sdoc = SuccinctDoc::from_document(&doc);
    let path = "//open_auction[bidder/increase > 20]/reserve";

    let nok = Executor::new(&sdoc).with_strategy(Strategy::NoK);
    nok.eval_path_str(path).unwrap();
    assert!(nok.counters().nodes_visited > 0);
    assert_eq!(nok.counters().structural_joins, 0, "NoK does no joins");

    let twig = Executor::new(&sdoc).with_strategy(Strategy::TwigStack);
    twig.eval_path_str(path).unwrap();
    assert_eq!(twig.counters().nodes_visited, 0, "holistic never walks the tree");
    assert!(twig.counters().stream_items > 0);

    let joins = Executor::new(&sdoc).with_strategy(Strategy::BinaryJoin);
    joins.eval_path_str(path).unwrap();
    assert!(joins.counters().structural_joins > 0);
}

#[test]
fn index_backed_evaluation_agrees() {
    use xqp_storage::ValueIndex;
    let doc = gen_xmark(&XmarkConfig::scale(0.08));
    let sdoc = SuccinctDoc::from_document(&doc);
    let index = ValueIndex::build(&sdoc);
    for path in [
        "//person[@id = \"person3\"]/name",
        "//item[location = \"Capella\"]/name",
        "/site/people/person[profile/gender = \"male\"]/name",
        "//incategory[@category = \"category1\"]",
        // Element whose matching text lives deeper in the subtree.
        "//item[description = \"\"]",
        // Range probes over the numeric tree.
        "//person[profile/age > 60]/name",
        "//open_auction[reserve >= 100]/current",
        "//closed_auction[price < 20]/date",
    ] {
        let reference =
            Executor::new(&sdoc).with_strategy(Strategy::Naive).eval_path_str(path).unwrap();
        for strat in [Strategy::TwigStack, Strategy::BinaryJoin] {
            let got = Executor::new(&sdoc)
                .with_index(&index)
                .with_strategy(strat)
                .eval_path_str(path)
                .unwrap();
            assert_eq!(got, reference, "path `{path}` strategy {strat:?} (indexed)");
        }
    }
}

#[test]
fn context_rooted_patterns_agree() {
    use xqp_xpath::{parse_path, PatternGraph};
    let doc = gen_xmark(&XmarkConfig::scale(0.05));
    let sdoc = SuccinctDoc::from_document(&doc);
    let ctx = ExecContext::new(&sdoc);
    // Pick each person as context, evaluate a relative pattern.
    let mut g = PatternGraph::empty();
    let last = g.graft_path(g.root(), &parse_path("profile/age").unwrap()).unwrap().unwrap();
    g.mark_output(last);
    let people = Executor::new(&sdoc).eval_path_str("//person").unwrap();
    for p in people.iter().take(30) {
        let nok = xqp_exec::nok::eval_single_output(&ctx, &g, Some(*p));
        let twig = xqp_exec::twig::eval_pattern_holistic(&ctx, &g, Some(*p));
        let bj = xqp_exec::structural::eval_pattern_binary(&ctx, &g, Some(*p));
        assert_eq!(nok, twig, "person {p}");
        assert_eq!(nok, bj, "person {p}");
    }
}
