//! Database-level plan-cache behaviour: the per-document compiled-plan cache
//! survives across the short-lived executors `Database` builds per query,
//! counts hits and misses, evicts LRU entries at capacity, and is
//! invalidated by the storage update path (`delete_matching` / `insert_into`
//! splices through `crates/storage/src/update.rs`).

use xqp::Database;

const BIB: &str = "<bib>\
    <book year=\"1994\"><title>TCP</title><price>65</price></book>\
    <book year=\"2000\"><title>Data</title><price>39</price></book>\
    </bib>";

fn db() -> Database {
    let d = Database::new();
    d.load_str("bib", BIB).unwrap();
    d
}

#[test]
fn repeated_queries_hit_across_executors() {
    let d = db();
    // Each `query` call builds a fresh Executor; the cache lives on the
    // stored document, so the second and third runs must hit.
    for _ in 0..3 {
        let out = d.query("bib", "/bib/book/title").unwrap();
        assert_eq!(out, "<title>TCP</title><title>Data</title>");
    }
    let (hits, misses, evictions) = d.plan_cache_stats("bib").unwrap();
    assert_eq!(misses, 1);
    assert_eq!(hits, 2);
    assert_eq!(evictions, 0);
}

#[test]
fn whitespace_variants_share_a_slot() {
    let d = db();
    d.query("bib", "for $b in doc()/bib/book return $b/title").unwrap();
    d.query("bib", "for  $b   in doc()/bib/book\n  return  $b/title").unwrap();
    let (hits, misses, _) = d.plan_cache_stats("bib").unwrap();
    assert_eq!((hits, misses), (1, 1), "normalization must merge the variants");
}

#[test]
fn distinct_documents_have_distinct_caches() {
    let d = db();
    d.load_str("other", "<r><x>1</x></r>").unwrap();
    d.query("bib", "count(doc()//book)").unwrap();
    d.query("other", "count(doc()//x)").unwrap();
    assert_eq!(d.plan_cache_stats("bib").unwrap(), (0, 1, 0));
    assert_eq!(d.plan_cache_stats("other").unwrap(), (0, 1, 0));
}

#[test]
fn lru_eviction_at_capacity() {
    let d = db();
    let cap = xqp::ExecPlanCache::default().capacity();
    // Fill past capacity with distinct query texts…
    for i in 0..cap + 8 {
        d.query("bib", &format!("count(doc()//tag{i})")).unwrap();
    }
    let (_, misses, evictions) = d.plan_cache_stats("bib").unwrap();
    assert_eq!(misses, (cap + 8) as u64);
    assert_eq!(evictions, 8, "each insert past capacity evicts the LRU entry");
    // …and the earliest (least recently used) texts recompile on re-query.
    d.query("bib", "count(doc()//tag0)").unwrap();
    let (_, misses_after, _) = d.plan_cache_stats("bib").unwrap();
    assert_eq!(misses_after, misses + 1, "evicted plan must be a fresh miss");
}

#[test]
fn delete_invalidates_the_cache() {
    let d = db();
    let q = "for $b in doc()/bib/book return $b/title";
    assert_eq!(d.query("bib", q).unwrap(), "<title>TCP</title><title>Data</title>");
    d.query("bib", q).unwrap(); // 1 miss, 1 hit
    let removed = d.delete_matching("bib", "/bib/book[@year = 1994]").unwrap();
    assert_eq!(removed, 1);
    // The document changed, so the cached plan was dropped: next run is a
    // miss, and it sees the updated document.
    assert_eq!(d.query("bib", q).unwrap(), "<title>Data</title>");
    let (hits, misses, _) = d.plan_cache_stats("bib").unwrap();
    assert_eq!(misses, 2, "post-update run recompiles");
    assert_eq!(hits, 1);
}

#[test]
fn insert_invalidates_the_cache() {
    let d = db();
    let q = "count(doc()//book)";
    assert_eq!(d.query("bib", q).unwrap(), "2");
    let n = d.insert_into("bib", "/bib", "<book><title>New</title></book>").unwrap();
    assert_eq!(n, 1);
    assert_eq!(d.query("bib", q).unwrap(), "3");
    let (hits, misses, _) = d.plan_cache_stats("bib").unwrap();
    assert_eq!(misses, 2, "post-insert run recompiles");
    assert_eq!(hits, 0);
}

#[test]
fn failed_updates_keep_the_cache_warm() {
    let d = db();
    let q = "count(doc()//book)";
    d.query("bib", q).unwrap();
    // A delete that matches nothing must not invalidate.
    assert_eq!(d.delete_matching("bib", "//nonexistent").unwrap(), 0);
    d.query("bib", q).unwrap();
    let (hits, misses, _) = d.plan_cache_stats("bib").unwrap();
    assert_eq!((hits, misses), (1, 1), "no-op update keeps cached plans");
}

#[test]
fn reload_resets_the_cache() {
    let d = db();
    d.query("bib", "count(doc()//book)").unwrap();
    // Re-loading a document replaces the Stored entry wholesale — stats
    // start over with it.
    d.load_str("bib", BIB).unwrap();
    assert_eq!(d.plan_cache_stats("bib").unwrap(), (0, 0, 0));
}

#[test]
fn explain_surfaces_cache_traffic() {
    let d = db();
    d.query("bib", "/bib/book/title").unwrap();
    let (plan, _) = d.explain("bib", "/bib/book/title").unwrap();
    assert!(plan.contains("-- plan cache: hits=1 misses=1"), "{plan}");
}
