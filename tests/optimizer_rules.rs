//! Per-rule tests for the composable optimizer pipeline.
//!
//! Every named rule in `xqp_algebra::rules::default_rules()` gets at least
//! one *fired* case (a query shaped so the rule must rewrite, asserted
//! through the per-pass trace in `RewriteReport::passes`) and one
//! *must-not-fire* case (a query that superficially resembles the trigger
//! but violates a side condition). The join-graph cases also pin the
//! end-to-end semantics: the hash-join physical operator must return
//! byte-identical results to the nested-loop reference (`RuleSet::none()`)
//! and to the materializing evaluator.

use xqp_algebra::{optimize_expr, RewriteReport, RuleSet};
use xqp_exec::{EvalMode, Executor, Strategy};
use xqp_storage::SuccinctDoc;

const AUCTION: &str = r#"<auction>
    <item id="i1"><incategory category="c1"/><name>axe</name></item>
    <item id="i2"><incategory category="c2"/><name>bow</name></item>
    <item id="i3"><incategory category="c1"/><name>cup</name></item>
    <category id="c1"><name>tools</name></category>
    <category id="c2"><name>weapons</name></category>
    <category id="c9"><name>empty</name></category>
</auction>"#;

/// Optimize `q` under `rules` and return the rewrite report.
fn report_for(q: &str, rules: &RuleSet) -> RewriteReport {
    let body = xqp_xquery::parse_query(q).unwrap().body;
    let (_, report) = optimize_expr(body, rules);
    report
}

/// Did the named rule fire at least once in the traced pipeline?
fn fired(report: &RewriteReport, rule: &str) -> bool {
    report.passes.iter().any(|p| p.rule == rule && p.fired)
}

/// Was the named rule attempted (traced) at all?
fn attempted(report: &RewriteReport, rule: &str) -> bool {
    report.passes.iter().any(|p| p.rule == rule)
}

// ---- const-fold (R8) -------------------------------------------------------

#[test]
fn const_fold_fires_on_literal_arithmetic() {
    let r = report_for("for $x in doc()//item return 1 + 2", &RuleSet::all());
    assert!(fired(&r, "const-fold"), "{:?}", r.passes);
    assert!(r.count("R8") >= 1);
}

#[test]
fn const_fold_must_not_fire_without_literals() {
    let r = report_for("for $x in doc()//item return $x/name", &RuleSet::all());
    assert!(attempted(&r, "const-fold"));
    assert!(!fired(&r, "const-fold"), "{:?}", r.passes);
}

#[test]
fn const_fold_skipped_silently_when_disabled() {
    let rules = RuleSet { const_fold: false, ..RuleSet::all() };
    let r = report_for("for $x in doc()//item return 1 + 2", &rules);
    assert!(!attempted(&r, "const-fold"), "{:?}", r.passes);
    assert_eq!(r.count("R8"), 0);
}

// ---- prune-dead-lets (R7) --------------------------------------------------

#[test]
fn prune_dead_lets_fires_on_unused_let() {
    let rules = RuleSet { flwor_to_tpm: false, ..RuleSet::all() };
    let r = report_for("for $x in doc()//item let $dead := $x/name return $x", &rules);
    assert!(fired(&r, "prune-dead-lets"), "{:?}", r.passes);
    assert_eq!(r.count("R7"), 1);
}

#[test]
fn prune_dead_lets_must_not_fire_on_used_let() {
    let rules = RuleSet { flwor_to_tpm: false, ..RuleSet::all() };
    let r = report_for("for $x in doc()//item let $n := $x/name return $n", &rules);
    assert!(!fired(&r, "prune-dead-lets"), "{:?}", r.passes);
    assert_eq!(r.count("R7"), 0);
}

// ---- join-graph-isolation (R12) -------------------------------------------

const JOIN_Q: &str = "for $i in doc()//item for $c in doc()//category \
     where $i/incategory/@category = $c/@id return $c/name";

#[test]
fn join_isolation_fires_on_equi_join() {
    let r = report_for(JOIN_Q, &RuleSet::all());
    assert!(fired(&r, "join-graph-isolation"), "{:?}", r.passes);
    assert_eq!(r.count("R12"), 1);
    // The firing's diff must show the join-graph node appearing.
    let pass = r.passes.iter().find(|p| p.rule == "join-graph-isolation" && p.fired).unwrap();
    assert!(
        pass.diff.iter().any(|l| l.starts_with('+') && l.contains("join-graph")),
        "{:?}",
        pass.diff
    );
}

#[test]
fn join_isolation_must_not_fire_on_dependent_fors() {
    // $c ranges over a path rooted at $i: not an independent side.
    let r = report_for(
        "for $i in doc()//item for $c in $i/incategory \
         where $i/name = $c/@category return $i",
        &RuleSet::all(),
    );
    assert!(!fired(&r, "join-graph-isolation"), "{:?}", r.passes);
    assert_eq!(r.count("R12"), 0);
}

#[test]
fn join_isolation_must_not_fire_without_equi_edge() {
    // An inequality is not a hashable edge.
    let r = report_for(
        "for $i in doc()//item for $c in doc()//category \
         where $i/name > $c/name return $i",
        &RuleSet::all(),
    );
    assert!(!fired(&r, "join-graph-isolation"), "{:?}", r.passes);
}

#[test]
fn join_isolation_must_not_fire_on_absolute_key_paths() {
    // `$c/..` spelled absolutely would re-root at the document (the PR 4
    // relative-path bug class) — classify_edge must reject it, and with no
    // other edge the rule must not fire.
    let r = report_for(
        "for $i in doc()//item for $c in doc()//category \
         where $i/incategory/@category = /auction/category/@id return $i",
        &RuleSet::all(),
    );
    assert!(!fired(&r, "join-graph-isolation"), "{:?}", r.passes);
}

#[test]
fn join_isolation_toggle_off_keeps_nested_loop_plan() {
    let rules = RuleSet { join_isolation: false, ..RuleSet::all() };
    let r = report_for(JOIN_Q, &rules);
    assert!(!attempted(&r, "join-graph-isolation"), "{:?}", r.passes);
    assert_eq!(r.count("R12"), 0);
}

// ---- flwor-to-tpm (R5) -----------------------------------------------------

#[test]
fn flwor_to_tpm_fires_on_navigation_run() {
    let r = report_for("for $i in doc()//item let $n := $i/name return $n", &RuleSet::all());
    assert!(fired(&r, "flwor-to-tpm"), "{:?}", r.passes);
    assert_eq!(r.count("R5"), 1);
}

#[test]
fn flwor_to_tpm_must_not_fire_on_free_variable_source() {
    let r = report_for("for $x in doc()//item return $undefined", &RuleSet::all());
    // The for fuses, but a source over an unbound var cannot: pin the
    // no-fire shape on a var-rooted source with no binding in the plan.
    let r2 = report_for("for $x in $free return $x", &RuleSet::all());
    assert!(!fired(&r2, "flwor-to-tpm"), "{:?}", r2.passes);
    drop(r);
}

// ---- prune-outputs (R6) ----------------------------------------------------

#[test]
fn prune_outputs_fires_on_unused_tpm_output() {
    // R7 off so the dead let survives into fusion, where R6 must drop it.
    let rules = RuleSet { dead_let: false, ..RuleSet::all() };
    let r = report_for("for $i in doc()//item let $dead := $i/name return $i", &rules);
    assert!(fired(&r, "prune-outputs"), "{:?}", r.passes);
    assert_eq!(r.count("R6"), 1);
}

#[test]
fn prune_outputs_must_not_fire_when_all_outputs_used() {
    let rules = RuleSet { dead_let: false, ..RuleSet::all() };
    let r = report_for("for $i in doc()//item let $n := $i/name return ($i, $n)", &rules);
    assert!(!fired(&r, "prune-outputs"), "{:?}", r.passes);
}

// ---- predicate-pushdown (R10) ---------------------------------------------

#[test]
fn predicate_pushdown_fires_past_independent_binding() {
    // The conjunct over $i can hoist past the $c binding; keep fusion off
    // so the surface for/where shape survives to the pushdown pass.
    let rules = RuleSet { flwor_to_tpm: false, join_isolation: false, ..RuleSet::all() };
    let r = report_for(
        "for $i in doc()//item for $c in doc()//category \
         where $i/name = \"axe\" return $c",
        &rules,
    );
    assert!(fired(&r, "predicate-pushdown"), "{:?}", r.passes);
    assert!(r.count("R10") >= 1);
}

#[test]
fn predicate_pushdown_must_not_fire_when_cond_uses_last_binding() {
    let rules = RuleSet { flwor_to_tpm: false, join_isolation: false, ..RuleSet::all() };
    let r = report_for(
        "for $i in doc()//item for $c in doc()//category \
         where $c/@id = \"c1\" and $i/incategory/@category = \"c1\" return $c",
        &rules,
    );
    // Both conjuncts already sit at their earliest legal position only if
    // they depend on the last binding; the $i conjunct *can* move, so use a
    // truly pinned query instead:
    drop(r);
    let r = report_for("for $c in doc()//category where $c/@id = \"c1\" return $c", &rules);
    assert!(!fired(&r, "predicate-pushdown"), "{:?}", r.passes);
    assert_eq!(r.count("R10"), 0);
}

// ---- projection-pushdown (R11) --------------------------------------------

#[test]
fn projection_pushdown_fires_let_below_where() {
    // `where` over $i only; the let over $i can sink below it. The cond is
    // non-total enough for R10? No — keep R10 on; it will also hoist, so
    // gate this on the swap by disabling predicate-pushdown.
    let rules = RuleSet {
        flwor_to_tpm: false,
        join_isolation: false,
        predicate_pushdown: false,
        ..RuleSet::all()
    };
    let r = report_for(
        "for $i in doc()//item let $n := $i/name \
         where $i/incategory/@category = \"c1\" return $n",
        &rules,
    );
    assert!(fired(&r, "projection-pushdown"), "{:?}", r.passes);
    assert!(r.count("R11") >= 1);
}

#[test]
fn projection_pushdown_must_not_fire_when_where_needs_the_let() {
    let rules = RuleSet {
        flwor_to_tpm: false,
        join_isolation: false,
        predicate_pushdown: false,
        ..RuleSet::all()
    };
    let r =
        report_for("for $i in doc()//item let $n := $i/name where $n = \"axe\" return $n", &rules);
    assert!(!fired(&r, "projection-pushdown"), "{:?}", r.passes);
    assert_eq!(r.count("R11"), 0);
}

// ---- compile-paths (R1/R2) -------------------------------------------------

#[test]
fn compile_paths_always_attempted_and_fires_on_paths() {
    let all = report_for("for $i in doc()//item return $i", &RuleSet::all());
    assert!(fired(&all, "compile-paths"), "{:?}", all.passes);
    // Still attempted with every toggleable rule off — lowering always runs.
    let none = report_for("for $i in doc()//item return $i", &RuleSet::none());
    assert!(attempted(&none, "compile-paths"), "{:?}", none.passes);
}

#[test]
fn compile_paths_must_not_fire_without_paths() {
    let r = report_for("for $i in (1, 2, 3) return $i", &RuleSet::all());
    assert!(!fired(&r, "compile-paths"), "{:?}", r.passes);
}

// ---- end-to-end: hash join ≡ nested loop -----------------------------------

/// Results under every (rules, mode) combination must agree: hash join
/// (all rules, streaming), hash join materializing (nested-loop reference
/// arm of the JoinGraph node), and the un-isolated nested loop
/// (`join_isolation: false` and `RuleSet::none()`).
#[test]
fn hash_join_matches_nested_loop_reference() {
    let d = SuccinctDoc::parse(AUCTION).unwrap();
    let queries = [
        JOIN_Q,
        // Flipped edge orientation.
        "for $i in doc()//item for $c in doc()//category \
         where $c/@id = $i/incategory/@category return ($i/name, $c/name)",
        // Bare-var endpoint on one side.
        "for $a in doc()//item/name for $b in doc()//category/name \
         where $a = $b return $a",
        // Residual total conjunct alongside the edge.
        "for $i in doc()//item for $c in doc()//category \
         where $i/incategory/@category = $c/@id and $i/@id = \"i1\" return $c/name",
        // Three sides, two edges.
        "for $i in doc()//item for $c in doc()//category for $j in doc()//item \
         where $i/incategory/@category = $c/@id and $j/@id = $i/@id return $j/name",
        // No matching category for c9: empty side effect.
        "for $c in doc()//category for $i in doc()//item \
         where $c/@id = $i/incategory/@category order by $c/@id return $i/name",
    ];
    for q in queries {
        let isolated = Executor::new(&d).query(q).unwrap();
        let isolated_mat =
            Executor::new(&d).with_eval_mode(EvalMode::Materializing).query(q).unwrap();
        let nested = Executor::new(&d)
            .with_rules(RuleSet { join_isolation: false, ..RuleSet::all() })
            .query(q)
            .unwrap();
        let bare = Executor::new(&d).with_rules(RuleSet::none()).query(q).unwrap();
        assert_eq!(isolated, nested, "hash join vs nested loop for `{q}`");
        assert_eq!(isolated, isolated_mat, "streaming vs materializing for `{q}`");
        assert_eq!(isolated, bare, "all rules vs no rules for `{q}`");
        // And the join actually took the isolated path.
        if q == JOIN_Q {
            let (plan, rep) = Executor::new(&d).explain(q).unwrap();
            assert!(plan.contains("hash-join"), "{plan}");
            assert_eq!(rep.count("R12"), 1);
        }
    }
}

#[test]
fn hash_join_duplicate_keys_preserve_multiplicity_and_order() {
    // Two items share category c1; the join must emit one row per pair in
    // nested-loop (document) order, not deduplicate.
    let d = SuccinctDoc::parse(AUCTION).unwrap();
    let q = "for $c in doc()//category for $i in doc()//item \
             where $c/@id = $i/incategory/@category return $i/name";
    let isolated = Executor::new(&d).query(q).unwrap();
    let bare = Executor::new(&d).with_rules(RuleSet::none()).query(q).unwrap();
    assert_eq!(isolated, bare);
    assert_eq!(isolated, "<name>axe</name><name>cup</name><name>bow</name>");
}

#[test]
fn hash_join_agrees_across_strategies() {
    let d = SuccinctDoc::parse(AUCTION).unwrap();
    let reference = Executor::new(&d).with_strategy(Strategy::Naive).query(JOIN_Q).unwrap();
    for s in [Strategy::Auto, Strategy::NoK, Strategy::TwigStack, Strategy::BinaryJoin] {
        let out = Executor::new(&d).with_strategy(s).query(JOIN_Q).unwrap();
        assert_eq!(out, reference, "strategy {s:?}");
    }
}

// ---- absolute-path rooting audit -------------------------------------------
//
// Every rewrite that grafts a path into a pattern or classifies it as a key
// must check `PathExpr::absolute` explicitly: an absolute path re-roots at
// the document, so treating it as binding-relative (or vice versa) silently
// changes which nodes it selects. These tests pin the guarded boundaries.

/// A `where` conjunct whose side is an *absolute* path compares a
/// document-wide value, not a per-binding one. It must survive as a
/// residual filter — not be absorbed into the TPM pattern as a
/// per-binding constraint — so results agree with the unoptimized plan.
#[test]
fn absolute_where_conjunct_stays_a_residual_filter() {
    let d = SuccinctDoc::parse(AUCTION).unwrap();
    // `doc()//category/@id = "c1"` holds document-wide (some category has
    // id c1), so every item passes; absorbing it per-binding would filter.
    let q = "for $i in doc()//item where doc()//category/@id = \"c1\" return $i/name";
    let optimized = Executor::new(&d).query(q).unwrap();
    let bare = Executor::new(&d).with_rules(RuleSet::none()).query(q).unwrap();
    assert_eq!(optimized, bare);
    assert_eq!(optimized, "<name>axe</name><name>bow</name><name>cup</name>");
    // And the negative document-wide case filters everything, everywhere.
    let q = "for $i in doc()//item where doc()//category/@id = \"zzz\" return $i/name";
    assert_eq!(Executor::new(&d).query(q).unwrap(), "");
    assert_eq!(Executor::new(&d).with_rules(RuleSet::none()).query(q).unwrap(), "");
}

/// A fused `$v/path` pattern must stay rooted at the binding, not drift to
/// the document root: `$i//name` may only see names *inside* `$i`, even
/// though the document holds name elements elsewhere (category names here).
#[test]
fn fused_var_paths_root_at_the_binding_not_the_document() {
    let d = SuccinctDoc::parse(AUCTION).unwrap();
    let q = "for $i in doc()//item return $i//name";
    for strategy in [Strategy::Auto, Strategy::NoK, Strategy::TwigStack, Strategy::BinaryJoin] {
        let out = Executor::new(&d).with_strategy(strategy).query(q).unwrap();
        assert_eq!(
            out, "<name>axe</name><name>bow</name><name>cup</name>",
            "{strategy:?} leaked document-rooted matches"
        );
    }
}

/// An absolute source under a *nested* binding still roots at the document
/// (the converse boundary): `doc()//name` inside a per-item loop sees all
/// six names each iteration, under every rule set.
#[test]
fn absolute_paths_inside_bindings_root_at_the_document() {
    let d = SuccinctDoc::parse(AUCTION).unwrap();
    let q = "for $i in doc()//item return count(doc()//name)";
    let optimized = Executor::new(&d).query(q).unwrap();
    let bare = Executor::new(&d).with_rules(RuleSet::none()).query(q).unwrap();
    assert_eq!(optimized, bare);
    assert_eq!(optimized, "6 6 6");
}
