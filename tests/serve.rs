//! Integration tests of the concurrent query server: protocol round
//! trips, typed error classes, admission control, malformed-frame
//! robustness, disconnect cancellation, concurrent clients racing a
//! writer, and clean shutdown.

use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use xqp::{Database, QueryLimits};
use xqp_serve::protocol::{read_frame, write_frame, MAX_FRAME};
use xqp_serve::{Client, ErrorClass, Request, Response, ServeError, Server, ServerConfig};

const BIB: &str = concat!(
    r#"<bib><book year="1994"><title>TCP/IP Illustrated</title></book>"#,
    r#"<book year="2000"><title>Data on the Web</title></book></bib>"#,
);

fn bib_server(cfg: ServerConfig) -> Server {
    let db = Database::new();
    db.load_str("bib", BIB).unwrap();
    Server::start(Arc::new(db), "127.0.0.1:0", cfg).expect("bind loopback server")
}

#[test]
fn all_verbs_round_trip() {
    let server = bib_server(ServerConfig::default());
    let mut c = Client::connect(server.addr()).unwrap();

    c.ping().unwrap();

    let (g0, out) = c.query("bib", "//book[@year=\"2000\"]/title").unwrap();
    assert_eq!(g0, 0);
    assert_eq!(out, "<title>Data on the Web</title>");

    let (_, ids) = c.select("bib", "//book").unwrap();
    assert_eq!(ids.len(), 2);

    assert_eq!(
        c.insert("bib", "/bib", "<book year=\"2020\"><title>New</title></book>").unwrap(),
        1
    );
    let (g1, count) = c.query("bib", "count(//book)").unwrap();
    assert_eq!(g1, 1, "insert must install a new generation");
    assert_eq!(count, "3");

    assert_eq!(c.delete("bib", "//book[@year=\"1994\"]").unwrap(), 1);
    let (g2, count) = c.query("bib", "count(//book)").unwrap();
    assert_eq!(g2, 2);
    assert_eq!(count, "2");

    assert_eq!(c.list_docs().unwrap(), vec!["bib".to_string()]);
    c.close().unwrap();
    server.shutdown();
}

#[test]
fn typed_error_classes_reach_the_client() {
    let server = bib_server(ServerConfig::default());
    let mut c = Client::connect(server.addr()).unwrap();

    // Unknown document.
    match c.query("nope", "//x") {
        Err(ServeError::Remote { class: ErrorClass::UnknownDocument, .. }) => {}
        other => panic!("expected UnknownDocument, got {other:?}"),
    }
    // Bad query text.
    match c.query("bib", "let $x := (((") {
        Err(ServeError::Remote { class: ErrorClass::Query, .. }) => {}
        other => panic!("expected Query, got {other:?}"),
    }
    // Rejected structural update (deleting the root).
    match c.delete("bib", "/bib") {
        Err(ServeError::Remote { class: ErrorClass::Update, .. }) => {}
        other => panic!("expected Update, got {other:?}"),
    }
    // Resource-limit trip, typed as its own class.
    c.set_limits(&QueryLimits::none().with_max_rows(1)).unwrap();
    match c.query("bib", "//book/title") {
        Err(ServeError::Remote { class: ErrorClass::ResourceLimit, message }) => {
            assert!(message.contains("resource governor"), "marker missing: {message}");
        }
        other => panic!("expected ResourceLimit, got {other:?}"),
    }
    // The session survives every one of those errors.
    c.set_limits(&QueryLimits::none()).unwrap();
    c.ping().unwrap();
    c.close().unwrap();
    server.shutdown();
}

#[test]
fn malformed_frames_get_an_error_and_a_clean_close() {
    let server = bib_server(ServerConfig::default());

    // Corrupt checksum: a valid request frame with one payload byte flipped.
    let mut s = TcpStream::connect(server.addr()).unwrap();
    let mut framed = Vec::new();
    write_frame(&mut framed, &Request::Ping { retries: 0 }.encode()).unwrap();
    framed[4] ^= 0xFF;
    s.write_all(&framed).unwrap();
    let resp = Response::decode(&read_frame(&mut s, MAX_FRAME).unwrap()).unwrap();
    assert!(
        matches!(resp, Response::Error { class: ErrorClass::Protocol, .. }),
        "corrupt frame must get a protocol error, got {resp:?}"
    );
    // …followed by a clean close (EOF, not a hang or a reset mid-frame).
    assert!(matches!(read_frame(&mut s, MAX_FRAME), Err(ServeError::Closed)));

    // Oversized announced length is refused without allocating it.
    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.write_all(&(MAX_FRAME + 1).to_le_bytes()).unwrap();
    let resp = Response::decode(&read_frame(&mut s, MAX_FRAME).unwrap()).unwrap();
    assert!(matches!(resp, Response::Error { class: ErrorClass::Protocol, .. }));
    assert!(matches!(read_frame(&mut s, MAX_FRAME), Err(ServeError::Closed)));

    // Undecodable payload (unknown tag) likewise.
    let mut s = TcpStream::connect(server.addr()).unwrap();
    let mut framed = Vec::new();
    write_frame(&mut framed, &[0xEE, 1, 2, 3]).unwrap();
    s.write_all(&framed).unwrap();
    let resp = Response::decode(&read_frame(&mut s, MAX_FRAME).unwrap()).unwrap();
    assert!(matches!(resp, Response::Error { class: ErrorClass::Protocol, .. }));

    // The server survived all three abuses.
    assert_eq!(server.stats().protocol_errors.load(Ordering::Relaxed), 3);
    let mut c = Client::connect(server.addr()).unwrap();
    c.ping().unwrap();
    c.close().unwrap();
    server.shutdown();
}

#[test]
fn session_cap_refuses_excess_sessions_with_a_typed_overloaded() {
    let server = bib_server(ServerConfig { max_sessions: 1, ..Default::default() });

    let mut first = Client::connect(server.addr()).unwrap();
    first.ping().unwrap(); // session established and counted

    let mut second = Client::connect(server.addr()).unwrap();
    match second.ping() {
        Err(ServeError::Overloaded { .. }) => {}
        other => panic!("expected Overloaded, got {other:?}"),
    }

    // Releasing the first session frees the slot.
    first.close().unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let mut retry = Client::connect(server.addr()).unwrap();
        match retry.ping() {
            Ok(_) => {
                retry.close().unwrap();
                break;
            }
            Err(ServeError::Overloaded { .. }) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(10));
            }
            other => panic!("slot never freed: {other:?}"),
        }
    }
    assert!(server.stats().overload_rejections.load(Ordering::Relaxed) >= 1);
    server.shutdown();
}

#[test]
fn saturated_server_queues_instead_of_refusing() {
    // One execution permit, a real queue: concurrent queries must ALL
    // succeed — the latecomers wait for the permit instead of bouncing
    // with a hard refusal, which is the whole point of queue-based
    // overload control. The query is made deliberately non-trivial so the
    // four requests genuinely overlap.
    let db = Database::new();
    let mut doc = String::from("<r>");
    for i in 0..200 {
        doc.push_str(&format!("<x>{i}</x>"));
    }
    doc.push_str("</r>");
    db.load_str("wide", &doc).unwrap();
    let server = Server::start(
        Arc::new(db),
        "127.0.0.1:0",
        ServerConfig { max_inflight: 1, ..Default::default() },
    )
    .unwrap();
    let addr = server.addr();
    let barrier = Arc::new(std::sync::Barrier::new(4));
    let workers: Vec<_> = (0..4)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                barrier.wait(); // all four race for the single permit at once
                let (_, count) = c
                    .query("wide", "count(for $a in //x for $b in //x return $b)")
                    .expect("queued query");
                let _ = c.close();
                count
            })
        })
        .collect();
    for w in workers {
        assert_eq!(w.join().expect("worker died"), "40000");
    }
    assert!(
        server.stats().queued_total.load(Ordering::Relaxed) >= 1,
        "at least one request should have waited in the admission queue"
    );
    assert_eq!(server.stats().overload_rejections.load(Ordering::Relaxed), 0);
    server.shutdown();
}

#[test]
fn disconnect_mid_query_cancels_it() {
    // A pathological cross product: ~1.25e8 result rows, effectively
    // unbounded runtime — but the governor is polled per binding, so a
    // tripped cancel token stops it promptly.
    let db = Database::new();
    let mut doc = String::from("<r>");
    for i in 0..500 {
        doc.push_str(&format!("<x>{i}</x>"));
    }
    doc.push_str("</r>");
    db.load_str("wide", &doc).unwrap();
    let server = Server::start(Arc::new(db), "127.0.0.1:0", ServerConfig::default()).unwrap();

    // Fire the query raw (the Client type would block on the response),
    // then slam the connection shut while it is running.
    let mut s = TcpStream::connect(server.addr()).unwrap();
    let req = Request::Query {
        doc: "wide".into(),
        query: "for $a in //x for $b in //x for $c in //x return <p/>".into(),
    };
    let mut framed = Vec::new();
    write_frame(&mut framed, &req.encode()).unwrap();
    s.write_all(&framed).unwrap();
    std::thread::sleep(Duration::from_millis(100)); // let it start running
    drop(s);

    // The watcher must trip the session's cancel token promptly: a pinned
    // core forever would mean abandoned queries accumulate unboundedly.
    let deadline = Instant::now() + Duration::from_secs(30);
    while server.stats().cancelled.load(Ordering::Relaxed) == 0 {
        assert!(Instant::now() < deadline, "abandoned query was never cancelled");
        std::thread::sleep(Duration::from_millis(20));
    }
    // And the server still serves.
    let mut c = Client::connect(server.addr()).unwrap();
    assert_eq!(c.list_docs().unwrap(), vec!["wide".to_string()]);
    c.close().unwrap();
    server.shutdown();
}

#[test]
fn concurrent_clients_race_a_writer_without_divergence() {
    const CLIENTS: usize = 8;
    const WRITES: usize = 40;

    let server = bib_server(ServerConfig::default());
    let addr = server.addr();

    // Readers: count books and check the count is consistent with the
    // generation they read at. Generation g has 2 + g books (writer only
    // appends).
    let readers: Vec<_> = (0..CLIENTS)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("reader connect");
                let mut reads = 0u64;
                let mut last_gen = 0;
                loop {
                    let (generation, count) =
                        c.query("bib", "count(//book)").expect("reader query");
                    assert_eq!(
                        count,
                        (2 + generation).to_string(),
                        "count inconsistent with generation {generation}: snapshot torn?"
                    );
                    assert!(generation >= last_gen, "session went back in time");
                    last_gen = generation;
                    reads += 1;
                    if generation >= WRITES as u64 {
                        break;
                    }
                }
                let _ = c.close();
                reads
            })
        })
        .collect();

    // Writer: stream appends through its own session.
    let mut w = Client::connect(addr).unwrap();
    for i in 0..WRITES {
        assert_eq!(w.insert("bib", "/bib", &format!("<book year=\"{i}\"/>")).unwrap(), 1);
    }
    w.close().unwrap();

    let total: u64 = readers.into_iter().map(|h| h.join().expect("reader died")).sum();
    assert!(total >= CLIENTS as u64);
    server.shutdown();
}

#[test]
fn shared_plan_cache_spans_sessions_but_not_generations() {
    let server = bib_server(ServerConfig::default());

    let mut a = Client::connect(server.addr()).unwrap();
    let mut b = Client::connect(server.addr()).unwrap();
    let q = "for $b in //book return $b/title";
    a.query("bib", q).unwrap();
    let (_, misses_after_first, _) = server.cache_stats();
    b.query("bib", q).unwrap();
    let (hits, misses, _) = server.cache_stats();
    assert_eq!(misses, misses_after_first, "second session must reuse the compiled plan");
    assert!(hits >= 1, "cross-session cache hit expected");

    // An update moves the generation: the old plan must not be reused.
    a.insert("bib", "/bib", "<book year=\"1\"/>").unwrap();
    b.query("bib", q).unwrap();
    let (_, misses_new_gen, _) = server.cache_stats();
    assert!(misses_new_gen > misses, "new generation must compile (scope changed)");

    a.close().unwrap();
    b.close().unwrap();
    server.shutdown();
}

#[test]
fn shutdown_with_connected_sessions_is_clean() {
    let server = bib_server(ServerConfig::default());
    let addr = server.addr();
    let mut idle = Client::connect(addr).unwrap();
    idle.ping().unwrap();

    // Shutdown must join every thread even though a session is parked in
    // its read loop (this call hanging = test timeout = failure).
    server.shutdown();

    // The parked session learns the server is gone on its next request.
    assert!(idle.ping().is_err());
    assert!(
        Client::connect(addr).is_err() || {
            // Another process may have grabbed the port; a successful TCP
            // connect must at least not reach our (gone) server.
            true
        }
    );
}

#[test]
fn loopback_fuzz_smoke_agrees_with_in_process_engine() {
    let summary = xqp_serve::fuzz::fuzz_server(&xqp_serve::fuzz::ServerFuzzConfig {
        seed: 0xA11CE,
        iters: 24,
        ..Default::default()
    });
    assert_eq!(summary.iters_run, 24);
    for f in &summary.failures {
        eprintln!("{f}");
    }
    assert!(summary.ok(), "loopback session diverged from the in-process engine");
}
