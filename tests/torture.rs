//! Fault-injection smoke: a bounded torture run (see `xqp::torture`) must
//! recover cleanly from every injected I/O fault. The CI pipeline runs a
//! larger commit-seeded sweep through the `xqp torture` binary; this keeps
//! the harness itself exercised by every `cargo test`.

use xqp::torture::{torture, TortureConfig};

#[test]
fn bounded_torture_run_recovers_from_every_fault() {
    let report = torture(&TortureConfig { seed: 0xf00d, iters: 80, ..TortureConfig::default() });
    assert!(report.fault_points >= 80, "only {} fault point(s) ran", report.fault_points);
    assert!(
        report.is_clean(),
        "recovery invariant violations:\n{}",
        report.violations.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn torture_reports_are_deterministic() {
    let a = torture(&TortureConfig { seed: 11, iters: 30, ..TortureConfig::default() });
    let b = torture(&TortureConfig { seed: 11, iters: 30, ..TortureConfig::default() });
    assert_eq!(a.scenarios, b.scenarios);
    assert_eq!(a.fault_points, b.fault_points);
    assert_eq!(a.violations.len(), b.violations.len());
}
