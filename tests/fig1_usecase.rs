//! E1 — the paper's Fig. 1: query, output schema, and optimized plan.

use xqp::{Database, RuleSet, Strategy};
use xqp_algebra::{Expr, LogicalPlan, SchemaNode};

const FIG1_QUERY: &str = r#"
    <results> {
        for $b in document("bib.xml")/bib/book
        let $t := $b/title
        let $a := $b/author
        return <result> {$t} {$a} </result>
    } </results>
"#;

fn db() -> Database {
    let db = Database::new();
    db.load_document("bib", &xqp_gen::bib_sample()).unwrap();
    db
}

#[test]
fn fig1_produces_the_expected_document() {
    let out = db().query("bib", FIG1_QUERY).unwrap();
    // Every book contributes one <result>; the editor-only book has a title
    // but no authors (its let-binding is empty, not missing).
    assert_eq!(out.matches("<result>").count(), 4);
    assert_eq!(out.matches("<title>").count(), 4);
    assert_eq!(out.matches("<author>").count(), 5);
    assert!(out.starts_with("<results>"));
    assert!(out.ends_with("</results>"));
    assert!(out.contains("<result><title>Data on the Web</title><author><last>Abiteboul</last>"));
    assert!(out.contains(
        "<result><title>The Economics of Technology and Content for Digital TV</title></result>"
    ));
}

#[test]
fn fig1_output_schema_tree_matches_fig1b() {
    // The extracted SchemaTree must be: results / { flwor → result / {$t}{$a} }.
    let q = xqp_xquery::parse_query(FIG1_QUERY).unwrap();
    let Expr::Construct(tree) = q.body else { panic!("constructor") };
    assert_eq!(tree.root_name(), "results");
    let SchemaNode::Element { children, .. } = &tree.root else { unreachable!() };
    let SchemaNode::Placeholder(Expr::Flwor(plan)) = &children[0] else {
        panic!("FLWOR placeholder")
    };
    let LogicalPlan::ReturnClause { expr, .. } = plan.as_ref() else { panic!() };
    let Expr::Construct(inner) = expr else { panic!("inner constructor") };
    assert_eq!(inner.root_name(), "result");
    assert_eq!(inner.placeholder_count(), 2);
    let SchemaNode::Element { children, .. } = &inner.root else { unreachable!() };
    let labels: Vec<String> = children
        .iter()
        .map(|c| match c {
            SchemaNode::Placeholder(e) => e.to_string(),
            other => format!("{other:?}"),
        })
        .collect();
    assert_eq!(labels, ["$t", "$a"]);
}

#[test]
fn fig1_plan_fuses_into_one_tpm() {
    let (plan, report) = db().explain("bib", FIG1_QUERY).unwrap();
    // The plan lives inside the constructor; rules must include R5.
    assert_eq!(report.count("R5"), 1, "plan: {plan}");
}

#[test]
fn fig1_same_answer_under_every_configuration() {
    let reference = {
        let mut d = db();
        d.set_rules(RuleSet::none());
        d.set_strategy(Strategy::Naive);
        d.query("bib", FIG1_QUERY).unwrap()
    };
    for rules in [RuleSet::all(), RuleSet::none(), RuleSet::all_except(5), RuleSet::all_except(1)] {
        for strat in [
            Strategy::Auto,
            Strategy::NoK,
            Strategy::TwigStack,
            Strategy::BinaryJoin,
            Strategy::Naive,
        ] {
            let mut d = db();
            d.set_rules(rules);
            d.set_strategy(strat);
            assert_eq!(
                d.query("bib", FIG1_QUERY).unwrap(),
                reference,
                "rules {rules:?} strategy {strat:?}"
            );
        }
    }
}
