//! Snapshot round-trip equivalence over the engine corpus: save → open must
//! reproduce a byte-identical serialization, and tier-1 queries must return
//! identical answers on the reopened database.

use std::fs;
use std::path::PathBuf;
use xqp::{Database, SuccinctDoc};
use xqp_gen::{deep_chain, gen_bib, gen_xmark, wide_flat, XmarkConfig};
use xqp_storage::persist::{decode_snapshot, encode_snapshot};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xqp-persistence-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// The corpus the store must round-trip: hand-written documents covering
/// attributes/text/nesting plus generated bib, XMark, deep and wide shapes.
fn corpus() -> Vec<(String, String)> {
    let mut docs = vec![
        ("minimal".to_string(), "<r/>".to_string()),
        (
            "store".to_string(),
            "<store><inventory><item sku=\"A1\"><name>bolt</name><price>10</price></item>\
             <item sku=\"B2\"><name>gear</name><price>120</price></item></inventory>\
             <orders><order id=\"o1\" sku=\"A1\" units=\"20\"/></orders></store>"
                .to_string(),
        ),
        (
            "unicode".to_string(),
            "<doc lang=\"grüße\"><p>héllo &amp; wörld</p><p>∀x∈S</p></doc>".to_string(),
        ),
    ];
    docs.push(("bib".into(), xqp::xml::serialize(&gen_bib(25, 7))));
    docs.push(("xmark".into(), xqp::xml::serialize(&gen_xmark(&XmarkConfig::scale(0.05)))));
    docs.push(("deep".into(), xqp::xml::serialize(&deep_chain(40, &["a", "b", "c"]))));
    docs.push(("wide".into(), xqp::xml::serialize(&wide_flat(120, &["x", "y"]))));
    docs
}

#[test]
fn snapshot_roundtrip_is_byte_identical_for_corpus() {
    for (name, xml) in corpus() {
        let doc = SuccinctDoc::parse(&xml).unwrap();
        let bytes = encode_snapshot(&doc, 0);
        let (back, generation) = decode_snapshot(&bytes).unwrap();
        assert_eq!(generation, 0, "{name}");
        // Serialization identical…
        assert_eq!(
            xqp::xml::serialize(&back.to_document()),
            xqp::xml::serialize(&doc.to_document()),
            "{name}: reopened document serializes differently"
        );
        // …and the re-encode is byte-identical (deterministic format).
        assert_eq!(bytes, encode_snapshot(&back, 0), "{name}: snapshot not canonical");
    }
}

#[test]
fn saved_database_reopens_byte_identical() {
    let dir = tmp("reopen");
    let mut db = Database::new();
    let mut originals = Vec::new();
    for (name, xml) in corpus() {
        db.load_str(&name, &xml).unwrap();
        originals.push((name.clone(), db.serialize(&name).unwrap()));
    }
    db.persist_to(&dir).unwrap();
    drop(db);

    let back = Database::open(&dir).unwrap();
    for (name, xml) in &originals {
        assert_eq!(&back.serialize(name).unwrap(), xml, "{name}");
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn queries_agree_between_live_and_reopened_database() {
    let dir = tmp("queries");
    let mut db = Database::new();
    for (name, xml) in corpus() {
        db.load_str(&name, &xml).unwrap();
    }
    db.persist_to(&dir).unwrap();

    let queries: &[(&str, &str)] = &[
        ("store", "/store/inventory/item[price > 50]/name"),
        ("store", "for $i in doc()/store/inventory/item return <n>{$i/name}</n>"),
        ("store", "//order[@sku = \"A1\"]"),
        ("bib", "//book[1]/title"),
        ("bib", "count(//book)"),
        ("xmark", "count(//item)"),
        ("deep", "//c"),
        ("wide", "count(/*/*)"),
        ("unicode", "/doc/p[2]"),
    ];
    let reopened = Database::open(&dir).unwrap();
    for (doc, q) in queries {
        assert_eq!(db.query(doc, q).unwrap(), reopened.query(doc, q).unwrap(), "{doc}: {q}");
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn updates_after_save_survive_reopen_and_match_live_state() {
    let dir = tmp("updates");
    let mut db = Database::new();
    db.load_str("store", &corpus()[1].1).unwrap();
    db.persist_to(&dir).unwrap();

    db.insert_into("store", "/store/orders", "<order id=\"o9\" sku=\"B2\" units=\"1\"/>").unwrap();
    db.delete_matching("store", "//item[@sku = \"A1\"]").unwrap();
    let live = db.serialize("store").unwrap();
    drop(db);

    let back = Database::open(&dir).unwrap();
    assert_eq!(back.serialize("store").unwrap(), live);
    assert_eq!(back.query("store", "count(//order)").unwrap(), "2");
    assert_eq!(back.query("store", "count(//item)").unwrap(), "1");
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn explain_shows_persistence_line_only_when_durable() {
    let dir = tmp("explain");
    let mut db = Database::new();
    db.load_str("store", &corpus()[1].1).unwrap();
    let (plan, _) = db.explain("store", "/store/inventory/item/name").unwrap();
    assert!(!plan.contains("-- persistence:"), "{plan}");

    db.persist_to(&dir).unwrap();
    let (plan, _) = db.explain("store", "/store/inventory/item/name").unwrap();
    assert!(plan.contains("-- persistence: bytes_written="), "{plan}");
    fs::remove_dir_all(&dir).unwrap();
}
