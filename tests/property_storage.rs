//! Randomized tests over the storage substrate: random documents round-trip
//! through the succinct encoding, navigation agrees with the DOM, local
//! splices equal full re-encodes, and the B+-tree mirrors `BTreeMap`.
//!
//! Driven by the repo's deterministic [`xqp_gen::Prng`] so the suite runs
//! fully offline with no `proptest` dependency; fixed seeds make every run
//! reproduce the same case set. The original proptest version is preserved
//! behind the opt-in `proptest` cargo feature.

use xqp_gen::Prng;
use xqp_storage::{update, BPlusTree, SNodeId, SuccinctDoc};
use xqp_xml::{serialize, Document, NodeId};

const CASES: u64 = 64;

// ---- random document generator -------------------------------------------------

fn tag_name(t: u8) -> String {
    format!("t{}", t % 5)
}

fn attr_name(a: u8) -> String {
    format!("k{}", a % 3)
}

fn rand_word(rng: &mut Prng, max_len: usize) -> String {
    let len = rng.gen_range(0usize..max_len + 1);
    (0..len).map(|_| (b'a' + rng.gen_range(0u8..26)) as char).collect()
}

/// Append a randomly tagged element with random attributes under `parent`,
/// then recurse for up to 5 children per level, 4 levels deep — same shape
/// the proptest generator produced. Text children respect the
/// merge-adjacent-text invariant.
fn gen_element(rng: &mut Prng, doc: &mut Document, parent: NodeId, depth: u32) {
    let tag = rng.gen_range(0u16..256) as u8;
    let el = doc.append_element(parent, tag_name(tag));
    let attrs = rng.gen_range(0usize..3);
    let mut seen = Vec::new();
    for _ in 0..attrs {
        let name = attr_name(rng.gen_range(0u16..256) as u8);
        if !seen.contains(&name) {
            let value = rand_word(rng, 4);
            doc.set_attribute(el, name.clone(), value);
            seen.push(name);
        }
    }
    if depth == 0 {
        return;
    }
    let children = rng.gen_range(0usize..5);
    for _ in 0..children {
        if rng.gen_bool(0.3) {
            let needs = match doc.node(el).last_child {
                Some(last) => !doc.is_text(last),
                None => true,
            };
            let text = {
                let len = rng.gen_range(0usize..9);
                (0..len).map(|_| *rng.choose(b" abcxyz") as char).collect::<String>()
            };
            if needs && !text.is_empty() {
                doc.append_text(el, text);
            }
        } else {
            gen_element(rng, doc, el, depth - 1);
        }
    }
}

fn gen_doc(rng: &mut Prng) -> Document {
    let mut doc = Document::new();
    let root = doc.root();
    gen_element(rng, &mut doc, root, 4);
    doc
}

// ---- properties -----------------------------------------------------------------

#[test]
fn succinct_roundtrip() {
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(0x0051_01AC ^ case);
        let doc = gen_doc(&mut rng);
        let sdoc = SuccinctDoc::from_document(&doc);
        let back = sdoc.to_document();
        assert_eq!(serialize(&doc), serialize(&back), "case {case}");
    }
}

#[test]
fn navigation_agrees_with_dom() {
    fn cmp(doc: &Document, dn: NodeId, sdoc: &SuccinctDoc, sn: SNodeId, case: u64) {
        assert_eq!(
            doc.name(dn).map(|q| q.as_lexical()),
            Some(sdoc.name(sn).to_string()),
            "case {case}"
        );
        assert_eq!(doc.string_value(dn), sdoc.string_value(sn), "case {case}");
        assert_eq!(doc.depth(dn), sdoc.depth(sn), "case {case}");
        let dkids: Vec<NodeId> = doc.child_elements(dn).collect();
        let skids: Vec<SNodeId> = sdoc.child_elements(sn).collect();
        assert_eq!(dkids.len(), skids.len(), "case {case}");
        for &aid in doc.attributes(dn) {
            if let xqp_xml::NodeKind::Attribute { name, value } = &doc.node(aid).kind {
                assert_eq!(
                    sdoc.attribute(sn, &name.as_lexical()).as_deref(),
                    Some(value.as_str()),
                    "case {case}"
                );
            }
        }
        for (d, s) in dkids.into_iter().zip(skids) {
            cmp(doc, d, sdoc, s, case);
        }
    }
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(0xA4_B1D ^ case);
        let doc = gen_doc(&mut rng);
        let sdoc = SuccinctDoc::from_document(&doc);
        if let (Some(d), Some(s)) = (doc.root_element(), sdoc.root()) {
            cmp(&doc, d, &sdoc, s, case);
        }
    }
}

#[test]
fn subtree_sizes_and_parents_consistent() {
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(0x5B_7EE ^ case);
        let doc = gen_doc(&mut rng);
        let sdoc = SuccinctDoc::from_document(&doc);
        for i in 0..sdoc.node_count() as u32 {
            let n = SNodeId(i);
            // Subtree is a contiguous rank range and every member's ancestor
            // chain passes through n.
            let size = sdoc.subtree_size(n);
            assert!(i as usize + size <= sdoc.node_count(), "case {case}");
            if size > 1 {
                let last = SNodeId(i + size as u32 - 1);
                assert!(sdoc.is_ancestor(n, last), "case {case}");
            }
            if let Some(p) = sdoc.parent(n) {
                assert!(sdoc.is_ancestor(p, n), "case {case}");
                assert_eq!(sdoc.depth(p) + 1, sdoc.depth(n), "case {case}");
            }
        }
    }
}

#[test]
fn splice_insert_equals_reencode() {
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(0x1A5_E27 ^ case);
        let doc = gen_doc(&mut rng);
        let frag_doc = gen_doc(&mut rng);
        let sdoc = SuccinctDoc::from_document(&doc);
        let Some(root) = sdoc.root() else { continue };
        let spliced = update::insert_subtree(&sdoc, root, &frag_doc).unwrap();
        // Reference: append to the DOM and re-encode.
        let mut ref_doc = doc.clone();
        let target = ref_doc.root_element().expect("root");
        clone_into(&frag_doc, frag_doc.root_element().expect("frag root"), &mut ref_doc, target);
        let reencoded = SuccinctDoc::from_document(&ref_doc);
        assert_eq!(
            serialize(&spliced.to_document()),
            serialize(&reencoded.to_document()),
            "case {case}"
        );
        assert_eq!(spliced.node_count(), reencoded.node_count(), "case {case}");
    }
}

#[test]
fn splice_delete_equals_reencode() {
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(0xDE1_E7E ^ case);
        let doc = gen_doc(&mut rng);
        let sdoc = SuccinctDoc::from_document(&doc);
        if sdoc.node_count() < 2 {
            continue;
        }
        let victim = SNodeId(1 + rng.gen_range(0usize..sdoc.node_count() - 1) as u32);
        let deleted = update::delete_subtree(&sdoc, victim).unwrap();
        let round = SuccinctDoc::from_document(&deleted.to_document());
        assert_eq!(
            serialize(&deleted.to_document()),
            serialize(&round.to_document()),
            "case {case}"
        );
        assert_eq!(deleted.node_count(), round.node_count(), "case {case}");
        // Navigation still consistent after the splice.
        for i in 0..deleted.node_count() as u32 {
            let n = SNodeId(i);
            if let Some(p) = deleted.parent(n) {
                assert!(deleted.is_ancestor(p, n), "case {case}");
            }
        }
    }
}

#[test]
fn btree_matches_std_btreemap() {
    for case in 0..16 {
        let mut rng = Prng::seed_from_u64(0xB7_2EE ^ case);
        let n_ops = rng.gen_range(1usize..400);
        let mut tree: BPlusTree<u16, u8> = BPlusTree::new();
        let mut oracle: std::collections::BTreeMap<u16, Vec<u8>> = Default::default();
        for _ in 0..n_ops {
            let k = rng.gen_range(0u16..u16::MAX);
            let v = rng.gen_range(0u16..256) as u8;
            tree.insert(k, v);
            oracle.entry(k).or_default().push(v);
        }
        for (k, vs) in &oracle {
            assert_eq!(tree.get(k), vs.as_slice(), "case {case}");
        }
        let all: Vec<u16> = tree.iter().map(|(k, _)| *k).collect();
        let expect: Vec<u16> = oracle.keys().copied().collect();
        assert_eq!(all, expect, "case {case}");
    }
}

/// Deep-copy `src`'s subtree at `from` into `dst` under `under`.
fn clone_into(src: &Document, from: NodeId, dst: &mut Document, under: NodeId) {
    use xqp_xml::NodeKind;
    match &src.node(from).kind {
        NodeKind::Element { name, attributes } => {
            let el = dst.append_element(under, name.as_lexical());
            for &aid in attributes {
                if let NodeKind::Attribute { name, value } = &src.node(aid).kind {
                    dst.set_attribute(el, name.as_lexical(), value.clone());
                }
            }
            let kids: Vec<NodeId> = src.children(from).collect();
            for k in kids {
                clone_into(src, k, dst, el);
            }
        }
        NodeKind::Text(t) => {
            dst.append_text(under, t.clone());
        }
        _ => {}
    }
}

// ---- original proptest suite (opt-in; needs the `proptest` dependency) ----------

#[cfg(feature = "proptest")]
mod proptest_suite {
    use proptest::prelude::*;
    use xqp_storage::{update, BPlusTree, SuccinctDoc};
    use xqp_xml::{serialize, Document, NodeId};

    use super::clone_into;

    #[derive(Debug, Clone)]
    enum Tree {
        El { tag: u8, attrs: Vec<(u8, String)>, children: Vec<Tree> },
        Text(String),
    }

    fn arb_tree() -> impl Strategy<Value = Tree> {
        let leaf = prop_oneof![
            "[a-z ]{0,8}".prop_map(Tree::Text),
            (any::<u8>(), prop::collection::vec((any::<u8>(), "[a-z]{0,4}"), 0..3))
                .prop_map(|(tag, attrs)| Tree::El { tag, attrs, children: vec![] }),
        ];
        leaf.prop_recursive(4, 64, 5, |inner| {
            (
                any::<u8>(),
                prop::collection::vec((any::<u8>(), "[a-z]{0,4}"), 0..3),
                prop::collection::vec(inner, 0..5),
            )
                .prop_map(|(tag, attrs, children)| Tree::El { tag, attrs, children })
        })
    }

    fn build(tree: &Tree) -> Document {
        fn rec(doc: &mut Document, parent: NodeId, t: &Tree) {
            match t {
                Tree::El { tag, attrs, children } => {
                    let el = doc.append_element(parent, super::tag_name(*tag));
                    let mut seen = Vec::new();
                    for (a, v) in attrs {
                        let name = super::attr_name(*a);
                        if !seen.contains(&name) {
                            doc.set_attribute(el, name.clone(), v.clone());
                            seen.push(name);
                        }
                    }
                    for c in children {
                        rec(doc, el, c);
                    }
                }
                Tree::Text(s) => {
                    let needs = match doc.node(parent).last_child {
                        Some(last) => !doc.is_text(last),
                        None => true,
                    };
                    if needs && !s.is_empty() {
                        doc.append_text(parent, s.clone());
                    }
                }
            }
        }
        let mut doc = Document::new();
        let root = doc.root();
        match tree {
            t @ Tree::El { .. } => rec(&mut doc, root, t),
            Tree::Text(_) => {
                doc.append_element(root, "t0");
            }
        }
        doc
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn succinct_roundtrip(tree in arb_tree()) {
            let doc = build(&tree);
            let sdoc = SuccinctDoc::from_document(&doc);
            let back = sdoc.to_document();
            prop_assert_eq!(serialize(&doc), serialize(&back));
        }

        #[test]
        fn splice_insert_equals_reencode(tree in arb_tree(), frag in arb_tree()) {
            let doc = build(&tree);
            let frag_doc = build(&frag);
            let sdoc = SuccinctDoc::from_document(&doc);
            let Some(root) = sdoc.root() else { return Ok(()) };
            let spliced = update::insert_subtree(&sdoc, root, &frag_doc).unwrap();
            let mut ref_doc = doc.clone();
            let target = ref_doc.root_element().expect("root");
            clone_into(&frag_doc, frag_doc.root_element().expect("frag root"), &mut ref_doc, target);
            let reencoded = SuccinctDoc::from_document(&ref_doc);
            prop_assert_eq!(
                serialize(&spliced.to_document()),
                serialize(&reencoded.to_document())
            );
        }

        #[test]
        fn btree_matches_std_btreemap(ops in prop::collection::vec((any::<u16>(), any::<u8>()), 1..400)) {
            let mut tree: BPlusTree<u16, u8> = BPlusTree::new();
            let mut oracle: std::collections::BTreeMap<u16, Vec<u8>> = Default::default();
            for (k, v) in &ops {
                tree.insert(*k, *v);
                oracle.entry(*k).or_default().push(*v);
            }
            for (k, vs) in &oracle {
                prop_assert_eq!(tree.get(k), vs.as_slice());
            }
            let all: Vec<u16> = tree.iter().map(|(k, _)| *k).collect();
            let expect: Vec<u16> = oracle.keys().copied().collect();
            prop_assert_eq!(all, expect);
        }
    }
}
