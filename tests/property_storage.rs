//! Property tests over the storage substrate: random documents round-trip
//! through the succinct encoding, navigation agrees with the DOM, local
//! splices equal full re-encodes, and the B+-tree mirrors `BTreeMap`.

use proptest::prelude::*;
use xqp_storage::{update, BPlusTree, SuccinctDoc};
use xqp_xml::{serialize, Document, NodeId};

// ---- random document generator -------------------------------------------------

#[derive(Debug, Clone)]
enum Tree {
    El { tag: u8, attrs: Vec<(u8, String)>, children: Vec<Tree> },
    Text(String),
}

fn tag_name(t: u8) -> String {
    format!("t{}", t % 5)
}

fn attr_name(a: u8) -> String {
    format!("k{}", a % 3)
}

fn arb_tree() -> impl Strategy<Value = Tree> {
    let leaf = prop_oneof![
        "[a-z ]{0,8}".prop_map(Tree::Text),
        (any::<u8>(), prop::collection::vec((any::<u8>(), "[a-z]{0,4}"), 0..3)).prop_map(
            |(tag, attrs)| Tree::El { tag, attrs, children: vec![] }
        ),
    ];
    leaf.prop_recursive(4, 64, 5, |inner| {
        (
            any::<u8>(),
            prop::collection::vec((any::<u8>(), "[a-z]{0,4}"), 0..3),
            prop::collection::vec(inner, 0..5),
        )
            .prop_map(|(tag, attrs, children)| Tree::El { tag, attrs, children })
    })
}

fn build(tree: &Tree) -> Document {
    fn rec(doc: &mut Document, parent: NodeId, t: &Tree) {
        match t {
            Tree::El { tag, attrs, children } => {
                let el = doc.append_element(parent, tag_name(*tag));
                let mut seen = Vec::new();
                for (a, v) in attrs {
                    let name = attr_name(*a);
                    if !seen.contains(&name) {
                        doc.set_attribute(el, name.clone(), v.clone());
                        seen.push(name);
                    }
                }
                for c in children {
                    rec(doc, el, c);
                }
            }
            Tree::Text(s) => {
                // Merge-adjacent-text invariant: only append when the last
                // child is not already text.
                let needs = match doc.node(parent).last_child {
                    Some(last) => !doc.is_text(last),
                    None => true,
                };
                if needs && !s.is_empty() {
                    doc.append_text(parent, s.clone());
                }
            }
        }
    }
    let mut doc = Document::new();
    let root = doc.root();
    // Force an element root.
    match tree {
        t @ Tree::El { .. } => rec(&mut doc, root, t),
        Tree::Text(_) => {
            doc.append_element(root, "t0");
        }
    }
    doc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn succinct_roundtrip(tree in arb_tree()) {
        let doc = build(&tree);
        let sdoc = SuccinctDoc::from_document(&doc);
        let back = sdoc.to_document();
        prop_assert_eq!(serialize(&doc), serialize(&back));
    }

    #[test]
    fn navigation_agrees_with_dom(tree in arb_tree()) {
        let doc = build(&tree);
        let sdoc = SuccinctDoc::from_document(&doc);
        // Walk both trees in parallel and compare structure + values.
        fn cmp(
            doc: &Document,
            dn: NodeId,
            sdoc: &SuccinctDoc,
            sn: xqp_storage::SNodeId,
        ) -> Result<(), TestCaseError> {
            prop_assert_eq!(
                doc.name(dn).map(|q| q.as_lexical()),
                Some(sdoc.name(sn).to_string())
            );
            prop_assert_eq!(doc.string_value(dn), sdoc.string_value(sn));
            prop_assert_eq!(doc.depth(dn), sdoc.depth(sn));
            let dkids: Vec<NodeId> = doc.child_elements(dn).collect();
            let skids: Vec<xqp_storage::SNodeId> = sdoc.child_elements(sn).collect();
            prop_assert_eq!(dkids.len(), skids.len());
            // attribute values agree
            for &aid in doc.attributes(dn) {
                if let xqp_xml::NodeKind::Attribute { name, value } = &doc.node(aid).kind {
                    prop_assert_eq!(
                        sdoc.attribute(sn, &name.as_lexical()),
                        Some(value.as_str())
                    );
                }
            }
            for (d, s) in dkids.into_iter().zip(skids) {
                cmp(doc, d, sdoc, s)?;
            }
            Ok(())
        }
        if let (Some(d), Some(s)) = (doc.root_element(), sdoc.root()) {
            cmp(&doc, d, &sdoc, s)?;
        }
    }

    #[test]
    fn subtree_sizes_and_parents_consistent(tree in arb_tree()) {
        let doc = build(&tree);
        let sdoc = SuccinctDoc::from_document(&doc);
        for i in 0..sdoc.node_count() as u32 {
            let n = xqp_storage::SNodeId(i);
            // subtree is a contiguous rank range and every member's ancestor
            // chain passes through n.
            let size = sdoc.subtree_size(n);
            prop_assert!(i as usize + size <= sdoc.node_count());
            if size > 1 {
                let last = xqp_storage::SNodeId(i + size as u32 - 1);
                prop_assert!(sdoc.is_ancestor(n, last));
            }
            if let Some(p) = sdoc.parent(n) {
                prop_assert!(sdoc.is_ancestor(p, n));
                prop_assert_eq!(sdoc.depth(p) + 1, sdoc.depth(n));
            }
        }
    }

    #[test]
    fn splice_insert_equals_reencode(tree in arb_tree(), frag in arb_tree()) {
        let doc = build(&tree);
        let frag_doc = build(&frag);
        let sdoc = SuccinctDoc::from_document(&doc);
        let Some(root) = sdoc.root() else { return Ok(()) };
        let spliced = update::insert_subtree(&sdoc, root, &frag_doc);
        // Reference: append to the DOM and re-encode.
        let mut ref_doc = doc.clone();
        let target = ref_doc.root_element().expect("root");
        clone_into(&frag_doc, frag_doc.root_element().expect("frag root"), &mut ref_doc, target);
        let reencoded = SuccinctDoc::from_document(&ref_doc);
        prop_assert_eq!(
            serialize(&spliced.to_document()),
            serialize(&reencoded.to_document())
        );
        prop_assert_eq!(spliced.node_count(), reencoded.node_count());
    }

    #[test]
    fn splice_delete_equals_reencode(tree in arb_tree(), pick in any::<prop::sample::Index>()) {
        let doc = build(&tree);
        let sdoc = SuccinctDoc::from_document(&doc);
        if sdoc.node_count() < 2 {
            return Ok(());
        }
        let victim = xqp_storage::SNodeId(1 + pick.index(sdoc.node_count() - 1) as u32);
        let deleted = update::delete_subtree(&sdoc, victim);
        let round = SuccinctDoc::from_document(&deleted.to_document());
        prop_assert_eq!(
            serialize(&deleted.to_document()),
            serialize(&round.to_document())
        );
        prop_assert_eq!(deleted.node_count(), round.node_count());
        // Navigation still consistent after the splice.
        for i in 0..deleted.node_count() as u32 {
            let n = xqp_storage::SNodeId(i);
            if let Some(p) = deleted.parent(n) {
                prop_assert!(deleted.is_ancestor(p, n));
            }
        }
    }

    #[test]
    fn btree_matches_std_btreemap(ops in prop::collection::vec((any::<u16>(), any::<u8>()), 1..400)) {
        let mut tree: BPlusTree<u16, u8> = BPlusTree::new();
        let mut oracle: std::collections::BTreeMap<u16, Vec<u8>> = Default::default();
        for (k, v) in &ops {
            tree.insert(*k, *v);
            oracle.entry(*k).or_default().push(*v);
        }
        for (k, vs) in &oracle {
            prop_assert_eq!(tree.get(k), vs.as_slice());
        }
        let all: Vec<u16> = tree.iter().map(|(k, _)| *k).collect();
        let expect: Vec<u16> = oracle.keys().copied().collect();
        prop_assert_eq!(all, expect);
    }
}

/// Deep-copy `src`'s subtree at `from` into `dst` under `under`.
fn clone_into(src: &Document, from: NodeId, dst: &mut Document, under: NodeId) {
    use xqp_xml::NodeKind;
    match &src.node(from).kind {
        NodeKind::Element { name, attributes } => {
            let el = dst.append_element(under, name.as_lexical());
            for &aid in attributes {
                if let NodeKind::Attribute { name, value } = &src.node(aid).kind {
                    dst.set_attribute(el, name.as_lexical(), value.clone());
                }
            }
            let kids: Vec<NodeId> = src.children(from).collect();
            for k in kids {
                clone_into(src, k, dst, el);
            }
        }
        NodeKind::Text(t) => {
            dst.append_text(under, t.clone());
        }
        _ => {}
    }
}
