//! Snapshot tests for the physical-plan section of `explain`.
//!
//! Each case pins the lowered operator tree for a representative FLWOR:
//! the operator labels and their nesting, the access method chosen per τ
//! (with the alternative costs the model rejected), and the
//! `est … rows` vs `actual … rows` annotations before and after the query
//! actually runs. The estimates come from `CostModel::cost_plan`; the
//! actuals accumulate in the cached plan's shared `OpStats`, so running
//! the query and re-explaining must show non-zero row counts.

use xqp::{Database, EvalMode};

const STORE: &str = "<store><inventory>\
    <item sku=\"A1\"><name>bolt</name><price>10</price><qty>500</qty></item>\
    <item sku=\"B2\"><name>gear</name><price>120</price><qty>7</qty></item>\
    </inventory></store>";

fn db() -> Database {
    let d = Database::new();
    d.load_str("doc", STORE).unwrap();
    d
}

/// Explain `q`, assert every needle appears, and return the rendering.
fn explain_contains(db: &Database, q: &str, needles: &[&str]) -> String {
    let (plan, _) = db.explain("doc", q).unwrap();
    for needle in needles {
        assert!(plan.contains(needle), "explain for `{q}` misses `{needle}`:\n{plan}");
    }
    plan
}

/// The operator tree lines (label + annotation) of the physical section,
/// with leading indentation stripped.
fn physical_ops(plan: &str) -> Vec<&str> {
    plan.lines()
        .skip_while(|l| !l.starts_with("-- physical plan"))
        .skip(1)
        .take_while(|l| !l.starts_with("--"))
        .map(str::trim_start)
        .collect()
}

#[test]
fn filter_sort_pipeline_renders_every_operator() {
    let db = db();
    let q = "for $i in doc()/store/inventory/item where $i/price >= 10 \
             order by $i/name return <line>{$i/name}</line>";
    let plan = explain_contains(
        &db,
        q,
        &[
            "-- physical plan (streaming, batch=64)",
            "construct γ[line]",
            "sort [$i ⊳ dedup(π[child::name](input))]",
            "filter ($i ⊳ dedup(π[child::price](input)) >= 10)",
            "for-scan $i in",
            "τ=nok(cost ",
            "env-root",
        ],
    );
    // Operator nesting: construct pulls from sort, sort from filter, filter
    // from the for-scan, which scans over the singleton environment root.
    let ops = physical_ops(&plan);
    assert_eq!(ops.len(), 5, "expected 5 operators:\n{plan}");
    for (line, label) in ops.iter().zip(["construct", "sort", "filter", "for-scan", "env-root"]) {
        assert!(line.starts_with(label), "expected `{label}` in `{line}`");
    }
    // Before execution the plan has estimates but no actuals.
    for line in &ops {
        assert!(line.contains("(est "), "missing estimate in `{line}`");
        assert!(line.contains("actual 0 rows / 0 batches"), "stale actuals in `{line}`");
    }
}

#[test]
fn tpm_scan_shows_access_method_and_rejected_costs() {
    let db = db();
    // `let $p := $i/price` fuses into the tree-pattern bind, so the plan
    // carries a tpm-scan with two output vertices.
    let plan = explain_contains(
        &db,
        "for $i in doc()//item let $p := $i/price return <x>{$p}</x>",
        &[
            "tpm-scan [$i←v1, $p←v2] over pattern(2 vertices)",
            "access=nok",
            "costs[nok=",
            ", twig=",
            ", binary=",
        ],
    );
    let ops = physical_ops(&plan);
    assert_eq!(ops.len(), 3, "construct / tpm-scan / env-root:\n{plan}");
}

#[test]
fn cost_model_picks_twigstack_for_predicated_path_source() {
    let db = db();
    // The for-binding source keeps its predicate as a compiled τ; the cost
    // model prefers the holistic twig join for this selective 2-vertex
    // pattern, and the annotation records that choice.
    explain_contains(
        &db,
        "for $i in doc()//item[price > 5] return $i/name",
        &["for-scan $i in", "τ=twigstack(cost ", "est 0.6 rows"],
    );
}

#[test]
fn actual_rows_accumulate_after_execution() {
    let db = db();
    let q = "for $b in doc()//item where $b/qty < 100 return string($b/name)";
    explain_contains(&db, q, &["actual 0 rows / 0 batches"]);
    assert_eq!(db.query("doc", q).unwrap(), "gear");
    let plan = explain_contains(&db, q, &["-- physical plan (streaming, batch=64)"]);
    let ops = physical_ops(&plan);
    // The for-scan produced both items; the filter passed only the one
    // low-stock row through to the construct.
    let for_scan = ops.iter().find(|l| l.starts_with("for-scan")).unwrap();
    assert!(for_scan.contains("actual 2 rows / 1 batches"), "{for_scan}");
    let filter = ops.iter().find(|l| l.starts_with("filter")).unwrap();
    assert!(filter.contains("actual 1 rows / 1 batches"), "{filter}");
    let construct = ops.iter().find(|l| l.starts_with("construct")).unwrap();
    assert!(construct.contains("actual 1 rows / 1 batches"), "{construct}");
}

#[test]
fn optimizer_section_traces_every_enabled_rule() {
    let db = db();
    let q = "for $i in doc()//item let $p := $i/price return $p";
    let plan = explain_contains(
        &db,
        q,
        &[
            "-- optimizer:",
            "fired (budget 32)",
            "flwor-to-tpm: fired",
            "const-fold: no match",
            "compile-paths: no match", // fusion already swallowed every path
        ],
    );
    // When paths survive fusion (the filter and sort keys here), the
    // lowering pass is the one that rewrites them — and says so.
    explain_contains(
        &db,
        "for $i in doc()/store/inventory/item where $i/price >= 10 \
         order by $i/name return $i/name",
        &["compile-paths: fired"],
    );
    // A fired pass carries its plan diff, indented beneath the rule line
    // with -/+ (or · for a pure reorder) markers.
    let lines: Vec<&str> = plan.lines().collect();
    let idx = lines.iter().position(|l| l.trim_start().starts_with("flwor-to-tpm: fired")).unwrap();
    let marker = lines[idx + 1].trim_start().chars().next().unwrap();
    assert!(matches!(marker, '-' | '+' | '·'), "no diff under the firing:\n{plan}");
}

#[test]
fn optimizer_section_skips_disabled_rules_silently() {
    let mut d = db();
    d.set_rules(xqp::RuleSet { flwor_to_tpm: false, join_isolation: false, ..xqp::RuleSet::all() });
    let (plan, _) = d.explain("doc", "for $i in doc()//item return $i/name").unwrap();
    assert!(plan.contains("-- optimizer:"), "{plan}");
    assert!(!plan.contains("flwor-to-tpm"), "disabled rule traced:\n{plan}");
    assert!(!plan.contains("join-graph-isolation"), "disabled rule traced:\n{plan}");
}

#[test]
fn hash_join_operator_renders_edges_and_cost_order() {
    let db = db();
    // A self-join on @sku: two independent doc-rooted sides + one equi-edge.
    let q = "for $a in doc()//item for $b in doc()//item \
             where $a/@sku = $b/@sku return $a/name";
    let plan = explain_contains(
        &db,
        q,
        &[
            "join-graph [$a/@sku = $b/@sku] (2 sides, 1 edges)",
            "hash-join [$a ⋈ $b] on [$a/@sku = $b/@sku] cost-order=[",
            "join-graph-isolation: fired",
        ],
    );
    let ops = physical_ops(&plan);
    assert!(ops.iter().any(|l| l.starts_with("hash-join")), "{plan}");
    // Each sku is unique, so the join pairs every item with itself.
    assert_eq!(db.query("doc", q).unwrap(), "<name>bolt</name><name>gear</name>");
    let plan = explain_contains(&db, q, &["hash-join"]);
    let hj = physical_ops(&plan).into_iter().find(|l| l.starts_with("hash-join")).unwrap();
    assert!(hj.contains("actual 2 rows"), "{hj}");
}

#[test]
fn materializing_mode_is_labelled_in_the_header() {
    let mut d = db();
    d.set_eval_mode(EvalMode::Materializing);
    explain_contains(
        &d,
        "for $i in doc()//item return $i/name",
        &["-- physical plan (materializing, batch=64)"],
    );
}
