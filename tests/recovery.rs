//! Crash-recovery suite: a WAL torn at *every* byte offset of its last
//! record must recover to the last complete record, and a corrupted CRC
//! must drop the tail — never misapply it.

use std::fs;
use std::path::PathBuf;
use xqp::Database;

const STORE: &str = "<store><inventory>\
    <item sku=\"A1\"><name>bolt</name></item>\
    <item sku=\"A2\"><name>nut</name></item>\
    </inventory><orders/></store>";

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xqp-recovery-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Build a durable single-document store and apply two updates, returning
/// `(dir, wal_path, len_after_first, full_wal_bytes, state_after_first,
/// state_after_second)`.
fn two_record_store(name: &str) -> (PathBuf, PathBuf, u64, Vec<u8>, String, String) {
    let dir = tmp(name);
    let mut db = Database::new();
    db.load_str("store", STORE).unwrap();
    db.persist_to(&dir).unwrap();
    let wal = dir.join("d000").join("wal.xqp");

    db.insert_into("store", "/store/orders", "<order id=\"o1\" sku=\"A1\"/>").unwrap();
    let state_a = db.serialize("store").unwrap();
    let len_a = fs::metadata(&wal).unwrap().len();

    db.delete_matching("store", "//item[@sku = \"A2\"]").unwrap();
    let state_b = db.serialize("store").unwrap();
    drop(db);

    let full = fs::read(&wal).unwrap();
    assert!(full.len() as u64 > len_a, "second record must extend the log");
    (dir, wal, len_a, full, state_a, state_b)
}

#[test]
fn torn_tail_recovers_to_last_complete_record_at_every_offset() {
    let (dir, wal, len_a, full, state_a, state_b) = two_record_store("torn");

    // Intact log sanity check first.
    let back = Database::open(&dir).unwrap();
    assert_eq!(back.serialize("store").unwrap(), state_b);
    drop(back);

    // Tear the second record at every byte offset: each open must land
    // exactly on the state after the first record.
    for cut in len_a as usize..full.len() {
        fs::write(&wal, &full[..cut]).unwrap();
        let back =
            Database::open(&dir).unwrap_or_else(|e| panic!("cut at {cut}: open failed: {e}"));
        let expect = if cut == full.len() { &state_b } else { &state_a };
        assert_eq!(
            &back.serialize("store").unwrap(),
            expect,
            "cut at {cut} recovered to the wrong state"
        );
        assert_eq!(
            back.persist_stats("store").unwrap().records_replayed,
            if cut == full.len() { 2 } else { 1 },
            "cut at {cut}"
        );
        // Recovery must have truncated the torn bytes so the log is
        // append-able again.
        assert_eq!(fs::metadata(&wal).unwrap().len(), len_a, "cut at {cut}");
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_header_recovers_with_an_empty_log() {
    let (dir, wal, _, full, _, _) = two_record_store("torn-header");
    // Tear inside the 20-byte header: nothing replayable survives, and the
    // snapshot state (no updates) must come back with a fresh log.
    for cut in [0usize, 1, 7, 19] {
        fs::write(&wal, &full[..cut]).unwrap();
        let back =
            Database::open(&dir).unwrap_or_else(|e| panic!("cut at {cut}: open failed: {e}"));
        assert_eq!(back.persist_stats("store").unwrap().records_replayed, 0);
        assert_eq!(back.query("store", "count(//order)").unwrap(), "0");
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_crc_drops_the_tail_instead_of_misapplying_it() {
    let (dir, wal, len_a, full, state_a, _) = two_record_store("crc");

    // Flip one byte inside the second record's body: the length framing is
    // intact, so only the CRC can catch it.
    let mut bad = full.clone();
    let mid = len_a as usize + (full.len() - len_a as usize) / 2;
    bad[mid] ^= 0xFF;
    fs::write(&wal, &bad).unwrap();

    let back = Database::open(&dir).unwrap();
    assert_eq!(back.serialize("store").unwrap(), state_a);
    assert_eq!(back.persist_stats("store").unwrap().records_replayed, 1);
    // The corrupt record is gone from disk, not lying in wait.
    assert_eq!(fs::metadata(&wal).unwrap().len(), len_a);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_first_record_drops_everything_after_it() {
    let (dir, wal, _, full, _, _) = two_record_store("crc-first");
    let mut bad = full.clone();
    bad[24] ^= 0xFF; // inside record 1's body (header is bytes 0..20)
    fs::write(&wal, &bad).unwrap();

    let back = Database::open(&dir).unwrap();
    // Both records dropped: recovery cannot trust anything after the first
    // corrupt record.
    assert_eq!(back.persist_stats("store").unwrap().records_replayed, 0);
    assert_eq!(back.query("store", "count(//order)").unwrap(), "0");
    assert_eq!(back.query("store", "count(//item)").unwrap(), "2");
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recovered_store_accepts_new_updates_durably() {
    let (dir, wal, len_a, full, _, _) = two_record_store("continue");
    // Tear the last record, recover, then keep writing.
    fs::write(&wal, &full[..full.len() - 3]).unwrap();
    let back = Database::open(&dir).unwrap();
    assert_eq!(fs::metadata(&wal).unwrap().len(), len_a);
    back.insert_into("store", "/store/orders", "<order id=\"o2\" sku=\"A2\"/>").unwrap();
    let live = back.serialize("store").unwrap();
    drop(back);

    let again = Database::open(&dir).unwrap();
    assert_eq!(again.serialize("store").unwrap(), live);
    assert_eq!(again.persist_stats("store").unwrap().records_replayed, 2);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn stale_wal_from_a_compaction_crash_is_never_double_applied() {
    let dir = tmp("stale-compaction");
    let mut db = Database::new();
    db.load_str("store", STORE).unwrap();
    db.persist_to(&dir).unwrap();
    let wal = dir.join("d000").join("wal.xqp");

    db.insert_into("store", "/store/orders", "<order id=\"o1\" sku=\"A1\"/>").unwrap();
    let stale = fs::read(&wal).unwrap();
    db.compact("store").unwrap();
    let live = db.serialize("store").unwrap();
    drop(db);
    // Crash window: the folded snapshot landed but the WAL reset did not.
    fs::write(&wal, &stale).unwrap();

    let back = Database::open(&dir).unwrap();
    assert_eq!(back.serialize("store").unwrap(), live);
    assert_eq!(back.persist_stats("store").unwrap().records_replayed, 0);
    assert_eq!(back.query("store", "count(//order)").unwrap(), "1");
    fs::remove_dir_all(&dir).unwrap();
}
