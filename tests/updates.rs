//! Update behaviour (E7's correctness side): long sequences of local
//! splices stay equivalent to re-encoding, and queries/indexes stay
//! consistent across updates.

use xqp::Database;
use xqp_gen::gen_bib;
use xqp_storage::{update, SuccinctDoc};
use xqp_xml::{parse_document, serialize};

#[test]
fn many_inserts_then_deletes_roundtrip() {
    let mut sdoc = SuccinctDoc::parse("<log/>").unwrap();
    // 50 appended entries, each a local splice.
    for i in 0..50 {
        let frag =
            parse_document(&format!("<entry seq=\"{i}\"><msg>event {i}</msg></entry>")).unwrap();
        let root = sdoc.root().unwrap();
        sdoc = update::insert_subtree(&sdoc, root, &frag).unwrap();
    }
    assert_eq!(sdoc.child_elements(sdoc.root().unwrap()).count(), 50);
    // Equivalent to the re-encoded version.
    let rebuilt = update::rebuild_full(&sdoc.to_document());
    assert_eq!(serialize(&sdoc.to_document()), serialize(&rebuilt.to_document()));
    assert_eq!(sdoc.node_count(), rebuilt.node_count());
    // Delete every other entry (descending keeps ranks valid).
    let victims: Vec<_> = sdoc
        .child_elements(sdoc.root().unwrap())
        .enumerate()
        .filter_map(|(i, n)| (i % 2 == 1).then_some(n))
        .collect();
    for v in victims.into_iter().rev() {
        sdoc = update::delete_subtree(&sdoc, v).unwrap();
    }
    assert_eq!(sdoc.child_elements(sdoc.root().unwrap()).count(), 25);
    // Sequence numbers that remain are the even ones.
    let root = sdoc.root().unwrap();
    let seqs: Vec<String> =
        sdoc.child_elements(root).map(|e| sdoc.attribute(e, "seq").unwrap().to_string()).collect();
    assert!(seqs.iter().all(|s| s.parse::<u32>().unwrap() % 2 == 0));
}

#[test]
fn queries_see_updates_immediately() {
    let db = Database::new();
    db.load_document("bib", &gen_bib(10, 1)).unwrap();
    let before: usize = db.query("bib", "count(/bib/book)").unwrap().parse().unwrap();
    db.insert_into("bib", "/bib", "<book year=\"2024\"><title>New</title><price>1</price></book>")
        .unwrap();
    let after: usize = db.query("bib", "count(/bib/book)").unwrap().parse().unwrap();
    assert_eq!(after, before + 1);
    assert_eq!(db.query("bib", "/bib/book[@year = 2024]/title").unwrap(), "<title>New</title>");
    db.delete_matching("bib", "/bib/book[@year = 2024]").unwrap();
    let end: usize = db.query("bib", "count(/bib/book)").unwrap().parse().unwrap();
    assert_eq!(end, before);
}

#[test]
fn index_rebuilt_after_updates() {
    let db = Database::new();
    db.load_document("bib", &gen_bib(10, 2)).unwrap();
    db.create_index("bib").unwrap();
    db.insert_into(
        "bib",
        "/bib",
        "<book year=\"2030\"><title>Future</title><price>777.00</price></book>",
    )
    .unwrap();
    // Index-backed value predicate finds the new book.
    assert_eq!(db.query("bib", "/bib/book[price = 777]/title").unwrap(), "<title>Future</title>");
    db.delete_matching("bib", "/bib/book[price = 777]").unwrap();
    assert_eq!(db.query("bib", "/bib/book[price = 777]/title").unwrap(), "");
}

#[test]
fn interleaved_updates_preserve_navigation_invariants() {
    let mut sdoc = SuccinctDoc::parse("<r><a><b>1</b></a><c/></r>").unwrap();
    for round in 0..10 {
        let frag = parse_document(&format!("<x n=\"{round}\"><y/></x>")).unwrap();
        let root = sdoc.root().unwrap();
        let target = sdoc.child_elements(root).next().unwrap();
        sdoc = update::insert_subtree(&sdoc, target, &frag).unwrap();
        // Every parent/child/depth relation must stay coherent.
        for i in 0..sdoc.node_count() as u32 {
            let n = xqp_storage::SNodeId(i);
            if let Some(p) = sdoc.parent(n) {
                assert!(sdoc.is_ancestor(p, n), "round {round}, node {n}");
                assert_eq!(sdoc.depth(p) + 1, sdoc.depth(n));
            }
            let size = sdoc.subtree_size(n);
            assert!(i as usize + size <= sdoc.node_count());
        }
    }
    // 10 x-children appended under <a>.
    let root = sdoc.root().unwrap();
    let a = sdoc.child_elements(root).next().unwrap();
    assert_eq!(sdoc.child_elements(a).filter(|&c| sdoc.name(c) == "x").count(), 10);
}
