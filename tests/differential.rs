//! Differential regression corpus: every case here is checked across the
//! full `Strategy × EvalMode` matrix *and* the durable-store round trip via
//! [`xqp::fuzz::assert_all_engines_agree`] — byte-identical serialization,
//! agreeing error classes, no panics anywhere.
//!
//! Two corpora live here:
//!
//! * **hand-written repros** — edge cases worth pinning independently of
//!   the generator (empty inputs, positional predicates, mixed-type order
//!   keys, arithmetic extremes);
//! * **regression seeds** — seeds that once made `xqp fuzz` fail. Each is
//!   named after the bug it caught and replays the *generated* case through
//!   [`xqp::fuzz::run_seed`], so the generator grammar and the fix stay
//!   coupled. When the fuzzer finds a new divergence, minimize it, fix it,
//!   and append the seed here.
//!
//! A bounded smoke run keeps the whole loop (generate → matrix → shrink)
//! exercised in every `cargo test`.

use xqp::fuzz::{
    assert_all_engines_agree, assert_all_strategies_select, fuzz, run_seed, FuzzConfig,
};

// ---------------------------------------------------------------------------
// Hand-written repros
// ---------------------------------------------------------------------------

const TREE: &str = "<r><a k=\"1\"><b>x</b><b>y</b></a><a k=\"2\"><b>z</b></a><a k=\"1\"/></r>";

/// Empty binding sequences must flow through every clause without erroring:
/// a for-scan over no nodes, `order by` on an empty batch, and predicates
/// over variables bound to empty sequences all produce the empty result.
#[test]
fn empty_inputs_agree() {
    for q in [
        "for $v0 in doc()/r/zzz return $v0",
        "for $v0 in doc()//zzz order by $v0/k return $v0",
        "for $v0 in doc()//zzz order by $v0/k descending return <out>{$v0}</out>",
        "for $v0 in doc()/r/a where $v0/zzz = 1 return $v0",
        "for $v0 in doc()/r/a let $v1 := $v0/zzz where $v1 = 1 return $v0",
        "for $v0 in doc()/r/a let $v1 := $v0/zzz return count($v1)",
        "for $v0 in doc()/r/a[zzz] return $v0",
        "for $v0 in doc()/r/zzz for $v1 in doc()/r/a return $v1",
        "for $v0 in doc()/r/a for $v1 in $v0/zzz return $v1",
        "let $v0 := doc()/r/zzz return <out n=\"{count($v0)}\">{$v0}</out>",
        "let $v0 := doc()/r/zzz order by $v0 return 1",
        "sum(doc()//zzz)",
        "for $v0 in doc()//zzz where not($v0 = 1) return $v0",
    ] {
        assert_all_engines_agree(TREE, q);
    }
}

/// Positional predicates, `last()`, and predicates after `//` steps.
#[test]
fn positional_predicates_agree() {
    for q in [
        "doc()//b[1]",
        "doc()//b[2]",
        "doc()//b[99]",
        "doc()//b[last()]",
        "doc()/r/a[last()]/b[last()]",
        "doc()/r/a[2]/b[1]",
        "doc()//a[b][1]",
        "for $v0 in doc()//a[1]/b return $v0",
        "for $v0 in doc()/r/a return count($v0/b[last()])",
    ] {
        assert_all_engines_agree(TREE, q);
    }
}

/// `order by` with duplicate keys (stability), descending ties, multiple
/// keys, and keys of heterogeneous types across bindings.
#[test]
fn order_by_edges_agree() {
    for q in [
        "for $v0 in doc()/r/a order by $v0/@k return <o>{$v0/b}</o>",
        "for $v0 in doc()/r/a order by $v0/@k descending return <o>{$v0/b}</o>",
        "for $v0 in doc()/r/a order by $v0/@k, count($v0/b) descending return count($v0/b)",
        "for $v0 in doc()//b order by $v0 descending return $v0",
        "for $v0 in doc()/r/a order by count($v0/zzz) return $v0/@k",
        "for $v0 in doc()/r/a order by $v0/zzz return $v0/@k",
        "for $v0 in doc()/r/a order by number($v0/@k) return $v0/@k",
        "for $v0 in doc()/r/a order by number($v0/b) return count($v0/b)",
    ] {
        assert_all_engines_agree(TREE, q);
    }
}

/// Arithmetic extremes: division by zero, `mod` by zero, i64 overflow —
/// must be the same error (or the same value) everywhere, never a panic.
#[test]
fn arithmetic_edges_agree() {
    for q in [
        "1 div 0",
        "1 mod 0",
        "0 div 7",
        "9223372036854775807 + 1",
        "9223372036854775807 * 2",
        "0 - 9223372036854775807 - 1",
        "for $v0 in doc()/r/a return $v0/@k div count($v0/zzz)",
        "for $v0 in doc()/r/a where $v0/@k mod 2 = 1 return $v0/@k",
    ] {
        assert_all_engines_agree(TREE, q);
    }
}

/// Mixed-type general comparisons: numeric strings against numbers,
/// non-numeric strings against numbers, boolean mismatches.
#[test]
fn mixed_type_comparisons_agree() {
    for q in [
        "for $v0 in doc()//b where $v0 = \"x\" return $v0",
        "for $v0 in doc()/r/a where $v0/@k = 1 return count($v0/b)",
        "for $v0 in doc()/r/a where $v0/@k < \"2\" return $v0/@k",
        "for $v0 in doc()//b where $v0 < 5 return $v0",
        "for $v0 in doc()/r/a where $v0/b = $v0/@k return $v0",
        "count(doc()//b) = \"3\"",
    ] {
        assert_all_engines_agree(TREE, q);
    }
}

/// Constructors around empty content, nested FLWOR, and `if` arms.
#[test]
fn constructor_edges_agree() {
    for q in [
        "<out>{doc()//zzz}</out>",
        "<out a=\"{count(doc()//zzz)}\"/>",
        "for $v0 in doc()/r/a return <o k=\"{$v0/@k}\">{for $v1 in $v0/b return <i>{$v1}</i>}</o>",
        "for $v0 in doc()/r/a return if ($v0/b) then <some/> else <none/>",
        "if (doc()//zzz) then 1 else 2",
    ] {
        assert_all_engines_agree(TREE, q);
    }
}

/// Bare-path (`select`) probes: the select plane dispatches to the
/// per-strategy matchers directly, so it has its own differential corpus.
/// The relative / axis-prefixed forms pin the TPM-rooting bug: `compile_path`
/// grafts every path at the document root, so relative paths (which have no
/// context at the select plane and must select nothing) returned *all*
/// matching descendants under NoK/TwigStack/BinaryJoin while Naive returned
/// the empty sequence.
#[test]
fn select_plane_paths_agree() {
    for p in [
        "/r/a/b",
        "//b",
        "//a[@k]/b",
        "//a[@k = 1]//b",
        "//b[1]",
        "//b[last()]",
        "//*",
        "/r//@k",
        // Relative and axis-prefixed forms (no context ⇒ empty everywhere).
        "b",
        "a/b",
        "descendant::b",
        "descendant-or-self::a",
        "child::a",
        "descendant::*",
    ] {
        assert_all_strategies_select(TREE, p);
    }
}

/// `order by` keys must be sorted with a *total* order. The old
/// `Atomic::order_key_cmp` fell back to the general comparison, which
/// promotes numeric strings against numbers (`7 < "30"`, `"5" <= 7`) while
/// comparing string pairs lexicographically (`"30" < "5"`) — a cycle. On
/// sequences past the standard library's detection threshold (and in an
/// unlucky element order — this exact one), driftsort panics with
/// "user-provided comparison function does not correctly implement a total
/// order" in both evaluation modes.
#[test]
fn order_by_mixed_int_and_numeric_strings_is_total() {
    // 60 <a> elements: k="1" sorts by the integer 7, k="0" by its <t> text
    // ("30" or "5"), interleaved in the order that tripped the detector.
    let doc = concat!(
        "<r><a k=\"0\"><t>30</t></a><a k=\"1\"/><a k=\"0\"><t>30</t></a><a k=\"0\"><t>5</t></a>",
        "<a k=\"1\"/><a k=\"1\"/><a k=\"0\"><t>5</t></a><a k=\"1\"/><a k=\"0\"><t>30</t></a>",
        "<a k=\"0\"><t>5</t></a><a k=\"1\"/><a k=\"0\"><t>5</t></a><a k=\"1\"/><a k=\"1\"/>",
        "<a k=\"1\"/><a k=\"0\"><t>30</t></a><a k=\"0\"><t>30</t></a><a k=\"1\"/><a k=\"1\"/>",
        "<a k=\"1\"/><a k=\"0\"><t>5</t></a><a k=\"0\"><t>30</t></a><a k=\"1\"/>",
        "<a k=\"0\"><t>5</t></a><a k=\"1\"/><a k=\"1\"/><a k=\"0\"><t>5</t></a>",
        "<a k=\"0\"><t>5</t></a><a k=\"0\"><t>5</t></a><a k=\"1\"/><a k=\"0\"><t>5</t></a>",
        "<a k=\"0\"><t>5</t></a><a k=\"0\"><t>30</t></a><a k=\"1\"/><a k=\"1\"/><a k=\"1\"/>",
        "<a k=\"0\"><t>5</t></a><a k=\"1\"/><a k=\"0\"><t>30</t></a><a k=\"0\"><t>30</t></a>",
        "<a k=\"1\"/><a k=\"0\"><t>5</t></a><a k=\"1\"/><a k=\"0\"><t>5</t></a>",
        "<a k=\"0\"><t>30</t></a><a k=\"0\"><t>5</t></a><a k=\"0\"><t>5</t></a><a k=\"1\"/>",
        "<a k=\"1\"/><a k=\"0\"><t>5</t></a><a k=\"0\"><t>5</t></a><a k=\"0\"><t>5</t></a>",
        "<a k=\"1\"/><a k=\"0\"><t>30</t></a><a k=\"1\"/><a k=\"0\"><t>5</t></a>",
        "<a k=\"0\"><t>5</t></a><a k=\"1\"/><a k=\"0\"><t>5</t></a><a k=\"1\"/></r>"
    );
    assert_all_engines_agree(
        doc,
        "for $v0 in doc()/r/a order by (if ($v0/@k = 1) then 7 else $v0/t) return <o>{$v0/@k}</o>",
    );
}

/// The value-index probe must reproduce the scan's comparison semantics.
/// Stored values atomize as untyped strings, so a *string* literal compares
/// lexicographically against every string value — but the old probe saw that
/// the literal parsed as a number and translated `c < "5"` into a
/// numeric-tree range scan, silently dropping values that don't parse
/// (`""`, `"abc"`, `"4x"`), all of which sort below `"5"` lexicographically.
/// Only the indexed engine leg diverged, so only the durable-store round
/// trip with indexes built caught it.
#[test]
fn string_literal_inequalities_agree_under_value_index() {
    let doc = "<r><e><c n=\"0\"/></e><e><c>abc</c></e><e><c>4x</c></e>\
               <e><c>12</c></e><e><c>7</c></e><e><c>5</c></e></r>";
    for q in [
        "for $v0 in doc()//e[c < \"5\"] return <o>{$v0/c}</o>",
        "for $v0 in doc()//e[c <= \"5\"] return <o>{$v0/c}</o>",
        "for $v0 in doc()//e[c > \"5\"] return <o>{$v0/c}</o>",
        "for $v0 in doc()//e[c >= \"12\"] return <o>{$v0/c}</o>",
        "for $v0 in doc()//e[c = \"\"] return <o>found</o>",
        // Declared-number literals keep numeric-range semantics: values
        // that don't parse are incomparable and must stay excluded.
        "for $v0 in doc()//e[c < 5] return <o>{$v0/c}</o>",
        "for $v0 in doc()//e[c >= 7] return <o>{$v0/c}</o>",
    ] {
        assert_all_engines_agree(doc, q);
    }
}

/// Function-semantics repros pinning this round's aggregate bugfixes, all
/// checked across the full matrix (typed errors must agree as a class):
///
/// * `sum()` accumulates in checked i64 and promotes to Double only on
///   overflow — `sum((9007199254740993, 1))` stays exact at `2^53 + 2`,
///   which a double-from-the-start accumulator rounds to `2^53`;
/// * `string()`/`number()` over a multi-item sequence is a *type error*,
///   not a silent first-item pick;
/// * `min()`/`max()` over mixed numeric/string input is a type error, not
///   a NaN-poisoned comparison.
#[test]
fn aggregate_semantics_agree() {
    for q in [
        // Exact i64 accumulation past the double mantissa.
        "sum((9007199254740993, 1))",
        "sum((9223372036854775807, 1))",
        "sum((9223372036854775807, 0 - 9223372036854775807))",
        "sum(doc()//b)",
        "sum(doc()//zzz)",
        // Cardinality checks: 0 and 1 items fine, 2+ a typed error.
        "string(doc()//b)",
        "number(doc()//b)",
        "string(doc()//zzz)",
        "for $v0 in doc()/r/a return string($v0/b)",
        // Mixed-type aggregates: numbers vs. words.
        "min((1, \"a\"))",
        "max((\"a\", 1))",
        "min(doc()//b)",
        "max((1, 2, 3))",
        "min((\"a\", \"b\"))",
    ] {
        assert_all_engines_agree(TREE, q);
    }
}

/// Positional context and quantifiers: `position()`/`last()` must see the
/// innermost `for` in both evaluation modes, survive `where`/`order by`
/// reshuffling, and error (as a class) outside any `for`.
#[test]
fn focus_and_quantifiers_agree() {
    for q in [
        "for $v0 in doc()//b return position()",
        "for $v0 in doc()//b return last()",
        "for $v0 in doc()//b where position() > 1 return $v0",
        "for $v0 in doc()//b where position() = last() return $v0",
        "for $v0 in doc()/r/a for $v1 in $v0/b return <o p=\"{position()}\" n=\"{last()}\"/>",
        "for $v0 in doc()//b order by $v0 descending return position()",
        "position()",
        "last()",
        "let $v0 := doc()//b return position()",
        "some $v0 in doc()//b satisfies $v0 = \"x\"",
        "every $v0 in doc()//b satisfies $v0 = \"x\"",
        "some $v0 in doc()//zzz satisfies $v0 = 1",
        "every $v0 in doc()//zzz satisfies $v0 = 1",
        "for $v0 in doc()/r/a where some $v1 in $v0/b satisfies $v1 = \"z\" return $v0/@k",
        "some $v0 in doc()/r/a, $v1 in $v0/b satisfies $v1 = \"y\"",
    ] {
        assert_all_engines_agree(TREE, q);
    }
}

// ---------------------------------------------------------------------------
// Fuzz-found regression seeds
// ---------------------------------------------------------------------------

/// Replay a fuzz case seed and fail loudly if any engine disagrees again.
fn assert_seed_clean(case_seed: u64) {
    let cfg = FuzzConfig::default();
    if let Some(failure) = xqp::fuzz::with_quiet_panics(|| run_seed(case_seed, &cfg)) {
        panic!("regression seed {case_seed} failed again:\n{failure}");
    }
}

/// Seeds harvested by running `xqp fuzz` against the TPM-rooting bug (the
/// relative-path gate in `Executor::eval_path_str` removed): each generated
/// case's select probe shrank to a bare axis step — `descendant::e`,
/// `descendant::category`, `descendant-or-self::d`, `descendant-or-self::a`,
/// `descendant::*` — that selected every matching node under the pattern
/// strategies but nothing under the naive reference. All five fail on the
/// unfixed engine and pass on the fixed one.
#[test]
fn seed_relative_path_tpm_rooting() {
    for seed in [
        15040563541741120241,
        8097875853865443356,
        11198091096121768623,
        1261203858117736319,
        17942927344426079605,
    ] {
        assert_seed_clean(seed);
    }
}

/// Found by `xqp fuzz --seed 99 --iters 3000`, shrunk to
/// `<r><e><c n="0"/></e></r>` with `for $v0 in doc()//e[c < "5"] return 0`:
/// the reference returns `0` (`"" < "5"` lexicographically) but the
/// `persist:indexed` leg returned nothing — the σv index probe turned the
/// string-literal `<` into a numeric-only range scan
/// (`string_literal_inequalities_agree_under_value_index` is the hand repro).
#[test]
fn seed_index_probe_string_range() {
    assert_seed_clean(13317283848084137822);
}

/// Replay a *join-shaped* fuzz case seed: the generated case runs through
/// the engine matrix, the governor budget leg, the persistence round trip,
/// **and** the optimizer-rule ablation leg (all rules vs. none vs. each
/// join rewrite knocked out, under all 12 configurations).
fn assert_join_seed_clean(case_seed: u64) {
    let cfg = FuzzConfig { joins: true, ..FuzzConfig::default() };
    if let Some(failure) = xqp::fuzz::with_quiet_panics(|| run_seed(case_seed, &cfg)) {
        panic!("join regression seed {case_seed} failed again:\n{failure}");
    }
}

/// Join-corpus pins covering the shapes the join-isolation rewrite and
/// hash join must get right — harvested from `xqp fuzz --joins` runs
/// (clean at 1300+ iterations when pinned). Each seed names its shape:
///
/// * `2`  — the canonical 2-side `@k = @k` equi-join with order-by;
/// * `3`  — 3 independent sides chained by two equi-edges;
/// * `4`  — a *dependent* middle binding (isolation must not fire across
///   it) mixed with a non-equi edge;
/// * `5`  — pure non-equi comparison (nested-loop-only shape);
/// * `13` — 3 sides, equi + non-equi edges, residual conjunct, descending
///   order-by;
/// * `16` — join feeding a nested FLWOR return (6 `for`s total);
/// * `21` — chained dependent bindings `$v0 → $v1 → $v2`;
/// * `38` — self-join on `@k` with a residual range conjunct.
#[test]
fn seed_join_shapes_agree_across_rule_ablations() {
    for seed in [2, 3, 4, 5, 13, 16, 21, 38] {
        assert_join_seed_clean(seed);
    }
}

/// Replay a *function-surface* fuzz case seed: engine matrix, budget leg,
/// persistence round trip, and the rule-ablation leg (which includes the
/// `no-agg-orderby-prune` knockout).
fn assert_fn_seed_clean(case_seed: u64) {
    let cfg = FuzzConfig { functions: true, ..FuzzConfig::default() };
    if let Some(failure) = xqp::fuzz::with_quiet_panics(|| run_seed(case_seed, &cfg)) {
        panic!("function regression seed {case_seed} failed again:\n{failure}");
    }
}

/// Function-corpus pins covering the shapes the registry, the fold
/// operators and the focus threading must get right — each seed names the
/// bug class it would re-catch on an unfixed engine (the pre-registry
/// evaluator picked the first item in `string()`, NaN-poisoned mixed
/// `min`/`max`, and accumulated `sum` in a double):
///
/// * `2`, `58` — `string()` over a multi-item nested FLWOR (singleton
///   cardinality check), under a `position()` window;
/// * `24`, `38` — `max()` over word-and-number text (mixed-type check);
/// * `6`  — `min()` over a nested-FLWOR fold with `position() = 3`;
/// * `39` — `sum()` over untyped text (checked-i64 accumulator path);
/// * `11`, `41` — `position()`/`last()` in constructor output;
/// * `16` — `position() < last()` window with a descending sort and a
///   quantifier return;
/// * `8`  — quantifier `where`, sort under `number()` keys;
/// * `52` — `max()` over element nodes (atomization first).
#[test]
fn seed_function_shapes_agree_across_rule_ablations() {
    for seed in [2, 6, 8, 11, 16, 24, 38, 39, 41, 52, 58] {
        assert_fn_seed_clean(seed);
    }
}

// ---------------------------------------------------------------------------
// Bounded smoke run
// ---------------------------------------------------------------------------

/// A short deterministic fuzz run inside the test suite: keeps the whole
/// generate → matrix → persistence → shrink loop compiling and honest.
#[test]
fn fuzz_smoke_run_is_clean() {
    let cfg = FuzzConfig { seed: 0xD1FF, iters: 40, ..FuzzConfig::default() };
    let summary = fuzz(&cfg);
    assert_eq!(summary.iters_run, 40);
    assert!(
        summary.ok(),
        "fuzz smoke run found {} failure(s):\n{}",
        summary.failures.len(),
        summary.failures.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
    );
}

/// The join-mode counterpart: a short deterministic `--joins` run keeps
/// the join generator and the rule-ablation leg wired into every
/// `cargo test`.
#[test]
fn join_fuzz_smoke_run_is_clean() {
    let cfg = FuzzConfig { seed: 0x10B5, iters: 25, joins: true, ..FuzzConfig::default() };
    let summary = fuzz(&cfg);
    assert_eq!(summary.iters_run, 25);
    assert!(
        summary.ok(),
        "join fuzz smoke run found {} failure(s):\n{}",
        summary.failures.len(),
        summary.failures.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
    );
}

/// The function-mode counterpart: a short deterministic `--functions` run
/// keeps the function-surface generator and its ablation leg wired into
/// every `cargo test`.
#[test]
fn function_fuzz_smoke_run_is_clean() {
    let cfg = FuzzConfig { seed: 0xF12C, iters: 25, functions: true, ..FuzzConfig::default() };
    let summary = fuzz(&cfg);
    assert_eq!(summary.iters_run, 25);
    assert!(
        summary.ok(),
        "function fuzz smoke run found {} failure(s):\n{}",
        summary.failures.len(),
        summary.failures.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
    );
}
