//! E3 — Table 1 of the paper, operator by operator: every algebra operator
//! exercised through public APIs with checked semantics.

use xqp_algebra::{Item, Nested};
use xqp_exec::{naive, nok, structural, ExecContext, NodeRef};
use xqp_storage::{SNodeId, SuccinctDoc};
use xqp_xpath::{parse_path, CmpOp, PRel, PatternGraph, ValueConstraint};

const DOC: &str = "<bib>\
    <book year=\"1994\"><title>TCP</title><author>Stevens</author><price>65</price></book>\
    <book year=\"2000\"><title>Data</title><author>Abiteboul</author><author>Buneman</author><price>39</price></book>\
    </bib>";

fn sdoc() -> SuccinctDoc {
    SuccinctDoc::parse(DOC).unwrap()
}

/// σs — selection based on tag names: List → List.
#[test]
fn sigma_s_selects_by_tag() {
    let d = sdoc();
    let ctx = ExecContext::new(&d);
    // The physical σs is the per-tag stream extraction.
    let g = PatternGraph::from_path(&parse_path("//author").unwrap()).unwrap();
    let author_vertex = g.outputs()[0];
    let stream = structural::candidates(&ctx, &g, author_vertex);
    assert_eq!(stream.len(), 3);
    assert!(stream.iter().all(|iv| d.name(iv.node) == "author"));
}

/// σv — selection based on values: List → List.
#[test]
fn sigma_v_selects_by_value() {
    let d = sdoc();
    let ctx = ExecContext::new(&d);
    let mut g = PatternGraph::from_path(&parse_path("//price").unwrap()).unwrap();
    let v = g.outputs()[0];
    g.vertices[v].constraints.push(ValueConstraint { op: CmpOp::Gt, literal: 50i64.into() });
    let stream = structural::candidates(&ctx, &g, v);
    assert_eq!(stream.len(), 1);
    assert_eq!(d.string_value(stream[0].node), "65");
}

/// πs — tree navigation along an axis: List → NestedList (flattened here;
/// the nested form is τ's output).
#[test]
fn pi_s_navigates_axes() {
    let d = sdoc();
    let ctx = ExecContext::new(&d);
    let books = naive::eval_path(&ctx, &[], &parse_path("/bib/book").unwrap()).unwrap();
    let titles = naive::eval_path(&ctx, &books, &parse_path("title").unwrap()).unwrap();
    assert_eq!(titles.len(), 2);
    for t in titles {
        if let NodeRef::Stored(s) = t {
            assert_eq!(d.name(s), "title");
        }
    }
}

/// ⋈s — structural join: List × List → List.
#[test]
fn join_s_structural() {
    let d = sdoc();
    let ctx = ExecContext::new(&d);
    let streams = ctx.streams();
    let books = streams.stream_by_name(&d, "book").to_vec();
    let authors = streams.stream_by_name(&d, "author").to_vec();
    // Ancestors with ≥1 author vs. authors under a book.
    let with_author = structural::semijoin_keep_anc(&ctx, &books, &authors, PRel::Child);
    assert_eq!(with_author.len(), 2);
    let under_books = structural::semijoin_keep_desc(&ctx, &books, &authors, PRel::Descendant);
    assert_eq!(under_books.len(), 3);
}

/// ⋈v — value-based join: the FLWOR join on values.
#[test]
fn join_v_value_based() {
    let db = xqp::Database::new();
    db.load_str("x", "<r><l><k>1</k><k>2</k></l><rt><k>2</k><k>3</k></rt></r>").unwrap();
    let out = db
        .query(
            "x",
            "for $a in doc()/r/l/k for $b in doc()/r/rt/k \
             where $a = $b return concat($a, \"~\", $b, \" \")",
        )
        .unwrap();
    assert_eq!(out.trim(), "2~2");
}

/// τ — tree pattern matching: Tree × PatternGraph → NestedList.
#[test]
fn tau_produces_nested_lists() {
    let d = SuccinctDoc::parse("<a><a><b/></a><a/></a>").unwrap();
    let ctx = ExecContext::new(&d);
    let g = PatternGraph::from_path(&parse_path("//a").unwrap()).unwrap();
    let nested = nok::eval_single_output_nested(&ctx, &g, None);
    // Outer a contains two nested a's: ((a, (a, a))) — depth ≥ 2 and 3 leaves.
    assert_eq!(nested.leaf_count(), 3);
    assert!(nested.depth() >= 2);
    // Immediate nesting mirrors ancestor-descendant relationships: inner
    // lists are groups `[Leaf(head), entry…]` whose entries nest under head.
    fn check(d: &SuccinctDoc, n: &Nested<SNodeId>, anc: Option<SNodeId>, top: bool) {
        match n {
            Nested::Leaf(Item::Node(id)) => {
                if let Some(a) = anc {
                    assert!(d.is_ancestor(a, *id), "{a} should contain {id}");
                }
            }
            Nested::Leaf(_) => {}
            Nested::List(items) if top => {
                for i in items {
                    check(d, i, anc, false);
                }
            }
            Nested::List(items) => {
                let [Nested::Leaf(Item::Node(head)), rest @ ..] = items.as_slice() else {
                    panic!("inner lists are head+children groups: {items:?}");
                };
                if let Some(a) = anc {
                    assert!(d.is_ancestor(a, *head));
                }
                for r in rest {
                    check(d, r, Some(*head), false);
                }
            }
        }
    }
    check(&d, &nested, None, true);
}

/// γ — tree construction: NestedList × SchemaTree → Tree.
#[test]
fn gamma_constructs_labeled_trees() {
    let db = xqp::Database::new();
    db.load_str("bib", DOC).unwrap();
    let out = db
        .query(
            "bib",
            "<results>{ for $b in doc()/bib/book \
             return <result n=\"{count($b/author)}\">{$b/title}</result> }</results>",
        )
        .unwrap();
    assert_eq!(
        out,
        "<results><result n=\"1\"><title>TCP</title></result>\
         <result n=\"2\"><title>Data</title></result></results>"
    );
}

/// τ at the bottom, γ at the top: the plan shape of §3.2.
#[test]
fn plan_shape_tau_bottom_gamma_top() {
    let db = xqp::Database::new();
    db.load_str("bib", DOC).unwrap();
    let (plan, report) = db
        .explain("bib", "for $b in doc()/bib/book let $t := $b/title return <r>{$t}</r>")
        .unwrap();
    // Bottom: the TPM binding scan; top: the γ constructor in the return.
    assert!(plan.contains("tpm-bind"), "{plan}");
    assert!(plan.contains("return γ[r]"), "{plan}");
    assert!(report.count("R5") > 0);
}
