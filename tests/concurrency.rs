//! Concurrency smoke test: one `Executor` shared by reference across eight
//! OS threads running a mixed query workload. The executor's read paths are
//! `Send + Sync` (atomic counters, lock-guarded lazy state), so this must
//! complete with no panics, every thread seeing correct results, and the
//! merged `ExecCounters` consistent with the work done.

use std::sync::Arc;
use xqp_exec::{Executor, PlanCache, Strategy};
use xqp_storage::SuccinctDoc;

const STORE: &str = "<store>\
<inventory>\
<item sku=\"A1\"><name>bolt</name><price>10</price><qty>500</qty></item>\
<item sku=\"A2\"><name>nut</name><price>5</price><qty>800</qty></item>\
<item sku=\"B1\"><name>washer</name><price>2</price><qty>50</qty></item>\
<item sku=\"B2\"><name>gear</name><price>120</price><qty>7</qty></item>\
</inventory>\
<orders>\
<order id=\"o1\" sku=\"A1\" units=\"20\"/>\
<order id=\"o2\" sku=\"B2\" units=\"2\"/>\
<order id=\"o3\" sku=\"A1\" units=\"5\"/>\
</orders>\
</store>";

const THREADS: usize = 8;
const ROUNDS: usize = 12;

/// (query, expected serialization) — a mix of paths, FLWORs and aggregates.
const WORKLOAD: &[(&str, &str)] = &[
    ("//item[price > 100]/name", "<name>gear</name>"),
    ("count(doc()//item)", "4"),
    (
        "for $i in doc()/store/inventory/item where $i/qty < 100 \
         return string($i/name)",
        "washer gear",
    ),
    ("sum(doc()//item/price)", "137"),
    ("distinct-values(doc()/store/orders/order/@sku)", "A1 B2"),
    ("exists(doc()//order[@units = 2])", "true"),
];

#[test]
fn one_executor_shared_across_threads() {
    let sdoc = SuccinctDoc::parse(STORE).unwrap();
    let ex = Executor::new(&sdoc);
    let before = ex.counters();

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let ex = &ex;
            scope.spawn(move || {
                for r in 0..ROUNDS {
                    // Stagger so threads hit different queries simultaneously.
                    let (q, want) = WORKLOAD[(t + r) % WORKLOAD.len()];
                    let got = ex.query(q).expect("query evaluates");
                    assert_eq!(got, want, "thread {t} round {r} query `{q}`");
                }
            });
        }
    });

    let after = ex.counters();
    // Counters only move forward, and the workload did real work.
    assert!(after.nodes_visited >= before.nodes_visited);
    assert!(after.stream_items >= before.stream_items);
    assert!(after.plan_misses >= before.plan_misses);

    // Every distinct query text compiles at most once per cache slot; with
    // 8 threads × 12 rounds over 6 queries the cache must have hits, and
    // hits + misses equals the number of compile requests that went through
    // the cache. (Misses can exceed 6 only through a benign first-use race.)
    let total = after.plan_hits + after.plan_misses;
    assert!(after.plan_hits > 0, "repeated queries should hit the plan cache");
    assert!(after.plan_misses >= WORKLOAD.len() as u64);
    assert!(total >= (THREADS * ROUNDS) as u64, "every query consults the cache");
}

#[test]
fn parallel_strategy_is_itself_thread_safe() {
    // Nested parallelism: concurrent callers each fanning out their own
    // scoped worker threads must not interfere.
    let sdoc = SuccinctDoc::parse(STORE).unwrap();
    let ex = Executor::new(&sdoc).with_strategy(Strategy::Parallel { threads: 2 });
    let want = ex.eval_path_str("//item[price > 10]/name").unwrap();
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let ex = &ex;
            let want = &want;
            scope.spawn(move || {
                for _ in 0..ROUNDS {
                    let got = ex.eval_path_str("//item[price > 10]/name").unwrap();
                    assert_eq!(&got, want);
                }
            });
        }
    });
}

#[test]
fn shared_plan_cache_across_executors_and_threads() {
    // The Database arrangement: short-lived executors, one long-lived cache.
    let sdoc = SuccinctDoc::parse(STORE).unwrap();
    let cache = Arc::new(PlanCache::default());
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let sdoc = &sdoc;
            let cache = Arc::clone(&cache);
            scope.spawn(move || {
                for r in 0..ROUNDS {
                    let ex = Executor::new(sdoc).with_plan_cache(Arc::clone(&cache));
                    let (q, want) = WORKLOAD[r % WORKLOAD.len()];
                    assert_eq!(ex.query(q).expect("query evaluates"), want);
                }
            });
        }
    });
    let (hits, misses, _evictions) = cache.stats();
    assert!(hits > 0);
    assert!(misses >= WORKLOAD.len() as u64);
    assert_eq!(hits + misses, (THREADS * ROUNDS) as u64);
}
