//! End-to-end XQuery corpus: use-case-style queries with exact expected
//! serializations, exercising the full parse → optimize → evaluate →
//! construct → serialize pipeline.

use xqp::Database;

const STORE: &str = r#"<store>
<inventory>
<item sku="A1"><name>bolt</name><price>10</price><qty>500</qty></item>
<item sku="A2"><name>nut</name><price>5</price><qty>800</qty></item>
<item sku="B1"><name>washer</name><price>2</price><qty>50</qty></item>
<item sku="B2"><name>gear</name><price>120</price><qty>7</qty></item>
</inventory>
<orders>
<order id="o1" sku="A1" units="20"/>
<order id="o2" sku="B2" units="2"/>
<order id="o3" sku="A1" units="5"/>
</orders>
</store>"#;

fn db() -> Database {
    let d = Database::new();
    // Strip pretty-printing whitespace for stable expectations.
    let compact: String = STORE.lines().collect();
    d.load_str("store", &compact).unwrap();
    d
}

#[test]
fn projection_with_computed_attributes() {
    let out = db()
        .query(
            "store",
            "for $i in doc()/store/inventory/item \
             where $i/price >= 10 \
             return <line sku=\"{$i/@sku}\" cost=\"{$i/price}\">{$i/name}</line>",
        )
        .unwrap();
    assert_eq!(
        out,
        "<line sku=\"A1\" cost=\"10\"><name>bolt</name></line>\
         <line sku=\"B2\" cost=\"120\"><name>gear</name></line>"
    );
}

#[test]
fn join_between_orders_and_inventory() {
    let out = db()
        .query(
            "store",
            "for $o in doc()/store/orders/order \
             for $i in doc()/store/inventory/item \
             where $i/@sku = $o/@sku \
             return <fulfilled order=\"{$o/@id}\">{$i/name}</fulfilled>",
        )
        .unwrap();
    assert_eq!(
        out,
        "<fulfilled order=\"o1\"><name>bolt</name></fulfilled>\
         <fulfilled order=\"o2\"><name>gear</name></fulfilled>\
         <fulfilled order=\"o3\"><name>bolt</name></fulfilled>"
    );
}

#[test]
fn aggregation_with_arithmetic() {
    // Total order value: 20×10 + 2×120 + 5×10 = 490.
    let out = db()
        .query(
            "store",
            "sum(for $o in doc()/store/orders/order \
             for $i in doc()/store/inventory/item \
             where $i/@sku = $o/@sku \
             return $o/@units * $i/price)",
        )
        .unwrap();
    assert_eq!(out, "490");
}

#[test]
fn variables_inside_path_predicates() {
    // The same join written with the variable in the predicate.
    let out = db()
        .query(
            "store",
            "sum(for $o in doc()/store/orders/order \
             for $i in doc()/store/inventory/item[@sku = $o/@sku] \
             return $o/@units * $i/price)",
        )
        .unwrap();
    assert_eq!(out, "490");
    // Bare variable comparison. Note the `+ 0`: comparing two *untyped*
    // values is a string comparison per the XQuery data model ("5" > "10"!);
    // the addition makes $limit numeric, which promotes the other side.
    let out = db()
        .query(
            "store",
            "let $limit := sum(doc()/store/inventory/item[name = \"bolt\"]/price) + 0 \
             return doc()/store/inventory/item[price > $limit]/name",
        )
        .unwrap();
    assert_eq!(out, "<name>gear</name>");
    // Unbound variables in predicates are reported.
    assert!(db().query("store", "/store/inventory/item[@sku = $ghost]").is_err());
}

#[test]
fn conditional_construction() {
    let out = db()
        .query(
            "store",
            "for $i in doc()/store/inventory/item order by $i/name \
             return <stock name=\"{$i/name}\">{ \
                if ($i/qty < 100) then <low/> else <ok/> }</stock>",
        )
        .unwrap();
    assert_eq!(
        out,
        "<stock name=\"bolt\"><ok/></stock><stock name=\"gear\"><low/></stock>\
         <stock name=\"nut\"><ok/></stock><stock name=\"washer\"><low/></stock>"
    );
}

#[test]
fn nested_flwor_grouping() {
    // Group orders per item (nested FLWOR referencing the outer variable).
    let out = db()
        .query(
            "store",
            "for $i in doc()/store/inventory/item \
             let $os := (for $o in doc()/store/orders/order \
                         where $o/@sku = $i/@sku return $o) \
             where exists($os) \
             return <demand sku=\"{$i/@sku}\" orders=\"{count($os)}\"/>",
        )
        .unwrap();
    assert_eq!(out, "<demand sku=\"A1\" orders=\"2\"/><demand sku=\"B2\" orders=\"1\"/>");
}

#[test]
fn string_processing() {
    let out = db()
        .query(
            "store",
            "for $i in doc()/store/inventory/item \
             where starts-with($i/name, \"b\") or contains($i/name, \"ash\") \
             return string($i/name)",
        )
        .unwrap();
    assert_eq!(out, "bolt washer");
}

#[test]
fn order_by_multiple_keys() {
    let d = Database::new();
    d.load_str(
        "x",
        "<r><p a=\"2\" b=\"1\"/><p a=\"1\" b=\"2\"/><p a=\"2\" b=\"0\"/><p a=\"1\" b=\"1\"/></r>",
    )
    .unwrap();
    let out = d
        .query(
            "x",
            "for $p in doc()/r/p order by $p/@a, $p/@b descending \
             return concat($p/@a, $p/@b, \" \")",
        )
        .unwrap();
    assert_eq!(out.split_whitespace().collect::<Vec<_>>(), ["12", "11", "21", "20"]);
}

#[test]
fn deeply_nested_constructors() {
    let out = db()
        .query(
            "store",
            "<report><summary><total>{count(doc()//item)}</total>\
             <value>{sum(doc()//item/price)}</value></summary></report>",
        )
        .unwrap();
    assert_eq!(out, "<report><summary><total>4</total><value>137</value></summary></report>");
}

#[test]
fn quantifier_style_filters() {
    // every/some emulated with count/exists.
    let all_cheap = db().query("store", "count(doc()//item[price > 200]) = 0").unwrap();
    assert_eq!(all_cheap, "true");
    let some_low = db().query("store", "exists(doc()//item[qty < 10])").unwrap();
    assert_eq!(some_low, "true");
}

#[test]
fn distinct_values_over_attributes() {
    let out = db().query("store", "distinct-values(doc()/store/orders/order/@sku)").unwrap();
    assert_eq!(out, "A1 B2");
}

#[test]
fn queries_on_constructed_nodes() {
    // A path applied to a constructed element navigates the built arena.
    let out =
        db().query("store", "let $x := <wrap><inner>deep</inner></wrap> return $x/inner").unwrap();
    assert_eq!(out, "<inner>deep</inner>");
}

#[test]
fn division_and_mod_in_queries() {
    assert_eq!(db().query("store", "(7 div 2)").unwrap(), "3.5");
    assert_eq!(db().query("store", "(7 mod 2)").unwrap(), "1");
}

#[test]
fn errors_are_reported_not_panicked() {
    let d = db();
    assert!(d.query("store", "frobnicate(1)").is_err());
    assert!(d.query("store", "for $x in").is_err());
    assert!(d.query("store", "$undefined").is_err());
}
