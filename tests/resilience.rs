//! Integration tests of the resilience stack: protocol truncation
//! robustness, the retry layer's idempotency discipline, queue-based
//! overload control, graceful drain, health-check plumbing, and the
//! network torture harness.

use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use xqp::{Database, QueryLimits};
use xqp_serve::netfault::FaultPlan;
use xqp_serve::protocol::{read_frame, write_frame, MAX_FRAME};
use xqp_serve::{
    Client, ErrorClass, Request, ResilientClient, Response, RetryPolicy, ServeError, Server,
    ServerConfig,
};

const BIB: &str = concat!(
    r#"<bib><book year="1994"><title>TCP/IP Illustrated</title></book>"#,
    r#"<book year="2000"><title>Data on the Web</title></book></bib>"#,
);

fn bib_server(cfg: ServerConfig) -> Server {
    let db = Database::new();
    db.load_str("bib", BIB).unwrap();
    Server::start(Arc::new(db), "127.0.0.1:0", cfg).expect("bind loopback server")
}

fn quick_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 4,
        base_delay: Duration::from_millis(1),
        max_delay: Duration::from_millis(20),
        retry_budget: Duration::from_secs(1),
        ..RetryPolicy::default()
    }
}

// ---- protocol truncation sweeps --------------------------------------------

fn all_requests() -> Vec<Request> {
    vec![
        Request::Ping { retries: 3 },
        Request::Query { doc: "bib".into(), query: "//book/title".into() },
        Request::Select { doc: "bib".into(), path: "//book".into() },
        Request::Insert { doc: "bib".into(), path: "/bib".into(), fragment: "<x/>".into() },
        Request::Delete { doc: "bib".into(), path: "//x".into() },
        Request::SetLimits { timeout_ms: 250, max_memory: 4096, max_rows: 10 },
        Request::ListDocs,
        Request::Close,
        Request::Stats,
    ]
}

fn all_responses() -> Vec<Response> {
    vec![
        Response::Pong { generation: 7, uptime_ms: 123_456 },
        Response::Value { generation: 3, body: "<title>Data on the Web</title>".into() },
        Response::NodeIds { generation: 2, ids: vec![1, 99, 4242] },
        Response::Count { n: 11 },
        Response::Docs { names: vec!["bib".into(), "aux".into()] },
        Response::Error { class: ErrorClass::ResourceLimit, message: "resource governor".into() },
        Response::Busy { in_flight: 8, max: 8 },
        Response::Bye,
        Response::Overloaded { queue_depth: 5, est_wait_ms: 80, retry_after_ms: 40 },
        Response::Draining,
        Response::Stats { counters: vec![("requests".into(), 42), ("queue_shed".into(), 1)] },
    ]
}

/// The wire twin of the PR 2 torn-tail WAL sweep: cut one encoded frame of
/// every message variant at every byte offset; each cut must produce a
/// typed error — never a panic, never a silent mis-decode.
#[test]
fn every_byte_offset_truncation_is_a_typed_error() {
    // (kind, debug name, payload, framed bytes); kind selects which
    // decoder the payload sweep runs against — requests and responses
    // travel opposite directions and are never decoded as each other.
    let mut frames: Vec<(bool, String, Vec<u8>, Vec<u8>)> = Vec::new();
    for req in all_requests() {
        let payload = req.encode();
        assert_eq!(Request::decode(&payload).unwrap(), req, "round-trip baseline");
        frames.push((true, format!("{req:?}"), payload, Vec::new()));
    }
    for resp in all_responses() {
        let payload = resp.encode();
        assert_eq!(Response::decode(&payload).unwrap(), resp, "round-trip baseline");
        frames.push((false, format!("{resp:?}"), payload, Vec::new()));
    }
    for entry in &mut frames {
        write_frame(&mut entry.3, &entry.2).unwrap();
    }
    for (is_request, name, payload, framed) in &frames {
        // Frame-level sweep: every proper prefix of the framed bytes.
        for cut in 0..framed.len() {
            match read_frame(&mut &framed[..cut], MAX_FRAME) {
                Err(ServeError::Closed)
                | Err(ServeError::Frame(_))
                | Err(ServeError::Crc { .. })
                | Err(ServeError::TooLarge { .. }) => {}
                other => panic!("{name}: frame cut at {cut}/{} gave {other:?}", framed.len()),
            }
        }
        // Payload-level sweep: no proper prefix of a message may decode as
        // a message of the same kind (no encoding is a prefix of another's
        // — what makes a torn payload detectable, not re-interpretable).
        for cut in 0..payload.len() {
            let accepted = if *is_request {
                Request::decode(&payload[..cut]).is_ok()
            } else {
                Response::decode(&payload[..cut]).is_ok()
            };
            if accepted {
                panic!("{name}: decode accepted a {cut}-byte prefix");
            }
        }
    }
}

// ---- fake servers for exact retry-path control ------------------------------

/// A hand-scripted server: each accepted connection is handled by the next
/// closure in the script; the accept counter is observable.
fn scripted_server(
    script: Vec<Box<dyn FnOnce(TcpStream) + Send>>,
) -> (SocketAddr, Arc<AtomicU32>, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let accepted = Arc::new(AtomicU32::new(0));
    let counter = Arc::clone(&accepted);
    let handle = std::thread::spawn(move || {
        for step in script {
            let (stream, _) = match listener.accept() {
                Ok(s) => s,
                Err(_) => return,
            };
            counter.fetch_add(1, Ordering::SeqCst);
            step(stream);
        }
    });
    (addr, accepted, handle)
}

/// A well-behaved scripted connection: answers pings, inserts, queries and
/// close like the real server would.
fn obedient(mut stream: TcpStream) {
    loop {
        let payload = match read_frame(&mut stream, MAX_FRAME) {
            Ok(p) => p,
            Err(_) => return,
        };
        let resp = match Request::decode(&payload) {
            Ok(Request::Ping { .. }) => Response::Pong { generation: 0, uptime_ms: 1 },
            Ok(Request::SetLimits { .. }) => Response::Pong { generation: 0, uptime_ms: 1 },
            Ok(Request::Insert { .. }) => Response::Count { n: 1 },
            Ok(Request::Query { .. }) => Response::Value { generation: 0, body: "<ok/>".into() },
            Ok(Request::Close) => {
                let _ = write_frame(&mut stream, &Response::Bye.encode());
                return;
            }
            _ => return,
        };
        if write_frame(&mut stream, &resp.encode()).is_err() {
            return;
        }
    }
}

#[test]
fn pre_response_loss_retries_even_non_idempotent_verbs() {
    // Connection 1 swallows the insert and dies before any response byte:
    // the server provably never answered, so re-sending is safe and the
    // retry layer must do it — after validating the reconnect with a ping.
    let script: Vec<Box<dyn FnOnce(TcpStream) + Send>> = vec![
        Box::new(|mut stream: TcpStream| {
            let _ = read_frame(&mut stream, MAX_FRAME);
            // Drop without responding.
        }),
        Box::new(obedient),
    ];
    let (addr, accepted, handle) = scripted_server(script);
    let mut client = ResilientClient::connect(addr, quick_policy()).unwrap();
    assert_eq!(client.insert("bib", "/bib", "<x/>").unwrap(), 1);
    assert_eq!(client.retries_total(), 1, "exactly one retry should have been burned");
    assert_eq!(accepted.load(Ordering::SeqCst), 2, "retry must reconnect");
    let _ = client.close();
    handle.join().unwrap();
}

#[test]
fn mid_response_loss_on_update_is_ambiguous_not_retried() {
    // Connection 1 sends *part* of the response, then dies: the insert may
    // have been applied. Re-sending could double-apply; the typed
    // Ambiguous error puts the decision where it belongs — the caller.
    let script: Vec<Box<dyn FnOnce(TcpStream) + Send>> = vec![Box::new(|mut stream: TcpStream| {
        let _ = read_frame(&mut stream, MAX_FRAME);
        let mut framed = Vec::new();
        write_frame(&mut framed, &Response::Count { n: 1 }.encode()).unwrap();
        let _ = stream.write_all(&framed[..3]);
        // Drop mid-frame.
    })];
    let (addr, accepted, handle) = scripted_server(script);
    let mut client = ResilientClient::connect(addr, quick_policy()).unwrap();
    match client.insert("bib", "/bib", "<x/>") {
        Err(ServeError::Ambiguous { verb: "insert", .. }) => {}
        other => panic!("expected Ambiguous, got {other:?}"),
    }
    assert_eq!(client.retries_total(), 0, "an ambiguous update must never be re-sent");
    assert_eq!(accepted.load(Ordering::SeqCst), 1, "no reconnect for an ambiguous update");
    drop(client);
    handle.join().unwrap();
}

#[test]
fn mid_response_loss_on_read_retries_and_replays_session_state() {
    // Reads are idempotent: a mid-response loss is retryable. The
    // reconnect must replay SetLimits before re-sending the query.
    let seen_limits = Arc::new(AtomicU32::new(0));
    let seen = Arc::clone(&seen_limits);
    let script: Vec<Box<dyn FnOnce(TcpStream) + Send>> = vec![
        Box::new(|mut stream: TcpStream| {
            // Session 1: ack the SetLimits, then tear the query response.
            let payload = read_frame(&mut stream, MAX_FRAME).unwrap();
            assert!(matches!(Request::decode(&payload), Ok(Request::SetLimits { .. })));
            write_frame(&mut stream, &Response::Pong { generation: 0, uptime_ms: 1 }.encode())
                .unwrap();
            let _ = read_frame(&mut stream, MAX_FRAME); // the query
            let mut framed = Vec::new();
            write_frame(
                &mut framed,
                &Response::Value { generation: 0, body: "<ok/>".into() }.encode(),
            )
            .unwrap();
            let _ = stream.write_all(&framed[..5]);
        }),
        Box::new(move |mut stream: TcpStream| {
            // Session 2 (the retry): ping validation, limits replay, query.
            loop {
                let payload = match read_frame(&mut stream, MAX_FRAME) {
                    Ok(p) => p,
                    Err(_) => return,
                };
                let resp = match Request::decode(&payload) {
                    Ok(Request::Ping { retries }) => {
                        assert!(retries >= 1, "reconnect ping must report burned attempts");
                        Response::Pong { generation: 0, uptime_ms: 2 }
                    }
                    Ok(Request::SetLimits { max_rows, .. }) => {
                        assert_eq!(max_rows, 7, "session limits must be replayed");
                        seen.fetch_add(1, Ordering::SeqCst);
                        Response::Pong { generation: 0, uptime_ms: 2 }
                    }
                    Ok(Request::Query { .. }) => {
                        Response::Value { generation: 0, body: "<ok/>".into() }
                    }
                    Ok(Request::Close) => {
                        let _ = write_frame(&mut stream, &Response::Bye.encode());
                        return;
                    }
                    other => panic!("unexpected request on retry session: {other:?}"),
                };
                if write_frame(&mut stream, &resp.encode()).is_err() {
                    return;
                }
            }
        }),
    ];
    let (addr, accepted, handle) = scripted_server(script);
    let mut client = ResilientClient::connect(addr, quick_policy()).unwrap();
    client.set_limits(&QueryLimits::none().with_max_rows(7)).unwrap();
    let (_, body) = client.query("bib", "//book").unwrap();
    assert_eq!(body, "<ok/>");
    assert_eq!(accepted.load(Ordering::SeqCst), 2);
    assert_eq!(seen_limits.load(Ordering::SeqCst), 1, "limits replayed exactly once");
    let _ = client.close();
    handle.join().unwrap();
}

#[test]
fn remote_errors_are_not_retried() {
    // The server answered; the answer was an error. Retrying cannot change
    // it and must not burn attempts.
    let server = bib_server(ServerConfig::default());
    let mut client = ResilientClient::connect(server.addr(), quick_policy()).unwrap();
    match client.query("nope", "//x") {
        Err(ServeError::Remote { class: ErrorClass::UnknownDocument, .. }) => {}
        other => panic!("expected UnknownDocument, got {other:?}"),
    }
    assert_eq!(client.retries_total(), 0);
    let _ = client.close();
    server.shutdown();
}

// ---- the acceptance criterion: retry vs baseline under 5% wire faults ------

#[test]
fn retry_client_converges_under_faults_while_baseline_loses_requests() {
    const STREAM: usize = 40;
    let queries: Vec<String> = (0..STREAM)
        .map(|i| match i % 3 {
            0 => "//book/title".to_string(),
            1 => "count(//book)".to_string(),
            _ => format!("//book[@year=\"{}\"]/title", if i % 2 == 0 { 1994 } else { 2000 }),
        })
        .collect();

    // Ground truth from a fault-free server.
    let clean = bib_server(ServerConfig::default());
    let mut c = Client::connect(clean.addr()).unwrap();
    let truth: Vec<String> = queries.iter().map(|q| c.query("bib", q).unwrap().1).collect();
    c.close().unwrap();
    clean.shutdown();

    // Faulted server: 5% of socket operations draw a random fault flavor.
    let plan = FaultPlan::random(0xBEEF, 0.05);
    let server = bib_server(ServerConfig {
        fault: Some(plan.clone()),
        log_send_failures: false,
        tick: Duration::from_millis(5),
        ..ServerConfig::default()
    });

    // Resilient client: must complete the stream byte-identical to truth.
    let policy = RetryPolicy {
        max_attempts: 10,
        base_delay: Duration::from_millis(1),
        max_delay: Duration::from_millis(20),
        retry_budget: Duration::from_secs(5),
        seed: 0xBEEF,
        deadline: None,
        ..RetryPolicy::default()
    };
    let mut resilient = None;
    for _ in 0..10 {
        match ResilientClient::connect(server.addr(), policy.clone()) {
            Ok(c) => {
                resilient = Some(c);
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    let mut resilient = resilient.expect("resilient client never connected");
    let mut got = Vec::with_capacity(STREAM);
    for q in &queries {
        let (_, body) = resilient
            .query("bib", q)
            .unwrap_or_else(|e| panic!("resilient stream lost {q:?}: {e}"));
        got.push(body);
    }
    assert_eq!(got, truth, "resilient stream must be byte-identical to the fault-free run");
    assert!(
        resilient.retries_total() > 0,
        "a 5% fault rate over {STREAM} queries should have forced at least one retry"
    );
    let _ = resilient.close();

    // Baseline: no retries, reconnect-on-error only. It must observably
    // lose requests under the same fault pressure.
    let mut lost = 0usize;
    let mut baseline: Option<Client> = None;
    for q in &queries {
        if baseline.is_none() {
            baseline = Client::connect(server.addr()).ok();
        }
        match baseline.as_mut() {
            None => {
                lost += 1;
                continue;
            }
            Some(cl) => match cl.query("bib", q) {
                Ok(_) => {}
                Err(_) => {
                    lost += 1;
                    baseline = None; // dead session; reconnect for the next one
                }
            },
        }
    }
    assert!(lost > 0, "the no-retry baseline should lose requests at a 5% wire-fault rate");
    assert!(plan.injected() > 0, "the plan must actually have injected faults");
    server.shutdown();
}

// ---- overload control -------------------------------------------------------

#[test]
fn full_queue_is_a_typed_overloaded_with_a_retry_hint() {
    // Zero queue slots and one permit: while a long query holds the
    // permit, the next request must bounce immediately with Overloaded.
    let db = Database::new();
    let mut doc = String::from("<r>");
    for i in 0..400 {
        doc.push_str(&format!("<x>{i}</x>"));
    }
    doc.push_str("</r>");
    db.load_str("wide", &doc).unwrap();
    let server = Server::start(
        Arc::new(db),
        "127.0.0.1:0",
        ServerConfig { max_inflight: 1, max_queue: 0, ..Default::default() },
    )
    .unwrap();
    let addr = server.addr();

    let hog = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        // Unbounded-ish: cancelled at shutdown; any outcome is fine.
        let _ = c.query("wide", "for $a in //x for $b in //x for $c in //x return <p/>");
    });
    // Wait until the hog's query is executing (holding the permit).
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.stats().requests.load(Ordering::Relaxed) == 0 {
        assert!(Instant::now() < deadline, "hog query never started");
        std::thread::sleep(Duration::from_millis(5));
    }
    std::thread::sleep(Duration::from_millis(50));

    let mut probe = Client::connect(addr).unwrap();
    match probe.query("wide", "count(//x)") {
        Err(ServeError::Overloaded { retry_after_ms, .. }) => {
            assert!(retry_after_ms >= 1, "hint must be a usable backoff");
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    assert!(server.stats().overload_rejections.load(Ordering::Relaxed) >= 1);
    // The session survives the refusal — it is the request that bounced.
    probe.ping().unwrap();
    let _ = probe.close();
    server.shutdown();
    let _ = hog.join();
}

#[test]
fn deadline_doomed_requests_are_shed_from_the_queue() {
    // One permit held by a long query; a queued request whose session
    // timeout cannot survive the wait is shed with Overloaded instead of
    // being left to time out inside the engine.
    let db = Database::new();
    let mut doc = String::from("<r>");
    for i in 0..400 {
        doc.push_str(&format!("<x>{i}</x>"));
    }
    doc.push_str("</r>");
    db.load_str("wide", &doc).unwrap();
    let server = Server::start(
        Arc::new(db),
        "127.0.0.1:0",
        ServerConfig { max_inflight: 1, ..Default::default() },
    )
    .unwrap();
    let addr = server.addr();
    let hog = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        let _ = c.query("wide", "for $a in //x for $b in //x for $c in //x return <p/>");
    });
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.stats().requests.load(Ordering::Relaxed) == 0 {
        assert!(Instant::now() < deadline, "hog query never started");
        std::thread::sleep(Duration::from_millis(5));
    }
    std::thread::sleep(Duration::from_millis(50));

    let mut doomed = Client::connect(addr).unwrap();
    doomed.set_limits(&QueryLimits::none().with_timeout(Duration::from_millis(30))).unwrap();
    match doomed.query("wide", "count(//x)") {
        Err(ServeError::Overloaded { .. }) => {}
        other => panic!("expected a deadline-doomed shed, got {other:?}"),
    }
    assert!(
        server.stats().queue_shed.load(Ordering::Relaxed) >= 1,
        "the shed counter must record it"
    );
    let _ = doomed.close();
    server.shutdown();
    let _ = hog.join();
}

// ---- graceful drain ---------------------------------------------------------

#[test]
fn drain_finishes_inflight_work_and_refuses_late_arrivals() {
    let server = bib_server(ServerConfig::default());
    let addr = server.addr();

    // An in-flight query (moderate size, finishes well inside the drain
    // deadline).
    let inflight = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.query("bib", "count(for $a in //book for $b in //book return $b)")
    });
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.stats().requests.load(Ordering::Relaxed) == 0 {
        assert!(Instant::now() < deadline, "in-flight query never started");
        std::thread::sleep(Duration::from_millis(2));
    }

    let cancelled = server.drain(Duration::from_secs(5));
    assert_eq!(cancelled, 0, "nothing should need cancelling inside the deadline");
    let (_, count) = inflight.join().unwrap().expect("in-flight query must finish its answer");
    assert_eq!(count, "4");

    // New connections during/after drain get a typed Draining refusal.
    let mut late = Client::connect(addr).unwrap();
    match late.ping() {
        Err(ServeError::Draining) => {}
        other => panic!("late arrival expected Draining, got {other:?}"),
    }
    assert!(server.stats().drain_refused.load(Ordering::Relaxed) >= 1);
    server.shutdown();
}

#[test]
fn drain_deadline_cancels_stragglers() {
    let db = Database::new();
    let mut doc = String::from("<r>");
    for i in 0..500 {
        doc.push_str(&format!("<x>{i}</x>"));
    }
    doc.push_str("</r>");
    db.load_str("wide", &doc).unwrap();
    let server = Server::start(Arc::new(db), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.addr();

    // Effectively unbounded query: only cancellation ends it.
    let straggler = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.query("wide", "for $a in //x for $b in //x for $c in //x return <p/>")
    });
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.stats().requests.load(Ordering::Relaxed) == 0 {
        assert!(Instant::now() < deadline, "straggler query never started");
        std::thread::sleep(Duration::from_millis(5));
    }
    std::thread::sleep(Duration::from_millis(50));

    let cancelled = server.drain(Duration::from_millis(80));
    assert!(cancelled >= 1, "the drain deadline must cancel the straggler");
    assert!(server.stats().drain_cancelled.load(Ordering::Relaxed) >= 1);
    assert!(
        straggler.join().unwrap().is_err(),
        "a cancelled straggler gets a typed error, not an answer"
    );
    server.shutdown();
}

#[test]
fn draining_sessions_refuse_new_requests_but_stats_still_answers() {
    let server = bib_server(ServerConfig::default());
    let mut parked = Client::connect(server.addr()).unwrap();
    parked.ping().unwrap();

    server.drain(Duration::from_millis(100));

    // Stats stays available mid-drain (an operator watching the drain).
    let mut counters = parked.stats().unwrap();
    counters.retain(|(name, _)| name == "drain_refused");
    assert_eq!(counters.len(), 1);

    // But new work on the parked session is refused and the session ends.
    let mut parked2 = parked; // same session, next request
    match parked2.query("bib", "//book") {
        Err(ServeError::Draining) => {}
        other => panic!("expected Draining on a parked session, got {other:?}"),
    }
    server.shutdown();
}

// ---- health check and counters ---------------------------------------------

#[test]
fn ping_reports_generation_and_uptime() {
    let server = bib_server(ServerConfig::default());
    let mut c = Client::connect(server.addr()).unwrap();
    let (g0, up0) = c.ping().unwrap();
    assert_eq!(g0, 0, "fresh server starts at generation 0");
    c.insert("bib", "/bib", "<book year=\"2024\"/>").unwrap();
    let (g1, up1) = c.ping().unwrap();
    assert_eq!(g1, 1, "ping must expose the MVCC generation high-water mark");
    assert!(up1 >= up0, "uptime is monotonic within one server life");
    c.close().unwrap();
    server.shutdown();
}

#[test]
fn stats_verb_reports_counters_and_retry_pressure() {
    let server = bib_server(ServerConfig::default());
    let mut c = Client::connect(server.addr()).unwrap();
    c.query("bib", "//book").unwrap();
    // A reconnecting retry layer reports its burned attempts.
    c.ping_with_retries(3).unwrap();
    let counters = c.stats().unwrap();
    let get = |name: &str| {
        counters
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("counter {name} missing from Stats"))
            .1
    };
    assert!(get("requests") >= 2);
    assert_eq!(get("retries_seen"), 3);
    assert_eq!(get("panics_caught"), 0);
    // The full counter surface is present (operators script against it).
    for name in [
        "accepted",
        "overload_rejections",
        "queue_shed",
        "queued_total",
        "protocol_errors",
        "cancelled",
        "send_failures",
        "drain_cancelled",
        "drain_refused",
        "in_flight_sessions",
        "uptime_ms",
    ] {
        let _ = get(name);
    }
    c.close().unwrap();
    server.shutdown();
}

#[test]
fn ignored_send_failures_are_counted_not_silent() {
    // Under sustained injected faults, some response sends fail with the
    // peer gone; every one must land in the send_failures counter rather
    // than vanishing into `let _ =`. (The schedule is seeded; across 120
    // sessions a server-side write fault is statistically certain.)
    let plan = FaultPlan::random(0x5EED, 0.25);
    let server = bib_server(ServerConfig {
        fault: Some(plan.clone()),
        log_send_failures: false,
        tick: Duration::from_millis(5),
        ..ServerConfig::default()
    });
    for _ in 0..120 {
        if let Ok(mut c) = Client::connect(server.addr()) {
            let _ = c.query("bib", "//book/title");
            let _ = c.close();
        }
        if server.stats().send_failures.load(Ordering::Relaxed) > 0 {
            break;
        }
    }
    assert!(
        server.stats().send_failures.load(Ordering::Relaxed) > 0,
        "injected write faults never surfaced in send_failures \
         ({} faults injected)",
        plan.injected()
    );
    server.shutdown();
}

// ---- the torture harness itself --------------------------------------------

#[test]
fn net_torture_smoke_holds_every_invariant() {
    let report = xqp_serve::torture::torture(xqp_serve::torture::NetTortureConfig {
        seed: 0xD15EA5E,
        iters: 36,
        random_prob: 0.05,
        verbose: false,
    });
    assert!(report.points_per_scenario > 10);
    assert!(report.faults_injected >= 30, "sweep must actually inject faults");
    assert!(
        report.clean(),
        "violations: {:#?}",
        report.violations.iter().map(|v| v.to_string()).collect::<Vec<_>>()
    );
}
